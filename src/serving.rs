//! The long-running serving mode: a streaming detection session that
//! pushes simulated HPC traffic through the deployed
//! [`AdaptiveDetector`](hmd_core::AdaptiveDetector) while the `hmd-obs`
//! subsystem watches.
//!
//! One [`ServingSession`] owns the whole loop:
//!
//! * traffic — a seeded [`WindowStream`] of benign/malware windows, plus
//!   adversarial samples replayed from the LowProFool pool at a
//!   configurable (optionally bursting) rate;
//! * detection — feature-select + scale into a reusable scratch row,
//!   classify, time the inference;
//! * monitoring — record into the sliding-window [`ServingMonitor`],
//!   periodically evaluate the [`AlertEngine`] and run the integrity
//!   monitor over the windowed confusion, escalating unstable
//!   assessments into windowed drift events;
//! * exposure — an optional [`HttpServer`] answering `/metrics`,
//!   `/healthz`, `/snapshot.json` and `/quit`.
//!
//! # Stream time
//!
//! The session advances a logical clock by [`ServingConfig::tick_ns`]
//! per sample (default: the paper's 10 ms sampling period) and drives
//! every window and alert off that clock. Alert firing and resolution
//! are therefore a pure function of the seed — testable without sleeps.
//!
//! # Determinism
//!
//! Monitoring observes and never feeds back: the verdict stream (pinned
//! by [`ServingOutcome::digest`]) is byte-identical with monitoring on
//! or off, traced or untraced — `tests/determinism.rs` asserts it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hmd_core::framework::SERVING_BASELINE;
use hmd_core::{CoreError, Framework, FrameworkConfig, ServingArtifacts, Verdict};
use hmd_ml::{BinaryMetrics, ConfusionMatrix};
use hmd_obs::{
    default_rules, render_metrics, AlertEngine, HttpServer, MonitorSnapshot, Response,
    SampleRecord, ServingMonitor, SloRule, WindowConfig,
};
use hmd_rl::ConstraintKind;
use hmd_sim::{StreamConfig, WindowStream};
use hmd_telemetry::clock;
use hmd_util::rng::prelude::*;

/// Quarantined samples are discarded past this count — a serving loop
/// cannot grow memory without bound while waiting for the next offline
/// retraining round.
const QUARANTINE_CAP: usize = 512;

/// A phase of elevated adversarial traffic.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Burst {
    /// Burst start, as a fraction of the sample budget.
    pub start: f64,
    /// Burst end (exclusive), as a fraction of the sample budget.
    pub end: f64,
    /// Probability that a burst-phase sample is adversarial.
    pub adv_fraction: f64,
}

/// Configuration of one serving session.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Training-time configuration (corpus, attack, predictor, …).
    pub framework: FrameworkConfig,
    /// The constraint the controller deploys under.
    /// [`ConstraintKind::BestDetection`] is latency-independent and
    /// therefore fully deterministic.
    pub kind: ConstraintKind,
    /// Samples to stream before the session completes.
    pub samples: usize,
    /// Malware fraction of the *streamed* (non-adversarial) traffic.
    pub malware_fraction: f64,
    /// Baseline probability that a sample is drawn from the adversarial
    /// pool instead of the stream.
    pub adv_fraction: f64,
    /// Optional adversarial burst phase.
    pub burst: Option<Burst>,
    /// Stream-time nanoseconds per sample (paper: 10 ms per window).
    pub tick_ns: u64,
    /// Sliding-window shape for all monitor aggregates.
    pub window: WindowConfig,
    /// SLO rule set for the alert engine.
    pub rules: Vec<SloRule>,
    /// Evaluate alerts every this many samples.
    pub evaluate_every: usize,
    /// Run the integrity monitor over the windowed confusion every this
    /// many samples.
    pub integrity_every: usize,
    /// Record into the monitor at all. Exists so the determinism suite
    /// can prove monitoring never perturbs detection.
    pub monitoring: bool,
    /// Clean windows classified before serving starts to re-record the
    /// integrity baseline on *deployment* traffic (the paper's
    /// scenario (a): baseline on legitimate data). The offline test
    /// split is tiny and optimistic — windows of one app instance land
    /// on both sides of the split — so a baseline taken there drifts
    /// against healthy live traffic. Zero keeps the offline baseline.
    pub calibration_samples: usize,
    /// Seed for traffic interleaving (stream + adversarial injection).
    pub stream_seed: u64,
}

impl ServingConfig {
    /// A small, fast session: quick corpus, 600 samples at 10 ms ticks,
    /// a 100%-adversarial burst across the middle third, 2 s sliding
    /// window. The burst deterministically fires the
    /// `adversarial_flag_rate` SLO and the window slide resolves it.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        let mut framework = FrameworkConfig::quick(seed);
        // serving assesses windowed confusion on live traffic, whose mix
        // differs from the offline merged test set; only flag collapse
        framework.integrity_tolerance = 0.25;
        Self {
            framework,
            kind: ConstraintKind::BestDetection,
            samples: 600,
            malware_fraction: 0.3,
            adv_fraction: 0.02,
            // early enough that the drift/flag-rate windows slide clean
            // again before the budget runs out — the demo must recover
            burst: Some(Burst { start: 0.3, end: 0.5, adv_fraction: 1.0 }),
            tick_ns: 10_000_000, // 10 ms, the paper's sampling period
            window: WindowConfig::new(8, 250_000_000), // 2 s / 200 samples
            rules: default_rules(),
            evaluate_every: 20,
            integrity_every: 100,
            monitoring: true,
            calibration_samples: 200,
            stream_seed: seed ^ 0x5452_4146, // "TRAF"
        }
    }
}

/// The state shared between the serving loop and HTTP scrape threads.
#[derive(Debug)]
struct Shared {
    monitor: ServingMonitor,
    engine: Mutex<AlertEngine>,
    /// Current stream time, published per sample.
    t_ns: AtomicU64,
    /// Set by the `/quit` endpoint.
    quit: AtomicBool,
}

impl Shared {
    fn engine(&self) -> std::sync::MutexGuard<'_, AlertEngine> {
        // evaluate() can only panic on a poisoned telemetry sink, never
        // mid-update of the firing vector
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Summary of a finished (or in-flight) session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServingOutcome {
    /// Samples classified so far.
    pub processed: usize,
    /// FNV-1a digest over the verdict sequence — the determinism pin.
    pub digest: u64,
    /// Verdict counts: `[adversarial, malware, benign]`.
    pub verdicts: [u64; 3],
    /// Alert fire+resolve edges so far.
    pub alert_transitions: u64,
    /// Whether `/healthz` would currently report healthy.
    pub healthy: bool,
    /// Integrity drift events escalated into the window.
    pub drift_events: u64,
}

/// A streaming detection session. See the module docs.
#[derive(Debug)]
pub struct ServingSession {
    cfg: ServingConfig,
    artifacts: ServingArtifacts,
    stream: WindowStream,
    /// Indices of the engineered features within the raw stream row.
    feature_idx: Vec<usize>,
    /// Reusable engineered-row buffer — the hot loop never allocates it.
    scratch: Vec<f64>,
    rng: StdRng,
    adv_cursor: usize,
    processed: usize,
    digest: u64,
    verdicts: [u64; 3],
    drift_events: u64,
    shared: Arc<Shared>,
    http: Option<HttpServer>,
}

impl ServingSession {
    /// Trains all components ([`Framework::prepare_serving`]) and
    /// assembles the session. Expensive: runs phases 1–5.
    ///
    /// # Errors
    ///
    /// Propagates training failures; rejects a stream that does not
    /// carry every engineered feature.
    pub fn start(cfg: ServingConfig) -> Result<Self, CoreError> {
        let _span = hmd_telemetry::span("serving.start");
        let artifacts = Framework::new(cfg.framework.clone()).prepare_serving(cfg.kind)?;
        let stream = WindowStream::new(StreamConfig {
            malware_fraction: cfg.malware_fraction,
            windows_per_app: cfg.framework.corpus.windows_per_app,
            warmup_windows: cfg.framework.corpus.warmup_windows,
            machine: cfg.framework.corpus.machine,
            perf: cfg.framework.corpus.perf.clone(),
            isolation: cfg.framework.corpus.isolation,
            seed: cfg.stream_seed,
        });
        let stream_names = stream.feature_names();
        let feature_idx: Vec<usize> = artifacts
            .bundle
            .feature_names
            .iter()
            .map(|want| stream_names.iter().position(|n| n == want))
            .collect::<Option<_>>()
            .ok_or(CoreError::MissingFeature)?;
        let scratch = vec![0.0; feature_idx.len()];
        if cfg.calibration_samples > 0 {
            calibrate(&artifacts, &cfg, &feature_idx)?;
        }
        let shared = Arc::new(Shared {
            monitor: ServingMonitor::new(cfg.window),
            engine: Mutex::new(AlertEngine::new(cfg.rules.clone())),
            t_ns: AtomicU64::new(0),
            quit: AtomicBool::new(false),
        });
        let rng = StdRng::seed_from_u64(cfg.stream_seed ^ 0x414456); // "ADV"
        Ok(Self {
            cfg,
            artifacts,
            stream,
            feature_idx,
            scratch,
            rng,
            adv_cursor: 0,
            processed: 0,
            digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            verdicts: [0; 3],
            drift_events: 0,
            shared,
            http: None,
        })
    }

    /// Starts the HTTP endpoint (use port 0 for an ephemeral port) and
    /// returns the bound address. Routes: `/metrics`, `/healthz`,
    /// `/snapshot.json`, `/quit`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_http(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let shared = Arc::clone(&self.shared);
        let server = HttpServer::start(
            addr,
            Arc::new(move |req: &hmd_obs::Request| handle(&shared, &req.path)),
        )?;
        let bound = server.addr();
        self.http = Some(server);
        Ok(bound)
    }

    /// Classifies one sample; returns `false` once the budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn step(&mut self) -> Result<bool, CoreError> {
        if self.processed >= self.cfg.samples {
            return Ok(false);
        }
        #[allow(clippy::cast_precision_loss)]
        let progress = self.processed as f64 / self.cfg.samples as f64;
        let adv_p = match self.cfg.burst {
            Some(b) if (b.start..b.end).contains(&progress) => b.adv_fraction,
            _ => self.cfg.adv_fraction,
        };
        // drawn unconditionally so traffic is independent of pool size
        let inject = self.rng.random::<f64>() < adv_p;
        let pool = &self.artifacts.attacks.train_result.adversarial;
        let truth_attack = if inject && !pool.is_empty() {
            let row = pool.row(self.adv_cursor % pool.len())?;
            self.adv_cursor += 1;
            self.scratch.copy_from_slice(row);
            true
        } else {
            let w = self.stream.next().expect("stream is endless");
            for (dst, &src) in self.scratch.iter_mut().zip(&self.feature_idx) {
                *dst = w.values[src];
            }
            self.artifacts.bundle.scaler.transform_row(&mut self.scratch)?;
            w.is_malware()
        };

        let t0 = clock::now_ns();
        let verdict = self.artifacts.detector.classify(&self.scratch)?;
        let latency_ns = clock::now_ns().saturating_sub(t0);

        self.digest = fnv1a_step(self.digest, verdict);
        self.verdicts[verdict_slot(verdict)] += 1;
        self.processed += 1;
        if self.artifacts.detector.quarantined() >= QUARANTINE_CAP {
            // between offline retraining rounds the buffer must stay
            // bounded; dropping oldest-first would need order we don't
            // track, so drop the whole batch
            let _ = self.artifacts.detector.take_quarantine();
        }

        let now_ns = self.processed as u64 * self.cfg.tick_ns;
        self.shared.t_ns.store(now_ns, Ordering::Relaxed);
        if self.cfg.monitoring {
            self.observe(now_ns, truth_attack, verdict, latency_ns);
        }
        Ok(true)
    }

    /// The monitoring half of one step: window recording, periodic
    /// alert evaluation, periodic integrity assessment with drift
    /// escalation.
    fn observe(&mut self, now_ns: u64, truth_attack: bool, verdict: Verdict, latency_ns: u64) {
        self.shared.monitor.record_at(
            now_ns,
            SampleRecord {
                truth_attack,
                verdict_attack: verdict.is_attack(),
                flagged_adversarial: verdict == Verdict::AdversarialAttack,
                latency_ns,
            },
        );
        if self.processed.is_multiple_of(self.cfg.evaluate_every) {
            let snap = self.shared.monitor.snapshot_at(now_ns);
            let _ = self.shared.engine().evaluate(&snap);
        }
        if self.processed.is_multiple_of(self.cfg.integrity_every) {
            let snap = self.shared.monitor.snapshot_at(now_ns);
            let matrix = confusion_of(&snap);
            if matrix.total() > 0 {
                let event =
                    self.artifacts.monitor.assess_confusion(SERVING_BASELINE, &matrix);
                if !event.is_stable() {
                    // escalate: metric drift becomes a windowed event the
                    // DriftCeiling SLO rule can fire on
                    self.shared.monitor.record_drift_at(now_ns);
                    self.drift_events += 1;
                }
            }
        }
    }

    /// Runs [`step`](Self::step) until the budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn run_to_completion(&mut self) -> Result<ServingOutcome, CoreError> {
        while self.step()? {}
        Ok(self.outcome())
    }

    /// The session summary so far.
    #[must_use]
    pub fn outcome(&self) -> ServingOutcome {
        let engine = self.shared.engine();
        ServingOutcome {
            processed: self.processed,
            digest: self.digest,
            verdicts: self.verdicts,
            alert_transitions: engine.transitions(),
            healthy: engine.healthy(),
            drift_events: self.drift_events,
        }
    }

    /// The monitor's current windowed view.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        self.shared.monitor.snapshot_at(self.shared.t_ns.load(Ordering::Relaxed))
    }

    /// Whether a client requested shutdown via `/quit`.
    #[must_use]
    pub fn quit_requested(&self) -> bool {
        self.shared.quit.load(Ordering::SeqCst)
    }

    /// The bound HTTP address, when serving.
    #[must_use]
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// The trained artifacts (detector, monitor, attack pool).
    #[must_use]
    pub fn artifacts(&self) -> &ServingArtifacts {
        &self.artifacts
    }

    /// Stops the HTTP endpoint (if running). Called on drop as well.
    pub fn finish(&mut self) {
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
    }
}

/// Re-records the integrity baseline from the detector's confusion on a
/// held-out slice of clean deployment traffic (separate stream seed, so
/// serving replays none of it). The offline test-split baseline is
/// optimistic — with multiple windows per app instance the split leaks —
/// and would keep the drift alert latched on healthy live traffic.
fn calibrate(
    artifacts: &ServingArtifacts,
    cfg: &ServingConfig,
    feature_idx: &[usize],
) -> Result<(), CoreError> {
    let _span = hmd_telemetry::span("serving.calibrate");
    let mut stream = WindowStream::new(StreamConfig {
        malware_fraction: cfg.malware_fraction,
        windows_per_app: cfg.framework.corpus.windows_per_app,
        warmup_windows: cfg.framework.corpus.warmup_windows,
        machine: cfg.framework.corpus.machine,
        perf: cfg.framework.corpus.perf.clone(),
        isolation: cfg.framework.corpus.isolation,
        seed: cfg.stream_seed ^ 0x43414C, // "CAL"
    });
    let mut row = vec![0.0; feature_idx.len()];
    let mut matrix = ConfusionMatrix::default();
    for _ in 0..cfg.calibration_samples {
        let w = stream.next().expect("stream is endless");
        for (dst, &src) in row.iter_mut().zip(feature_idx) {
            *dst = w.values[src];
        }
        artifacts.bundle.scaler.transform_row(&mut row)?;
        let attack = artifacts.detector.classify(&row)?.is_attack();
        match (w.is_malware(), attack) {
            (true, true) => matrix.tp += 1,
            (true, false) => matrix.fn_ += 1,
            (false, true) => matrix.fp += 1,
            (false, false) => matrix.tn += 1,
        }
    }
    let _ = artifacts.detector.take_quarantine();
    artifacts
        .monitor
        .record_baseline(SERVING_BASELINE, BinaryMetrics::from_confusion(&matrix));
    Ok(())
}

/// HTTP dispatch for the serving endpoints.
fn handle(shared: &Shared, path: &str) -> Response {
    match path {
        "/metrics" => {
            let snap = shared.monitor.snapshot_at(shared.t_ns.load(Ordering::Relaxed));
            let page = render_metrics(&snap, &shared.engine());
            Response::ok(page)
        }
        "/healthz" => {
            if shared.engine().healthy() {
                Response::status(200, "ok\n")
            } else {
                Response::status(503, "critical SLO firing\n")
            }
        }
        "/snapshot.json" => {
            Response::json(hmd_telemetry::snapshot_json("serving").to_string())
        }
        "/quit" => {
            shared.quit.store(true, Ordering::SeqCst);
            Response::status(200, "shutting down\n")
        }
        _ => Response::status(404, "unknown path\n"),
    }
}

/// The windowed confusion matrix of a snapshot.
#[allow(clippy::cast_possible_truncation)]
fn confusion_of(snap: &MonitorSnapshot) -> ConfusionMatrix {
    ConfusionMatrix {
        tp: snap.tp as usize,
        fp: snap.fp as usize,
        tn: snap.tn as usize,
        fn_: snap.fn_ as usize,
    }
}

fn verdict_slot(v: Verdict) -> usize {
    match v {
        Verdict::AdversarialAttack => 0,
        Verdict::MalwareAttack => 1,
        Verdict::Benign => 2,
    }
}

fn fnv1a_step(hash: u64, v: Verdict) -> u64 {
    (hash ^ (verdict_slot(v) as u64 + 1)).wrapping_mul(0x0100_0000_01b3)
}
