//! The long-running serving mode: streaming detection sessions that
//! push simulated HPC traffic through the deployed
//! [`AdaptiveDetector`](hmd_core::AdaptiveDetector) while the `hmd-obs`
//! subsystem watches.
//!
//! One [`ServingSession`] owns one shard of the loop:
//!
//! * traffic — a seeded [`WindowStream`] of benign/malware windows, plus
//!   adversarial samples replayed from the LowProFool pool at a
//!   configurable (optionally bursting) rate;
//! * detection — feature-select + scale into a reusable scratch row,
//!   classify (one row at a time, or a whole batch through a single
//!   blocked matmul via [`ServingSession::step_batch`]), time the
//!   inference;
//! * monitoring — record into the sliding-window [`ServingMonitor`],
//!   periodically evaluate the [`AlertEngine`] and run the integrity
//!   monitor over the windowed confusion, escalating unstable
//!   assessments into windowed drift events.
//!
//! [`FleetSession`] scales that loop across cores: N independently
//! seeded shards share one trained [`ServingArtifacts`] (and its
//! quarantine ring) and run on one OS thread each, merged behind a
//! single [`HttpServer`] answering `/metrics`, `/healthz`,
//! `/snapshot.json`, `/history.json`, `/traces.json`, `/dashboard` and
//! `/quit` from a worker pool with keep-alive.
//!
//! # Model lifecycle
//!
//! With [`ServingConfig::retrain_every`] set, the fleet closes the
//! paper's arms-race loop (Figure 1) online: a [`ModelHub`] coordinates
//! a background retrainer thread that drains the shared quarantine ring
//! at seeded sample boundaries, absorbs it into the living training
//! database ([`Framework::retraining_round`]), refits the model zoo,
//! re-derives the SLO calibration, re-hashes the promoted models into a
//! [`ModelRegistry`], and atomically publishes the refreshed
//! [`ServingArtifacts`] as the next generation. Shards rendezvous at
//! each boundary and hot-swap their `Arc` (re-warming their inference
//! arenas) without dropping a window; `/metrics` exposes the deployed
//! generation and swap count.
//!
//! # Stream time
//!
//! Each shard advances a logical clock by [`ServingConfig::tick_ns`]
//! per sample (default: the paper's 10 ms sampling period) and drives
//! every window and alert off that clock. Alert firing and resolution
//! are therefore a pure function of the seed — testable without sleeps.
//!
//! # Determinism
//!
//! Monitoring observes and never feeds back: the verdict stream (pinned
//! by [`ServingOutcome::digest`]) is byte-identical with monitoring on
//! or off, traced or untraced, batched or scalar, arena or allocating,
//! at any thread count — `tests/determinism.rs` asserts it. Batching
//! preserves verdicts bit-for-bit because the blocked matmul's
//! per-element accumulation order is row-count-invariant.
//!
//! # Allocation-free steady state
//!
//! Every session warms up a per-shard [`hmd_core::InferArena`] sized
//! from the model topology and [`ServingConfig::batch`]; with
//! [`ServingConfig::arena`] on (the default), classification runs
//! entirely inside those preallocated buffers. With a replay ring
//! ([`ServingConfig::replay`]) standing in for live traffic synthesis
//! the whole steady-state loop — draw, classify, monitor, alert, and
//! integrity checks included — performs zero heap allocations per
//! window; `tests/alloc.rs` proves it under a counting global
//! allocator.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use hmd_core::framework::SERVING_BASELINE;
use hmd_core::{
    AdaptiveDetector, CoreError, Framework, FrameworkConfig, InferArena, ServingArtifacts, Verdict,
};
use hmd_integrity::{MetricMonitor, ModelRegistry};
use hmd_ml::{classical_models, BinaryMetrics, Classifier, ConfusionMatrix};
use hmd_obs::history::FINE_EVERY;
use hmd_obs::{
    append_incident_series, append_promotion_series, default_rules, history_json,
    render_metrics_fleet, AlertEngine, AlertTransition, HistoryAccumulator, HttpServer,
    MetricsHistory, MonitorSnapshot, Response, SampleRecord, ServingMonitor, SloKind, SloRule,
    TierSnapshot, WindowConfig, DASHBOARD_HTML,
};
use hmd_tabular::Dataset;
use hmd_rl::ConstraintKind;
use hmd_sim::{StreamConfig, WindowStream};
use hmd_telemetry::clock;
use hmd_util::json::Json;
use hmd_util::rng::prelude::*;

use crate::recorder::{
    self, FlightRecorder, IncidentBundle, IncidentMonitor, IncidentTrigger, TraceReason,
    TraceSnapshot, TraceStore, WindowTrace,
};

/// A phase of elevated adversarial traffic.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Burst {
    /// Burst start, as a fraction of the sample budget.
    pub start: f64,
    /// Burst end (exclusive), as a fraction of the sample budget.
    pub end: f64,
    /// Probability that a burst-phase sample is adversarial.
    pub adv_fraction: f64,
}

/// Configuration of one serving session.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Training-time configuration (corpus, attack, predictor, …).
    pub framework: FrameworkConfig,
    /// The constraint the controller deploys under.
    /// [`ConstraintKind::BestDetection`] is latency-independent and
    /// therefore fully deterministic.
    pub kind: ConstraintKind,
    /// Samples to stream before the session completes.
    pub samples: usize,
    /// Malware fraction of the *streamed* (non-adversarial) traffic.
    pub malware_fraction: f64,
    /// Baseline probability that a sample is drawn from the adversarial
    /// pool instead of the stream.
    pub adv_fraction: f64,
    /// Optional adversarial burst phase.
    pub burst: Option<Burst>,
    /// Stream-time nanoseconds per sample (paper: 10 ms per window).
    pub tick_ns: u64,
    /// Sliding-window shape for all monitor aggregates.
    pub window: WindowConfig,
    /// SLO rule set for the alert engine.
    pub rules: Vec<SloRule>,
    /// Evaluate alerts every this many samples.
    pub evaluate_every: usize,
    /// Run the integrity monitor over the windowed confusion every this
    /// many samples.
    pub integrity_every: usize,
    /// Record into the monitor at all. Exists so the determinism suite
    /// can prove monitoring never perturbs detection.
    pub monitoring: bool,
    /// Clean windows classified before serving starts to re-record the
    /// integrity baseline on *deployment* traffic (the paper's
    /// scenario (a): baseline on legitimate data). The offline test
    /// split is tiny and optimistic — windows of one app instance land
    /// on both sides of the split — so a baseline taken there drifts
    /// against healthy live traffic. Zero keeps the offline baseline.
    pub calibration_samples: usize,
    /// Seed for traffic interleaving (stream + adversarial injection).
    pub stream_seed: u64,
    /// Samples classified per detector call: 1 is the scalar path, more
    /// vectorizes feature-select + scale + classify so the whole batch
    /// goes through one blocked matmul. Verdicts are identical at any
    /// batch size.
    pub batch: usize,
    /// Route classification through the warmed-up per-shard
    /// [`InferArena`] (zero steady-state heap allocations) instead of
    /// the allocating detector paths. Verdicts are bit-identical either
    /// way; the switch exists so the determinism suite and benchmarks
    /// can compare the two paths.
    pub arena: bool,
    /// When nonzero, pre-draw this many samples at construction and
    /// cycle through them instead of synthesizing live traffic. The
    /// replay ring removes the stream generator's per-app refill
    /// allocations from the loop, making the whole steady state
    /// allocation-free — the mode `tests/alloc.rs` and the substrates
    /// benchmark measure. Zero (the default) streams live traffic.
    pub replay: usize,
    /// When nonzero, run a quarantine-draining retraining round every
    /// this many samples per shard: shards rendezvous at each boundary
    /// while a background retrainer absorbs the drained quarantine into
    /// the training database, refits the zoo and hot-swaps the
    /// refreshed artifacts as the next model generation (see the module
    /// docs). The swap schedule is a pure function of the seed. Zero
    /// (the default) serves generation 0 forever.
    pub retrain_every: usize,
    /// The seed [`quick`](Self::quick) was built from — recorded into
    /// incident bundles so forensic replay can rebuild the identical
    /// configuration (`quick(base_seed)` + the bundle's overrides).
    pub base_seed: u64,
    /// Flight-recorder ring capacity: each shard keeps the last this
    /// many served windows (row, per-model probabilities, critic score,
    /// routing, verdict, generation, latency) in preallocated buffers
    /// and snapshots them into an [`IncidentBundle`] on every SLO alert
    /// fire edge. Recording is allocation-free. Zero disables the
    /// recorder (and incident capture).
    pub recorder: usize,
    /// Retain every published artifacts generation on the hub so
    /// [`ModelHub::artifacts_at`] can pin past generations after the
    /// run — the replay binary's way back to the exact models that
    /// served a bundle's windows. Off by default (it holds every
    /// retired zoo alive).
    pub retain_generations: bool,
}

/// The stream seed of shard `i` in a fleet: shard 0 keeps the base seed
/// (a one-shard fleet is exactly a [`ServingSession`]), later shards
/// decorrelate via a golden-ratio multiply.
#[must_use]
pub fn shard_stream_seed(base: u64, shard: usize) -> u64 {
    base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl ServingConfig {
    /// A small, fast session: quick corpus, 600 samples at 10 ms ticks,
    /// a 100%-adversarial burst across the middle third, 2 s sliding
    /// window. The burst deterministically fires the
    /// `adversarial_flag_rate` SLO and the window slide resolves it.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        let mut framework = FrameworkConfig::quick(seed);
        // serving assesses windowed confusion on live traffic, whose mix
        // differs from the offline merged test set; only flag collapse
        framework.integrity_tolerance = 0.25;
        Self {
            framework,
            kind: ConstraintKind::BestDetection,
            samples: 600,
            malware_fraction: 0.3,
            adv_fraction: 0.02,
            // early enough that the drift/flag-rate windows slide clean
            // again before the budget runs out — the demo must recover
            burst: Some(Burst { start: 0.3, end: 0.5, adv_fraction: 1.0 }),
            tick_ns: 10_000_000, // 10 ms, the paper's sampling period
            window: WindowConfig::new(8, 250_000_000), // 2 s / 200 samples
            rules: default_rules(),
            evaluate_every: 20,
            integrity_every: 100,
            monitoring: true,
            calibration_samples: 200,
            stream_seed: seed ^ 0x5452_4146, // "TRAF"
            batch: 1,
            arena: true,
            replay: 0,
            retrain_every: 0,
            base_seed: seed,
            recorder: 64,
            retain_generations: false,
        }
    }
}

/// What the deployment-traffic calibration pass observed: the
/// detector's confusion over clean (non-injected) streamed windows plus
/// how often the adversarial predictor flagged them. Besides
/// re-recording the integrity baseline, this is the evidence the
/// adaptive SLO derivation reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CalibrationReport {
    /// Confusion of the detector over the calibration stream.
    pub matrix: ConfusionMatrix,
    /// Calibration windows the adversarial predictor flagged.
    pub flagged: usize,
    /// Calibration windows classified.
    pub samples: usize,
    /// Rows the calibration pass pushed into the quarantine ring (and
    /// that were then discarded — calibration traffic is clean by
    /// construction and must never enter retraining). Surfaced as
    /// `hmd_serving_calibration_quarantined_total`.
    pub quarantined: usize,
}

impl CalibrationReport {
    /// Fraction of clean calibration traffic flagged as adversarial —
    /// the predictor's live false-flag floor.
    #[must_use]
    pub fn flag_rate(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.samples == 0 {
            0.0
        } else {
            self.flagged as f64 / self.samples as f64
        }
    }

    /// The detection-rate floor this deployment can honestly promise:
    /// calibrated true-positive rate minus slack, clamped to [0.30,
    /// 0.60] so a lucky calibration run cannot demand perfection and an
    /// unlucky one cannot excuse collapse.
    #[must_use]
    pub fn detection_floor(&self) -> f64 {
        (BinaryMetrics::from_confusion(&self.matrix).tpr - 0.15).clamp(0.30, 0.60)
    }

    /// The adversarial-flag-rate ceiling: a margin above the calibrated
    /// clean-traffic flag rate, clamped to [0.20, 0.45]. Below the base
    /// rate the alert would latch on healthy traffic; far above it an
    /// attack campaign would go unnoticed.
    #[must_use]
    pub fn flag_ceiling(&self) -> f64 {
        3.0f64.mul_add(self.flag_rate(), 0.1).clamp(0.20, 0.45)
    }

    /// Rewrites the detection-rate floor and flag-rate ceiling of a
    /// rule set in place with the calibrated thresholds, leaving every
    /// other rule (latency, drift) untouched.
    pub fn adapt_rules(&self, rules: &mut [SloRule]) {
        for rule in rules {
            match &mut rule.kind {
                SloKind::DetectionRateFloor(v) => *v = self.detection_floor(),
                SloKind::FlagRateCeiling(v) => *v = self.flag_ceiling(),
                _ => {}
            }
        }
    }
}

/// The most recent incident bundles a shard retains; older bundles are
/// evicted oldest-first. Incidents are rare (they require an alert fire
/// edge), so the bound exists to survive a flapping rule, not steady
/// state.
const MAX_INCIDENTS_PER_SHARD: usize = 8;

/// The state shared between the serving loop and HTTP scrape threads.
#[derive(Debug)]
struct Shared {
    monitor: ServingMonitor,
    engine: Mutex<AlertEngine>,
    /// Current stream time, published per sample.
    t_ns: AtomicU64,
    /// Set by the `/quit` endpoint.
    quit: AtomicBool,
    /// Incident bundles captured on alert fire edges, oldest first,
    /// bounded by [`MAX_INCIDENTS_PER_SHARD`].
    incidents: Mutex<Vec<Arc<IncidentBundle>>>,
    /// Lifetime incidents captured (eviction never decrements).
    incidents_total: AtomicU64,
    /// Clean calibration rows the adversarial predictor flagged on this
    /// shard's calibration pass (quarantined, then discarded).
    calibration_quarantined: AtomicU64,
    /// Multi-resolution metrics history: one point per [`FINE_EVERY`]
    /// windows, folding fine → mid → coarse. Served at `/history.json`.
    history: MetricsHistory,
    /// Promoted per-window stage traces (flagged + latency tail),
    /// served at `/traces.json` and embedded into incident bundles.
    traces: Mutex<TraceStore>,
}

impl Shared {
    fn engine(&self) -> MutexGuard<'_, AlertEngine> {
        // evaluate() can only panic on a poisoned telemetry sink, never
        // mid-update of the firing vector
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn incidents(&self) -> MutexGuard<'_, Vec<Arc<IncidentBundle>>> {
        self.incidents.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn traces(&self) -> MutexGuard<'_, TraceStore> {
        self.traces.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn trace_snapshot(&self) -> TraceSnapshot {
        let store = self.traces();
        TraceSnapshot { flagged: store.flagged(), tail: store.tail() }
    }

    fn push_incident(&self, bundle: IncidentBundle) {
        let mut store = self.incidents();
        if store.len() == MAX_INCIDENTS_PER_SHARD {
            store.remove(0);
        }
        store.push(Arc::new(bundle));
        drop(store);
        self.incidents_total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Rendezvous state guarded by the hub's barrier mutex.
#[derive(Debug)]
struct HubBarrier {
    /// Shards currently registered with the hub.
    active: usize,
    /// Shards waiting at the current retraining boundary.
    arrived: usize,
    /// Highest generation published so far.
    published: usize,
    /// The SLO rule set of the published generation (recalibrated at
    /// every swap when the config carries a calibration budget).
    rules: Vec<SloRule>,
    /// The living training database retraining rounds extend.
    training: Dataset,
    /// A failed round poisons the loop: every waiter unblocks with the
    /// error instead of silently serving a stale generation.
    failed: Option<CoreError>,
}

/// The model-lifecycle coordinator behind a retraining fleet: the
/// generation-tagged publication slot every shard reads at its
/// retraining boundaries, the rendezvous state the shards and the
/// background retrainer synchronize on, and the integrity registry
/// re-hashed at every promotion.
///
/// # Swap protocol
///
/// The schedule is seeded, not timed: with `retrain_every = E`, sample
/// `k` of every shard must be classified by generation `⌊k/E⌋`. A shard
/// reaching a boundary arrives at the barrier; once every active shard
/// has arrived, the retrainer drains the shared quarantine (sorted into
/// a canonical order, because shards race pushing into the ring), runs
/// [`Framework::retraining_round`], assembles fresh [`ServingArtifacts`]
/// around the *shared* adversarial predictor and the *cloned*
/// constraint controller (selection preserved; latency is never
/// re-profiled, which would be wall-clock and break determinism),
/// re-derives the SLO calibration, re-hashes the promoted zoo into the
/// [`ModelRegistry`] under its generation tag, publishes, and wakes the
/// shards — which swap their `Arc`, re-warm their arenas, and resume.
/// No window is dropped: boundary samples wait for the publication
/// instead of being skipped, and between boundaries the only cost is
/// one modulo check per batch.
#[derive(Debug)]
pub struct ModelHub {
    /// The published artifacts generation — tiny critical sections only.
    current: Mutex<Arc<ServingArtifacts>>,
    barrier: Mutex<HubBarrier>,
    arrivals: Condvar,
    /// Published generation number, mirrored out of the barrier for
    /// lock-free scraping.
    generation: AtomicU64,
    /// Promotions that actually swapped models (a boundary with an
    /// empty quarantine bumps the generation without swapping).
    swaps: AtomicU64,
    /// Quarantined rows absorbed into the training database, lifetime.
    absorbed: AtomicU64,
    /// Eviction counts of retired detector generations, folded in at
    /// the swap moment so the exposed total never dips.
    evicted_carry: AtomicU64,
    registry: ModelRegistry,
    /// Clean calibration rows the per-generation recalibration passes
    /// flagged (quarantined, then discarded — see
    /// [`CalibrationReport::quarantined`]).
    cal_quarantined: AtomicU64,
    /// Every published artifacts generation, index = generation, when
    /// [`ServingConfig::retain_generations`] asks for it (forensic
    /// replay pins past generations through this). Empty otherwise.
    history: Mutex<Vec<Arc<ServingArtifacts>>>,
    retain_generations: bool,
    retrain_every: usize,
    /// Rounds the sample budget schedules: `⌈samples/every⌉ - 1` —
    /// there is no boundary at the final sample.
    rounds: usize,
    /// Template for per-generation recalibration (stream seed is
    /// re-derived per generation).
    cal_cfg: ServingConfig,
    feature_idx: Vec<usize>,
}

impl ModelHub {
    fn new(
        cfg: &ServingConfig,
        artifacts: &Arc<ServingArtifacts>,
        feature_idx: &[usize],
    ) -> Result<Arc<Self>, CoreError> {
        let rounds = if cfg.retrain_every == 0 || cfg.samples == 0 {
            0
        } else {
            (cfg.samples - 1) / cfg.retrain_every
        };
        let registry = ModelRegistry::new();
        register_generation(&registry, artifacts, 0)?;
        Ok(Arc::new(Self {
            current: Mutex::new(Arc::clone(artifacts)),
            barrier: Mutex::new(HubBarrier {
                active: 0,
                arrived: 0,
                published: 0,
                rules: cfg.rules.clone(),
                training: artifacts.training.clone(),
                failed: None,
            }),
            arrivals: Condvar::new(),
            generation: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            absorbed: AtomicU64::new(0),
            evicted_carry: AtomicU64::new(0),
            registry,
            cal_quarantined: AtomicU64::new(0),
            history: Mutex::new(if cfg.retain_generations {
                vec![Arc::clone(artifacts)]
            } else {
                Vec::new()
            }),
            retain_generations: cfg.retain_generations,
            retrain_every: cfg.retrain_every,
            rounds,
            cal_cfg: cfg.clone(),
            feature_idx: feature_idx.to_vec(),
        }))
    }

    fn lock_barrier(&self) -> MutexGuard<'_, HubBarrier> {
        self.barrier.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The currently published artifacts generation.
    #[must_use]
    pub fn current(&self) -> Arc<ServingArtifacts> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The published model generation (0 until the first promotion).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Promotions that swapped a refreshed model zoo in.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Quarantined rows absorbed into the training database, lifetime.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed.load(Ordering::Relaxed)
    }

    /// Lifetime quarantine evictions across every detector generation.
    #[must_use]
    pub fn quarantine_evicted(&self) -> u64 {
        self.evicted_carry.load(Ordering::Relaxed) + self.current().detector.quarantine_evicted()
    }

    /// The integrity registry re-hashed at every promotion: one record
    /// per deployed model, `deployed_at` = its generation.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Clean calibration rows the recalibration passes flagged and
    /// discarded, across every retraining round.
    #[must_use]
    pub fn calibration_quarantined(&self) -> u64 {
        self.cal_quarantined.load(Ordering::Relaxed)
    }

    /// The artifacts that served generation `g`, when the hub retains
    /// history ([`ServingConfig::retain_generations`]); `None` for an
    /// unknown generation or a hub that does not retain.
    #[must_use]
    pub fn artifacts_at(&self, g: u64) -> Option<Arc<ServingArtifacts>> {
        let history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        usize::try_from(g).ok().and_then(|i| history.get(i).cloned())
    }

    /// The retraining period, in samples per shard.
    #[must_use]
    pub fn retrain_every(&self) -> usize {
        self.retrain_every
    }

    /// How many retraining rounds the sample budget schedules.
    #[must_use]
    pub fn scheduled_rounds(&self) -> usize {
        self.rounds
    }

    fn register_shard(&self) {
        self.lock_barrier().active += 1;
    }

    fn retire_shard(&self) {
        let mut b = self.lock_barrier();
        b.active = b.active.saturating_sub(1);
        drop(b);
        self.arrivals.notify_all();
    }

    /// Blocks a shard at a retraining boundary until generation `want`
    /// is published, then returns the published artifacts and rules.
    fn await_generation(
        &self,
        want: usize,
    ) -> Result<(Arc<ServingArtifacts>, Vec<SloRule>), CoreError> {
        let mut b = self.lock_barrier();
        if b.published < want && b.failed.is_none() {
            b.arrived += 1;
            self.arrivals.notify_all();
            while b.published < want && b.failed.is_none() {
                b = self.arrivals.wait(b).unwrap_or_else(PoisonError::into_inner);
            }
        }
        if let Some(e) = &b.failed {
            return Err(e.clone());
        }
        Ok((self.current(), b.rules.clone()))
    }

    /// The retrainer thread body: wait for every active shard to arrive
    /// at the next boundary, run the round, publish, repeat until the
    /// schedule is exhausted, a round fails, or every shard retires.
    fn retrainer_loop(&self) {
        let mut b = self.lock_barrier();
        loop {
            if b.failed.is_some() || b.published >= self.rounds || b.active == 0 {
                break;
            }
            if b.arrived < b.active {
                b = self.arrivals.wait(b).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            let generation = b.published + 1;
            if let Err(e) = self.run_round(&mut b, generation) {
                b.failed = Some(e);
            }
            b.published = generation;
            b.arrived = 0;
            self.generation.store(generation as u64, Ordering::Relaxed);
            self.arrivals.notify_all();
        }
        drop(b);
        self.arrivals.notify_all();
    }

    /// One retraining round: drain → absorb → refit → recalibrate →
    /// re-hash → swap. Every active shard is parked at the barrier
    /// while this runs, so the quarantine ring is quiescent.
    fn run_round(&self, b: &mut HubBarrier, generation: usize) -> Result<(), CoreError> {
        let _span = hmd_telemetry::span("serving.retraining_round");
        let old = self.current();
        let mut absorbed = 0usize;
        let mut swapped = false;
        // an empty ring means this boundary has nothing to learn from:
        // the generation still advances (the schedule is seeded, not
        // conditional) but the deployed models are untouched
        if old.detector.quarantined() > 0 {
            let drained = canonical_quarantine_order(&old.detector.take_quarantine())?;
            let mut models = classical_models();
            absorbed = Framework::retraining_round(&mut models, &mut b.training, &drained)?;
            let detector = AdaptiveDetector::with_shared_predictor(
                old.detector.predictor_handle(),
                old.detector.controller().clone(),
                models,
                old.bundle.feature_names.clone(),
            )?;
            detector.set_quarantine_cap(old.detector.quarantine_cap());
            let monitor = MetricMonitor::new(self.cal_cfg.framework.integrity_tolerance);
            let fresh = Arc::new(ServingArtifacts {
                bundle: old.bundle.clone(),
                attacks: old.attacks.clone(),
                detector,
                monitor,
                kind: old.kind,
                training: b.training.clone(),
            });
            if self.cal_cfg.calibration_samples > 0 {
                // re-derive the SLO calibration for the refreshed
                // detector on a per-generation stream, recording its
                // integrity baseline and rewriting the adaptive
                // thresholds the shards will install at pickup
                let mut cal = self.cal_cfg.clone();
                cal.stream_seed = generation_seed(self.cal_cfg.stream_seed, generation);
                let report = calibrate(&fresh, &cal, &self.feature_idx)?;
                self.cal_quarantined.fetch_add(report.quarantined as u64, Ordering::Relaxed);
                report.adapt_rules(&mut b.rules);
            } else if let Some(baseline) = old.monitor.baseline(SERVING_BASELINE) {
                // no calibration budget: the prior baseline carries over
                fresh.monitor.record_baseline(SERVING_BASELINE, baseline);
            }
            // the promoted zoo is re-hashed under its generation tag
            // before any shard can serve it
            register_generation(&self.registry, &fresh, generation as u64)?;
            {
                let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
                // the retiring detector's eviction count folds into the
                // carry at the same moment the Arc swaps, so the
                // exposed total never double-counts or dips
                self.evicted_carry
                    .fetch_add(current.detector.quarantine_evicted(), Ordering::Relaxed);
                *current = fresh;
            }
            self.swaps.fetch_add(1, Ordering::Relaxed);
            self.absorbed.fetch_add(absorbed as u64, Ordering::Relaxed);
            swapped = true;
        }
        if self.retain_generations {
            // history[g] = the artifacts serving generation g — the
            // current ones even when an empty quarantine skipped the
            // swap, so replay can pin any generation unconditionally
            let current = self.current();
            self.history.lock().unwrap_or_else(PoisonError::into_inner).push(current);
        }
        if hmd_telemetry::enabled() {
            hmd_telemetry::event(
                "serving.model_promotion",
                Json::Obj(vec![
                    ("generation".to_owned(), Json::UInt(generation as u64)),
                    ("swapped".to_owned(), Json::Bool(swapped)),
                    ("absorbed".to_owned(), Json::UInt(absorbed as u64)),
                    ("training_rows".to_owned(), Json::UInt(b.training.len() as u64)),
                ]),
            );
        }
        Ok(())
    }
}

/// Spawns the hub's background retrainer. Exactly one per hub; spawned
/// only after every shard registered (a hub with zero active shards
/// exits immediately).
fn spawn_retrainer(hub: Arc<ModelHub>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("hmd-serving-retrainer".into())
        .spawn(move || hub.retrainer_loop())
        .expect("spawn retrainer thread")
}

/// The recalibration stream seed of a generation — decorrelated from
/// the base calibration stream and from the shard streams (which use
/// the golden-ratio constant).
fn generation_seed(base: u64, generation: usize) -> u64 {
    base ^ (generation as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// The canonical retraining order of a drained quarantine:
/// lexicographic over feature values. Shards race pushing into the
/// shared ring, so arrival order is scheduler-dependent; sorting makes
/// the merged training set — and every model refit on it — a pure
/// function of the *set* of quarantined rows.
fn canonical_quarantine_order(q: &Dataset) -> Result<Dataset, CoreError> {
    let mut idx: Vec<usize> = (0..q.len()).collect();
    idx.sort_by(|&a, &b| match (q.row(a), q.row(b)) {
        (Ok(ra), Ok(rb)) => ra
            .iter()
            .zip(rb)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal),
        _ => std::cmp::Ordering::Equal,
    });
    Ok(q.subset(&idx)?)
}

/// Number of probe rows hashed into each model fingerprint.
const FINGERPRINT_PROBE_ROWS: usize = 32;

/// Behavioral fingerprint of one model: its probability surface over a
/// fixed probe of training rows, serialized little-endian. The zoo has
/// no byte-level serialization; what serving trusts *is* the
/// probability surface, so hashing it catches any change in deployed
/// behavior.
fn model_fingerprint(model: &dyn Classifier, probe: &Dataset) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(probe.len() * 8);
    for (row, _) in probe {
        let p = model.predict_proba_row(row).unwrap_or(f64::NAN);
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    bytes
}

/// Registers every deployed model of a generation in the integrity
/// registry, `deployed_at` = the generation number.
fn register_generation(
    registry: &ModelRegistry,
    artifacts: &ServingArtifacts,
    generation: u64,
) -> Result<(), CoreError> {
    let probe_idx: Vec<usize> =
        (0..artifacts.bundle.train.len().min(FINGERPRINT_PROBE_ROWS)).collect();
    let probe = artifacts.bundle.train.subset(&probe_idx)?;
    for model in artifacts.detector.models() {
        registry.register(model.name(), &model_fingerprint(model.as_ref(), &probe), generation);
    }
    Ok(())
}

/// Summary of a finished (or in-flight) session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServingOutcome {
    /// Samples classified so far.
    pub processed: usize,
    /// FNV-1a digest over the verdict sequence — the determinism pin.
    pub digest: u64,
    /// Verdict counts: `[adversarial, malware, benign]`.
    pub verdicts: [u64; 3],
    /// Alert fire+resolve edges so far.
    pub alert_transitions: u64,
    /// Whether `/healthz` would currently report healthy.
    pub healthy: bool,
    /// Integrity drift events escalated into the window.
    pub drift_events: u64,
    /// The model generation this shard finished on (0 when retraining
    /// is off).
    pub generation: u64,
}

/// Wall-clock timings of one served window, as handed to
/// `record_verdict`: end-to-end and model-only latency plus the
/// (batch-amortized) durations of the draw and transform stages.
#[derive(Clone, Copy, Debug)]
struct StageTiming {
    latency_ns: u64,
    model_latency_ns: u64,
    draw_ns: u64,
    transform_ns: u64,
}

/// A streaming detection session — one shard of the serving loop. See
/// the module docs.
#[derive(Debug)]
pub struct ServingSession {
    cfg: ServingConfig,
    artifacts: Arc<ServingArtifacts>,
    stream: WindowStream,
    /// Indices of the engineered features within the raw stream row.
    feature_idx: Vec<usize>,
    /// Reusable engineered-row buffer — the hot loop never allocates it.
    scratch: Vec<f64>,
    /// Reusable flat batch buffer for [`step_batch`](Self::step_batch).
    batch_rows: Vec<f64>,
    /// Ground truth per batched sample, parallel to `batch_rows`.
    batch_truth: Vec<bool>,
    /// The warmed-up per-shard inference arena (see
    /// [`ServingConfig::arena`]).
    arena: InferArena,
    /// What calibration observed, when it ran (see
    /// [`ServingConfig::calibration_samples`]).
    calibration: Option<CalibrationReport>,
    /// Pre-drawn replay traffic, `replay × width` row-major (see
    /// [`ServingConfig::replay`]).
    replay_rows: Vec<f64>,
    /// Ground truth per replay row.
    replay_truth: Vec<bool>,
    replay_cursor: usize,
    rng: StdRng,
    adv_cursor: usize,
    processed: usize,
    digest: u64,
    verdicts: [u64; 3],
    drift_events: u64,
    shared: Arc<Shared>,
    http: Option<HttpServer>,
    /// The model-lifecycle hub, when retraining is on (see
    /// [`ServingConfig::retrain_every`]).
    hub: Option<Arc<ModelHub>>,
    /// The model generation this shard currently serves.
    generation: usize,
    /// The hub's retrainer thread, owned by whichever session (or
    /// fleet) created the hub; joined on drop.
    retrainer: Option<JoinHandle<()>>,
    /// Whether this shard already deregistered from the hub.
    retired: bool,
    /// The always-on flight recorder ring (see
    /// [`ServingConfig::recorder`]); `None` when disabled.
    recorder_ring: Option<FlightRecorder>,
    /// This shard's index within its fleet (0 for a standalone
    /// session) — stamped into incident bundle ids.
    shard: usize,
    /// Fleet width the shard runs under (1 standalone).
    n_shards: usize,
    /// The fleet base configuration's calibration budget. Shards > 0
    /// run with `calibration_samples: 0` (shard 0 calibrates for the
    /// fleet), but a bundle must record the *base* value replay
    /// rebuilds from.
    base_calibration_samples: usize,
    /// Incidents captured by this shard so far (bundle sequence).
    incident_seq: u64,
    /// Session-local history accumulator, flushed into the shared
    /// [`MetricsHistory`] every [`FINE_EVERY`] windows.
    hist_acc: HistoryAccumulator,
    /// Running per-window latency maximum — a window exceeding it is
    /// promoted into the latency-tail trace ring (wall-clock).
    latency_tail_max: u64,
    /// Wall-clock nanoseconds the current draw spent in the scaler
    /// transform, accumulated by [`draw_sample`](Self::draw_sample) so
    /// the stage trace can split draw from transform.
    transform_ns: u64,
}

impl ServingSession {
    /// Trains all components ([`Framework::prepare_serving`]) and
    /// assembles the session. Expensive: runs phases 1–5.
    ///
    /// # Errors
    ///
    /// Propagates training failures; rejects a stream that does not
    /// carry every engineered feature.
    pub fn start(cfg: ServingConfig) -> Result<Self, CoreError> {
        let _span = hmd_telemetry::span("serving.start");
        let artifacts = Arc::new(Framework::new(cfg.framework.clone()).prepare_serving(cfg.kind)?);
        Self::with_artifacts(cfg, artifacts)
    }

    /// Assembles a session around already-trained artifacts — the cheap
    /// path fleet shards and benchmarks use to share one training run.
    ///
    /// # Errors
    ///
    /// Rejects a stream that does not carry every engineered feature.
    pub fn with_artifacts(
        cfg: ServingConfig,
        artifacts: Arc<ServingArtifacts>,
    ) -> Result<Self, CoreError> {
        let base_calibration = cfg.calibration_samples;
        let mut session = Self::assemble(cfg, artifacts, None, 0, 1, base_calibration)?;
        // a standalone session owns its hub's retrainer thread; fleet
        // shards are assembled with a shared hub and the fleet owns it
        if let Some(hub) = &session.hub {
            session.retrainer = Some(spawn_retrainer(Arc::clone(hub)));
        }
        Ok(session)
    }

    /// Builds the session around `artifacts`, creating a [`ModelHub`]
    /// when retraining is on and none was handed in (fleet shards share
    /// the first shard's). Never spawns the retrainer — callers do,
    /// after every shard has registered.
    fn assemble(
        mut cfg: ServingConfig,
        artifacts: Arc<ServingArtifacts>,
        hub: Option<Arc<ModelHub>>,
        shard: usize,
        n_shards: usize,
        base_calibration_samples: usize,
    ) -> Result<Self, CoreError> {
        let stream = WindowStream::new(StreamConfig {
            malware_fraction: cfg.malware_fraction,
            windows_per_app: cfg.framework.corpus.windows_per_app,
            warmup_windows: cfg.framework.corpus.warmup_windows,
            machine: cfg.framework.corpus.machine,
            perf: cfg.framework.corpus.perf.clone(),
            isolation: cfg.framework.corpus.isolation,
            seed: cfg.stream_seed,
        });
        let stream_names = stream.feature_names();
        let feature_idx: Vec<usize> = artifacts
            .bundle
            .feature_names
            .iter()
            .map(|want| stream_names.iter().position(|n| n == want))
            .collect::<Option<_>>()
            .ok_or(CoreError::MissingFeature)?;
        let width = feature_idx.len();
        let scratch = vec![0.0; width];
        let calibration = if cfg.calibration_samples > 0 {
            let report = calibrate(&artifacts, &cfg, &feature_idx)?;
            // adaptive SLOs: replace the stock detection-rate floor and
            // flag-rate ceiling with thresholds this deployment's own
            // calibration traffic supports
            report.adapt_rules(&mut cfg.rules);
            Some(report)
        } else {
            None
        };
        // hub creation happens after calibration so the hub's initial
        // rule set is the calibration-adapted one
        let hub = match hub {
            Some(h) => Some(h),
            None if cfg.retrain_every > 0 => {
                Some(ModelHub::new(&cfg, &artifacts, &feature_idx)?)
            }
            None => None,
        };
        if let Some(h) = &hub {
            h.register_shard();
        }
        let shared = Arc::new(Shared {
            monitor: ServingMonitor::with_shard(cfg.window, shard),
            engine: Mutex::new(AlertEngine::new(cfg.rules.clone())),
            t_ns: AtomicU64::new(0),
            quit: AtomicBool::new(false),
            incidents: Mutex::new(Vec::new()),
            incidents_total: AtomicU64::new(0),
            calibration_quarantined: AtomicU64::new(
                calibration.map_or(0, |c| c.quarantined as u64),
            ),
            history: MetricsHistory::new(),
            traces: Mutex::new(TraceStore::new()),
        });
        let rng = StdRng::seed_from_u64(cfg.stream_seed ^ 0x414456); // "ADV"
        let arena = artifacts.detector.warmup(width, cfg.batch.max(1));
        let recorder_ring = (cfg.recorder > 0)
            .then(|| FlightRecorder::warmup(&artifacts.detector, width, cfg.recorder));
        let mut session = Self {
            batch_rows: Vec::with_capacity(cfg.batch.max(1) * width),
            batch_truth: Vec::with_capacity(cfg.batch.max(1)),
            replay_rows: Vec::with_capacity(cfg.replay * width),
            replay_truth: Vec::with_capacity(cfg.replay),
            replay_cursor: 0,
            cfg,
            artifacts,
            stream,
            feature_idx,
            scratch,
            arena,
            calibration,
            rng,
            adv_cursor: 0,
            processed: 0,
            digest: recorder::DIGEST_SEED,
            verdicts: [0; 3],
            drift_events: 0,
            shared,
            http: None,
            hub,
            generation: 0,
            retrainer: None,
            retired: false,
            recorder_ring,
            shard,
            n_shards,
            base_calibration_samples,
            incident_seq: 0,
            hist_acc: HistoryAccumulator::new(),
            latency_tail_max: 0,
            transform_ns: 0,
        };
        for k in 0..session.cfg.replay {
            let truth = session.draw_sample(k)?;
            session.replay_rows.extend_from_slice(&session.scratch);
            session.replay_truth.push(truth);
        }
        Ok(session)
    }

    /// Starts the HTTP endpoint (use port 0 for an ephemeral port) and
    /// returns the bound address. Routes: `/metrics`, `/healthz`,
    /// `/snapshot.json`, `/history.json`, `/traces.json`, `/dashboard`,
    /// `/incidents`, `/quit`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_http(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let state = EndpointState {
            shards: vec![Arc::clone(&self.shared)],
            artifacts: Arc::clone(&self.artifacts),
            hub: self.hub.clone(),
        };
        let server = HttpServer::start(
            addr,
            Arc::new(move |req: &hmd_obs::Request| handle(&state, &req.path)),
        )?;
        let bound = server.addr();
        self.http = Some(server);
        Ok(bound)
    }

    /// At a retraining boundary (`processed` a positive multiple of the
    /// hub's period, short of the budget), rendezvous with the
    /// retrainer and adopt the published generation: swap the artifacts
    /// `Arc`, re-warm the inference arena for the refreshed models, and
    /// install the re-derived SLO thresholds. Between boundaries this
    /// is one modulo check.
    fn sync_generation(&mut self) -> Result<(), CoreError> {
        let Some(hub) = &self.hub else { return Ok(()) };
        let every = hub.retrain_every;
        if every == 0
            || self.processed == 0
            || self.processed >= self.cfg.samples
            || !self.processed.is_multiple_of(every)
        {
            return Ok(());
        }
        let want = self.processed / every;
        if want <= self.generation {
            return Ok(());
        }
        let (artifacts, rules) = Arc::clone(hub).await_generation(want)?;
        if !Arc::ptr_eq(&artifacts, &self.artifacts) {
            // hot-swap: the refreshed detector needs a freshly warmed
            // arena (scratch is sized per model instance)
            self.artifacts = artifacts;
            self.arena =
                self.artifacts.detector.warmup(self.feature_idx.len(), self.cfg.batch.max(1));
            if let Some(ring) = &mut self.recorder_ring {
                // fresh scratch for the refreshed zoo; ring contents
                // survive the swap (windows carry their generation)
                ring.rewarm(&self.artifacts.detector);
            }
        }
        self.shared.engine().set_rules(&rules);
        self.cfg.rules = rules;
        self.generation = want;
        Ok(())
    }

    /// Draws the traffic for sample `idx` into `scratch` (engineered,
    /// scaled) and returns its ground truth. Consumes exactly the same
    /// RNG/stream/pool state regardless of how samples are grouped into
    /// batches — the foundation of batch-size-invariant digests.
    fn draw_sample(&mut self, idx: usize) -> Result<bool, CoreError> {
        #[allow(clippy::cast_precision_loss)]
        let progress = idx as f64 / self.cfg.samples as f64;
        let adv_p = match self.cfg.burst {
            Some(b) if (b.start..b.end).contains(&progress) => b.adv_fraction,
            _ => self.cfg.adv_fraction,
        };
        // drawn unconditionally so traffic is independent of pool size
        let inject = self.rng.random::<f64>() < adv_p;
        let pool = &self.artifacts.attacks.train_result.adversarial;
        if inject && !pool.is_empty() {
            let row = pool.row(self.adv_cursor % pool.len())?;
            self.adv_cursor += 1;
            self.scratch.copy_from_slice(row);
            return Ok(true);
        }
        let w = self.stream.next().expect("stream is endless");
        for (dst, &src) in self.scratch.iter_mut().zip(&self.feature_idx) {
            *dst = w.values[src];
        }
        let t0 = clock::now_ns();
        self.artifacts.bundle.scaler.transform_row(&mut self.scratch)?;
        self.transform_ns += clock::now_ns().saturating_sub(t0);
        Ok(w.is_malware())
    }

    /// Fills `scratch` with the traffic for sample `idx`: the pre-drawn
    /// replay ring when one exists (a `memcpy`, no allocation), live
    /// synthesis otherwise.
    fn next_sample(&mut self, idx: usize) -> Result<bool, CoreError> {
        if self.replay_truth.is_empty() {
            return self.draw_sample(idx);
        }
        let width = self.scratch.len();
        let k = self.replay_cursor % self.replay_truth.len();
        self.replay_cursor += 1;
        self.scratch.copy_from_slice(&self.replay_rows[k * width..(k + 1) * width]);
        Ok(self.replay_truth[k])
    }

    /// The bookkeeping half of one sample: digest, counters, clock,
    /// flight-recorder write and (when enabled) monitoring, history and
    /// stage-trace promotion — identical between the scalar and batched
    /// paths. `row` is the engineered, scaled input the verdict was
    /// served for; the recorder re-scores it through its own
    /// preallocated scratch, so the write is allocation-free.
    ///
    /// Stage order matches [`recorder::TRACE_STAGES`]: draw and
    /// transform happened in the caller (their timings arrive in
    /// `timing`), classify is behind `timing.model_latency_ns`, and
    /// this function times critic (the flight recorder's re-score),
    /// route (digest + counters + clock publication) and record
    /// (monitor + history) itself.
    fn record_verdict(
        &mut self,
        row: &[f64],
        truth_attack: bool,
        verdict: Verdict,
        timing: StageTiming,
    ) -> Result<(), CoreError> {
        let sample = self.processed as u64;
        self.processed += 1;
        let now_ns = self.processed as u64 * self.cfg.tick_ns;
        let t_enter = clock::now_ns();
        // critic stage: the flight recorder re-scores the row through
        // the adversarial predictor (and the whole zoo)
        let critic_score = if let Some(ring) = &mut self.recorder_ring {
            let stamp = recorder::WindowStamp {
                sample,
                t_ns: now_ns,
                generation: self.generation as u64,
                model_latency_ns: timing.model_latency_ns,
            };
            ring.record(&self.artifacts.detector, row, verdict, stamp)?
        } else {
            0.0
        };
        let t_critic = clock::now_ns();
        // route stage: digest, counters, clock publication
        self.digest = recorder::digest_step(self.digest, verdict);
        self.verdicts[recorder::verdict_slot(verdict) as usize] += 1;
        self.shared.t_ns.store(now_ns, Ordering::Relaxed);
        let t_route = clock::now_ns();
        if self.cfg.monitoring {
            // record stage: monitor windows, alerts, integrity, history
            self.observe(now_ns, sample, truth_attack, verdict, timing, critic_score);
            let t_record = clock::now_ns();
            // cumulative stage ends — monotone by construction
            let mut stage_ns = [0_u64; 6];
            stage_ns[0] = timing.draw_ns;
            stage_ns[1] = stage_ns[0].saturating_add(timing.transform_ns);
            stage_ns[2] = stage_ns[1].saturating_add(timing.model_latency_ns);
            stage_ns[3] = stage_ns[2].saturating_add(t_critic.saturating_sub(t_enter));
            stage_ns[4] = stage_ns[3].saturating_add(t_route.saturating_sub(t_critic));
            stage_ns[5] = stage_ns[4].saturating_add(t_record.saturating_sub(t_route));
            self.promote_trace(sample, now_ns, verdict, stage_ns);
        }
        Ok(())
    }

    /// Tail-samples one window's stage trace: flagged (adversarial)
    /// verdicts always promote — the deterministic forensic class — and
    /// a window that sets a new session latency maximum promotes into
    /// the separate latency-tail ring. Everything else is dropped; the
    /// promoted write is a `Copy` into a preallocated ring slot.
    fn promote_trace(&mut self, sample: u64, t_ns: u64, verdict: Verdict, stage_ns: [u64; 6]) {
        let total = stage_ns[5];
        let reason = if verdict == Verdict::AdversarialAttack {
            Some(TraceReason::Flagged)
        } else if total > self.latency_tail_max {
            Some(TraceReason::LatencyTail)
        } else {
            None
        };
        self.latency_tail_max = self.latency_tail_max.max(total);
        if let Some(reason) = reason {
            self.shared.traces().push(WindowTrace {
                sample,
                t_ns,
                generation: self.generation as u64,
                verdict,
                reason,
                stage_ns,
                latency_ns: total,
            });
        }
    }

    /// Classifies one sample; returns `false` once the budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn step(&mut self) -> Result<bool, CoreError> {
        if self.processed >= self.cfg.samples {
            return Ok(false);
        }
        self.sync_generation()?;
        let t_start = clock::now_ns();
        self.transform_ns = 0;
        let truth_attack = self.next_sample(self.processed)?;
        let t_model = clock::now_ns();
        let verdict = if self.cfg.arena {
            self.artifacts.detector.classify_into(&self.scratch, &mut self.arena)?
        } else {
            self.artifacts.detector.classify(&self.scratch)?
        };
        let t_end = clock::now_ns();
        let transform_ns = self.transform_ns;
        let draw_ns = t_model.saturating_sub(t_start).saturating_sub(transform_ns);
        // lend the scratch row out without allocating (mem::take leaves
        // an empty Vec behind); record_verdict needs `&mut self` plus
        // the row
        let row = std::mem::take(&mut self.scratch);
        let timing = StageTiming {
            latency_ns: t_end.saturating_sub(t_start),
            model_latency_ns: t_end.saturating_sub(t_model),
            draw_ns,
            transform_ns,
        };
        let result = self.record_verdict(&row, truth_attack, verdict, timing);
        self.scratch = row;
        result?;
        Ok(true)
    }

    /// Classifies up to [`ServingConfig::batch`] samples in one
    /// detector call and returns how many were processed (0 once the
    /// budget is spent). Traffic is drawn per sample in stream order,
    /// then the whole batch goes through the predictor critic and the
    /// routed model as single blocked matmuls; verdicts, digests and
    /// alert choreography are bit-identical to [`step`](Self::step).
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn step_batch(&mut self) -> Result<usize, CoreError> {
        let remaining = self.cfg.samples.saturating_sub(self.processed);
        if remaining == 0 {
            return Ok(0);
        }
        self.sync_generation()?;
        let mut n = self.cfg.batch.max(1).min(remaining);
        if let Some(hub) = &self.hub {
            if hub.retrain_every > 0 {
                // never straddle a retraining boundary: every sample of
                // a batch is classified by one model generation, which
                // keeps the verdict stream batch-size-invariant under
                // retraining
                n = n.min(hub.retrain_every - self.processed % hub.retrain_every);
            }
        }
        if n == 1 {
            // step() re-checks the boundary; this shard just synced, so
            // it will not block again
            return Ok(usize::from(self.step()?));
        }
        let width = self.feature_idx.len();
        let t_start = clock::now_ns();
        self.transform_ns = 0;
        self.batch_rows.clear();
        self.batch_truth.clear();
        for k in 0..n {
            let truth = self.next_sample(self.processed + k)?;
            self.batch_rows.extend_from_slice(&self.scratch);
            self.batch_truth.push(truth);
        }
        let t_model = clock::now_ns();
        // amortized per-sample stage durations: draw splits out the
        // scaler-transform time draw_sample accumulated
        let transform_ns = self.transform_ns / n as u64;
        let draw_ns = t_model
            .saturating_sub(t_start)
            .saturating_sub(self.transform_ns)
            / n as u64;
        if self.cfg.arena {
            self.artifacts.detector.classify_batch_into(&self.batch_rows, width, &mut self.arena)?;
            let t_end = clock::now_ns();
            // amortized per-sample latencies: the histograms stay
            // comparable across batch sizes
            let timing = StageTiming {
                latency_ns: t_end.saturating_sub(t_start) / n as u64,
                model_latency_ns: t_end.saturating_sub(t_model) / n as u64,
                draw_ns,
                transform_ns,
            };
            // lend the batch buffers out allocation-free (see step())
            let rows = std::mem::take(&mut self.batch_rows);
            let truths = std::mem::take(&mut self.batch_truth);
            let mut result = Ok(());
            for k in 0..n {
                let verdict = self.arena.verdicts()[k];
                result = self.record_verdict(
                    &rows[k * width..(k + 1) * width],
                    truths[k],
                    verdict,
                    timing,
                );
                if result.is_err() {
                    break;
                }
            }
            self.batch_rows = rows;
            self.batch_truth = truths;
            result?;
        } else {
            let verdicts = self.artifacts.detector.classify_batch(&self.batch_rows, width)?;
            let t_end = clock::now_ns();
            let timing = StageTiming {
                latency_ns: t_end.saturating_sub(t_start) / n as u64,
                model_latency_ns: t_end.saturating_sub(t_model) / n as u64,
                draw_ns,
                transform_ns,
            };
            let rows = std::mem::take(&mut self.batch_rows);
            let truths = std::mem::take(&mut self.batch_truth);
            let mut result = Ok(());
            for (k, (&truth, verdict)) in truths.iter().zip(verdicts).enumerate() {
                result = self.record_verdict(
                    &rows[k * width..(k + 1) * width],
                    truth,
                    verdict,
                    timing,
                );
                if result.is_err() {
                    break;
                }
            }
            self.batch_rows = rows;
            self.batch_truth = truths;
            result?;
        }
        Ok(n)
    }

    /// The monitoring half of one step: window recording, periodic
    /// alert evaluation, periodic integrity assessment with drift
    /// escalation. Steady state (no drift, no alert edges) allocates
    /// nothing: the windows are preallocated rings, snapshots live on
    /// the stack, and the integrity check runs through the allocation-
    /// free stability probe unless tracing wants the full
    /// [`DriftEvent`](hmd_integrity) record.
    fn observe(
        &mut self,
        now_ns: u64,
        sample: u64,
        truth_attack: bool,
        verdict: Verdict,
        timing: StageTiming,
        critic_score: f64,
    ) {
        let record = SampleRecord {
            truth_attack,
            verdict_attack: verdict.is_attack(),
            flagged_adversarial: verdict == Verdict::AdversarialAttack,
            latency_ns: timing.latency_ns,
            model_latency_ns: timing.model_latency_ns,
            sample,
            generation: self.generation as u64,
        };
        self.shared.monitor.record_at(now_ns, record);
        self.hist_acc.observe(&record, critic_score);
        if (self.processed as u64).is_multiple_of(FINE_EVERY) {
            // flush one fine-tier point; the shared history folds it
            // toward the mid/coarse tiers in place, allocation-free
            let point = self.hist_acc.flush(
                self.processed as u64,
                now_ns,
                self.artifacts.detector.quarantined() as u64,
                self.generation as u64,
            );
            self.shared.history.push(point);
        }
        if self.processed.is_multiple_of(self.cfg.evaluate_every) {
            let snap = self.shared.monitor.snapshot_at(now_ns);
            let edges = self.shared.engine().evaluate(&snap);
            if edges.iter().any(|e| e.firing) {
                // an alert just fired: snapshot the flight recorder and
                // the shard's state into a forensic incident bundle.
                // Allocates — fire edges are rare by construction.
                self.capture_incident(now_ns, &snap, &edges);
            }
        }
        if self.processed.is_multiple_of(self.cfg.integrity_every) {
            let snap = self.shared.monitor.snapshot_at(now_ns);
            let matrix = confusion_of(&snap);
            if matrix.total() > 0 {
                let stable = if hmd_telemetry::enabled() {
                    // full assessment: emits the integrity.drift
                    // telemetry event with per-metric deltas
                    self.artifacts.monitor.assess_confusion(SERVING_BASELINE, &matrix).is_stable()
                } else {
                    self.artifacts
                        .monitor
                        .confusion_is_stable(SERVING_BASELINE, &matrix)
                        .unwrap_or(false)
                };
                if !stable {
                    // escalate: metric drift becomes a windowed event the
                    // DriftCeiling SLO rule can fire on
                    self.shared.monitor.record_drift_at(now_ns);
                    self.drift_events += 1;
                }
            }
        }
    }

    /// Snapshots the flight recorder ring plus monitor/alert/generation
    /// state into an [`IncidentBundle`] and stores it on the shard.
    /// Runs only on alert fire edges; a disabled recorder
    /// ([`ServingConfig::recorder`]` == 0`) captures nothing.
    fn capture_incident(
        &mut self,
        now_ns: u64,
        snap: &MonitorSnapshot,
        edges: &[AlertTransition],
    ) {
        let Some(ring) = &self.recorder_ring else { return };
        let triggers: Vec<IncidentTrigger> =
            recorder::triggers_from_edges(edges, &self.cfg.rules);
        let alerts_firing: Vec<String> =
            self.shared.engine().firing().map(|r| r.name.to_owned()).collect();
        // the bundle records the *fleet base* configuration: the shard's
        // decorrelated stream seed folds back to the base (the XOR walk
        // is an involution) and shards > 0 restore the base calibration
        // budget their own config zeroed
        let mut config = self.cfg.clone();
        config.stream_seed = shard_stream_seed(self.cfg.stream_seed, self.shard);
        config.calibration_samples = self.base_calibration_samples;
        let seq = self.incident_seq;
        self.incident_seq += 1;
        let bundle = IncidentBundle {
            id: format!("s{}-i{}", self.shard, seq),
            shard: self.shard,
            seq,
            t_ns: now_ns,
            sample_index: self.processed as u64,
            generation: self.generation as u64,
            stream_seed: self.cfg.stream_seed,
            verdict_digest: ring.digest(),
            triggers,
            alerts_firing,
            monitor: IncidentMonitor::capture(snap),
            model_names: self
                .artifacts
                .detector
                .models()
                .iter()
                .map(|m| m.name().to_owned())
                .collect(),
            config,
            shards: self.n_shards,
            windows: ring.snapshot_windows(),
            // only the deterministic flagged ring rides along; the
            // latency tail is wall-clock and stays endpoint-only
            traces: self.shared.traces().flagged(),
        };
        self.shared.push_incident(bundle);
    }

    /// Runs [`step_batch`](Self::step_batch) until the budget is spent
    /// (with the default `batch: 1` this is the scalar path).
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn run_to_completion(&mut self) -> Result<ServingOutcome, CoreError> {
        while self.step_batch()? > 0 {}
        Ok(self.outcome())
    }

    /// The session summary so far.
    #[must_use]
    pub fn outcome(&self) -> ServingOutcome {
        let engine = self.shared.engine();
        ServingOutcome {
            processed: self.processed,
            digest: self.digest,
            verdicts: self.verdicts,
            alert_transitions: engine.transitions(),
            healthy: engine.healthy(),
            drift_events: self.drift_events,
            generation: self.generation as u64,
        }
    }

    /// The monitor's current windowed view.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        self.shared.monitor.snapshot_at(self.shared.t_ns.load(Ordering::Relaxed))
    }

    /// The SLO rules this session's alert engine enforces — the
    /// calibration-adapted set when calibration ran, the configured set
    /// otherwise.
    #[must_use]
    pub fn slo_rules(&self) -> &[SloRule] {
        &self.cfg.rules
    }

    /// What the calibration pass observed, when one ran.
    #[must_use]
    pub fn calibration(&self) -> Option<&CalibrationReport> {
        self.calibration.as_ref()
    }

    /// The incident bundles this shard has captured (oldest first,
    /// bounded — eviction drops the oldest).
    #[must_use]
    pub fn incidents(&self) -> Vec<Arc<IncidentBundle>> {
        self.shared.incidents().clone()
    }

    /// Lifetime incidents captured by this shard (never decremented by
    /// store eviction).
    #[must_use]
    pub fn incidents_total(&self) -> u64 {
        self.shared.incidents_total.load(Ordering::Relaxed)
    }

    /// The flight recorder ring, when enabled.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder_ring.as_ref()
    }

    /// This shard's multi-resolution metrics history tiers.
    #[must_use]
    pub fn history_snapshot(&self) -> TierSnapshot {
        self.shared.history.snapshot()
    }

    /// This shard's promoted stage traces (flagged + latency tail).
    #[must_use]
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.shared.trace_snapshot()
    }

    /// Whether a client requested shutdown via `/quit`.
    #[must_use]
    pub fn quit_requested(&self) -> bool {
        self.shared.quit.load(Ordering::SeqCst)
    }

    /// The bound HTTP address, when serving.
    #[must_use]
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// The trained artifacts (detector, monitor, attack pool).
    #[must_use]
    pub fn artifacts(&self) -> &ServingArtifacts {
        &self.artifacts
    }

    /// A shareable handle to the trained artifacts, for building more
    /// sessions ([`with_artifacts`](Self::with_artifacts)) without
    /// retraining.
    #[must_use]
    pub fn artifacts_handle(&self) -> Arc<ServingArtifacts> {
        Arc::clone(&self.artifacts)
    }

    /// The model generation this shard currently serves (0 when
    /// retraining is off or before the first promotion).
    #[must_use]
    pub fn model_generation(&self) -> u64 {
        self.generation as u64
    }

    /// The model-lifecycle hub, when retraining is on.
    #[must_use]
    pub fn hub(&self) -> Option<&Arc<ModelHub>> {
        self.hub.as_ref()
    }

    /// Deregisters from the hub (idempotent), so the retrainer never
    /// waits on a shard that stopped stepping.
    fn retire(&mut self) {
        if self.retired {
            return;
        }
        self.retired = true;
        if let Some(hub) = &self.hub {
            hub.retire_shard();
        }
    }

    /// Stops the HTTP endpoint (if running). Called on drop as well.
    pub fn finish(&mut self) {
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
    }
}

impl Drop for ServingSession {
    fn drop(&mut self) {
        self.finish();
        self.retire();
        // joining is safe: with this shard retired, the retrainer
        // cannot be waiting on it
        if let Some(t) = self.retrainer.take() {
            let _ = t.join();
        }
    }
}

/// A fleet of per-core serving shards behind one HTTP endpoint.
///
/// Each shard is a full [`ServingSession`] with its own decorrelated
/// traffic seed ([`shard_stream_seed`]; shard 0 keeps the base seed, so
/// a one-shard fleet is byte-identical to a single session), its own
/// monitor windows and alert engine, all sharing one trained
/// [`ServingArtifacts`] — including the quarantine ring. `/metrics`
/// merges the shards into the same aggregate series a single session
/// exposes plus label-separated `hmd_serving_shard_*` series, and
/// `/quit` stops every shard.
#[derive(Debug)]
pub struct FleetSession {
    shards: Vec<ServingSession>,
    artifacts: Arc<ServingArtifacts>,
    /// The fleet-wide model hub, when retraining is on (created by
    /// shard 0, shared by every shard).
    hub: Option<Arc<ModelHub>>,
    /// The fleet's retrainer thread; joined on drop after every shard
    /// retired.
    retrainer: Option<JoinHandle<()>>,
    http: Option<HttpServer>,
}

impl FleetSession {
    /// Trains once ([`Framework::prepare_serving`]) and builds
    /// `n_shards` shards (clamped to at least one) around the shared
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn start(cfg: &ServingConfig, n_shards: usize) -> Result<Self, CoreError> {
        let _span = hmd_telemetry::span("serving.fleet_start");
        let artifacts = Arc::new(Framework::new(cfg.framework.clone()).prepare_serving(cfg.kind)?);
        Self::with_artifacts(cfg, n_shards, artifacts)
    }

    /// Builds the fleet around already-trained artifacts. Shard 0
    /// calibrates the integrity baseline (once per fleet — the baseline
    /// lives on the shared artifacts); later shards skip calibration.
    ///
    /// # Errors
    ///
    /// Rejects a stream that does not carry every engineered feature.
    pub fn with_artifacts(
        cfg: &ServingConfig,
        n_shards: usize,
        artifacts: Arc<ServingArtifacts>,
    ) -> Result<Self, CoreError> {
        let mut shards: Vec<ServingSession> = Vec::with_capacity(n_shards.max(1));
        let mut hub: Option<Arc<ModelHub>> = None;
        for i in 0..n_shards.max(1) {
            let mut shard_cfg = cfg.clone();
            shard_cfg.stream_seed = shard_stream_seed(cfg.stream_seed, i);
            if i > 0 {
                shard_cfg.calibration_samples = 0;
                // every shard enforces the SLO thresholds shard 0's
                // calibration derived — one fleet, one contract
                shard_cfg.rules = shards[0].cfg.rules.clone();
            }
            let shard = ServingSession::assemble(
                shard_cfg,
                Arc::clone(&artifacts),
                hub.clone(),
                i,
                n_shards.max(1),
                cfg.calibration_samples,
            )?;
            if hub.is_none() {
                // shard 0 created the fleet's hub (when retraining is
                // on); every later shard registers with the same one
                hub = shard.hub.clone();
            }
            shards.push(shard);
        }
        // one retrainer per fleet, spawned only after every shard
        // registered — a hub with zero active shards exits immediately
        let retrainer = hub.as_ref().map(|h| spawn_retrainer(Arc::clone(h)));
        Ok(Self { shards, artifacts, hub, retrainer, http: None })
    }

    /// Starts the merged HTTP endpoint with `workers` pool threads.
    /// Routes: `/metrics`, `/healthz`, `/snapshot.json`,
    /// `/history.json`, `/traces.json`, `/dashboard`, `/incidents`,
    /// `/quit`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_http(
        &mut self,
        addr: &str,
        workers: usize,
    ) -> std::io::Result<std::net::SocketAddr> {
        let state = EndpointState {
            shards: self.shards.iter().map(|s| Arc::clone(&s.shared)).collect(),
            artifacts: Arc::clone(&self.artifacts),
            hub: self.hub.clone(),
        };
        let server = HttpServer::start_with(
            addr,
            Arc::new(move |req: &hmd_obs::Request| handle(&state, &req.path)),
            workers,
        )?;
        let bound = server.addr();
        self.http = Some(server);
        Ok(bound)
    }

    /// Runs every shard to completion (or `/quit`) on one OS thread
    /// each and returns the per-shard outcomes in shard order.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's detector failure.
    pub fn run(&mut self) -> Result<Vec<ServingOutcome>, CoreError> {
        let results: Vec<Result<ServingOutcome, CoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|sess| {
                    scope.spawn(move || {
                        let run = (|| -> Result<(), CoreError> {
                            while !sess.quit_requested() && sess.step_batch()? > 0 {}
                            Ok(())
                        })();
                        // retire whether the loop completed, quit, or
                        // errored — sibling shards parked at a
                        // retraining boundary must not wait on a shard
                        // that stopped stepping
                        sess.retire();
                        run.map(|()| sess.outcome())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        });
        results.into_iter().collect()
    }

    /// The per-shard sessions, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[ServingSession] {
        &self.shards
    }

    /// The per-shard outcomes so far, in shard order.
    #[must_use]
    pub fn outcomes(&self) -> Vec<ServingOutcome> {
        self.shards.iter().map(ServingSession::outcome).collect()
    }

    /// The fleet-merged windowed view.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        let shared: Vec<Arc<Shared>> =
            self.shards.iter().map(|s| Arc::clone(&s.shared)).collect();
        MonitorSnapshot::merged(&shard_snapshots(&shared))
    }

    /// The `/history.json` document: merged + per-shard history tiers.
    /// Byte-identical to what the HTTP endpoint serves.
    #[must_use]
    pub fn history_json(&self) -> Json {
        let tiers: Vec<TierSnapshot> =
            self.shards.iter().map(ServingSession::history_snapshot).collect();
        history_json(&tiers)
    }

    /// The `/traces.json` document: per-shard promoted stage traces.
    /// Byte-identical to what the HTTP endpoint serves.
    #[must_use]
    pub fn traces_json(&self) -> Json {
        let snaps: Vec<TraceSnapshot> =
            self.shards.iter().map(ServingSession::trace_snapshot).collect();
        recorder::traces_json(&snaps)
    }

    /// Whether any client requested shutdown via `/quit`.
    #[must_use]
    pub fn quit_requested(&self) -> bool {
        self.shards.iter().any(ServingSession::quit_requested)
    }

    /// The bound HTTP address, when serving.
    #[must_use]
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// The shared trained artifacts (generation 0; under retraining the
    /// live generation is [`hub`](Self::hub)`.current()`).
    #[must_use]
    pub fn artifacts(&self) -> &ServingArtifacts {
        &self.artifacts
    }

    /// The fleet-wide model hub, when retraining is on.
    #[must_use]
    pub fn hub(&self) -> Option<&Arc<ModelHub>> {
        self.hub.as_ref()
    }

    /// Stops the HTTP endpoint (if running).
    pub fn finish(&mut self) {
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
    }
}

impl Drop for FleetSession {
    fn drop(&mut self) {
        self.finish();
        // retire every shard before joining the retrainer: it exits
        // once no active shard remains
        self.shards.clear();
        if let Some(t) = self.retrainer.take() {
            let _ = t.join();
        }
    }
}

/// Re-records the integrity baseline from the detector's confusion on a
/// held-out slice of clean deployment traffic (separate stream seed, so
/// serving replays none of it) and reports what it saw, so the adaptive
/// SLO derivation can read the same evidence. The offline test-split
/// baseline is optimistic — with multiple windows per app instance the
/// split leaks — and would keep the drift alert latched on healthy live
/// traffic.
fn calibrate(
    artifacts: &ServingArtifacts,
    cfg: &ServingConfig,
    feature_idx: &[usize],
) -> Result<CalibrationReport, CoreError> {
    let _span = hmd_telemetry::span("serving.calibrate");
    let mut stream = WindowStream::new(StreamConfig {
        malware_fraction: cfg.malware_fraction,
        windows_per_app: cfg.framework.corpus.windows_per_app,
        warmup_windows: cfg.framework.corpus.warmup_windows,
        machine: cfg.framework.corpus.machine,
        perf: cfg.framework.corpus.perf.clone(),
        isolation: cfg.framework.corpus.isolation,
        seed: cfg.stream_seed ^ 0x43414C, // "CAL"
    });
    let mut row = vec![0.0; feature_idx.len()];
    let mut matrix = ConfusionMatrix::default();
    let mut flagged = 0;
    for _ in 0..cfg.calibration_samples {
        let w = stream.next().expect("stream is endless");
        for (dst, &src) in row.iter_mut().zip(feature_idx) {
            *dst = w.values[src];
        }
        artifacts.bundle.scaler.transform_row(&mut row)?;
        let verdict = artifacts.detector.classify(&row)?;
        flagged += usize::from(verdict == Verdict::AdversarialAttack);
        match (w.is_malware(), verdict.is_attack()) {
            (true, true) => matrix.tp += 1,
            (true, false) => matrix.fn_ += 1,
            (false, true) => matrix.fp += 1,
            (false, false) => matrix.tn += 1,
        }
    }
    // calibration traffic is clean by construction: what the predictor
    // quarantined here must never reach retraining, but silently
    // discarding it hid the count — it is telemetry (the predictor's
    // live false-flag behavior) and now rides the report
    let quarantined = artifacts.detector.take_quarantine().len();
    artifacts
        .monitor
        .record_baseline(SERVING_BASELINE, BinaryMetrics::from_confusion(&matrix));
    Ok(CalibrationReport { matrix, flagged, samples: cfg.calibration_samples, quarantined })
}

/// What the HTTP endpoints read: per-shard monitor state plus the
/// model-lifecycle source — the hub when retraining is on (so scrapes
/// follow promotions), the fixed generation-0 artifacts otherwise.
#[derive(Debug)]
struct EndpointState {
    shards: Vec<Arc<Shared>>,
    artifacts: Arc<ServingArtifacts>,
    hub: Option<Arc<ModelHub>>,
}

impl EndpointState {
    /// The artifacts generation a scrape should describe.
    fn artifacts(&self) -> Arc<ServingArtifacts> {
        self.hub.as_ref().map_or_else(|| Arc::clone(&self.artifacts), |h| h.current())
    }

    fn generation(&self) -> u64 {
        self.hub.as_ref().map_or(0, |h| h.generation())
    }

    fn swaps(&self) -> u64 {
        self.hub.as_ref().map_or(0, |h| h.swaps())
    }

    fn absorbed(&self) -> u64 {
        self.hub.as_ref().map_or(0, |h| h.absorbed())
    }

    /// Lifetime quarantine evictions — across generations when a hub
    /// tracks the retired detectors' counts.
    fn quarantine_evicted(&self) -> u64 {
        self.hub
            .as_ref()
            .map_or_else(|| self.artifacts.detector.quarantine_evicted(), |h| h.quarantine_evicted())
    }

    /// Lifetime incidents captured across every shard.
    fn incidents_total(&self) -> u64 {
        self.shards.iter().map(|s| s.incidents_total.load(Ordering::Relaxed)).sum()
    }

    /// Clean calibration rows flagged and discarded: the shards' own
    /// calibration passes plus every hub recalibration round.
    fn calibration_quarantined(&self) -> u64 {
        let shards: u64 =
            self.shards.iter().map(|s| s.calibration_quarantined.load(Ordering::Relaxed)).sum();
        shards + self.hub.as_ref().map_or(0, |h| h.calibration_quarantined())
    }
}

/// HTTP dispatch for the serving endpoints, shared between single
/// sessions (one shard) and fleets (many).
fn handle(state: &EndpointState, path: &str) -> Response {
    let shards = &state.shards;
    match path {
        "/metrics" => {
            let snaps = shard_snapshots(shards);
            let engines: Vec<_> = shards.iter().map(|s| s.engine()).collect();
            let engine_refs: Vec<&AlertEngine> = engines.iter().map(|g| &**g).collect();
            let mut page = render_metrics_fleet(&snaps, &engine_refs);
            drop(engines);
            append_promotion_series(&mut page, state.generation(), state.swaps(), state.absorbed());
            append_quarantine_series(&mut page, state);
            append_incident_series(
                &mut page,
                state.incidents_total(),
                state.calibration_quarantined(),
            );
            Response::ok(page)
        }
        "/healthz" => {
            if shards.iter().all(|s| s.engine().healthy()) {
                Response::status(200, "ok\n")
            } else {
                Response::status(503, "critical SLO firing\n")
            }
        }
        "/snapshot.json" => Response::json(live_snapshot_json(state).to_string()),
        "/history.json" => {
            let tiers: Vec<TierSnapshot> =
                shards.iter().map(|s| s.history.snapshot()).collect();
            Response::json(history_json(&tiers).to_string())
        }
        "/traces.json" => {
            let snaps: Vec<TraceSnapshot> =
                shards.iter().map(|s| s.trace_snapshot()).collect();
            Response::json(recorder::traces_json(&snaps).to_string())
        }
        "/dashboard" => Response::html(DASHBOARD_HTML.to_owned()),
        "/incidents" => Response::json(incident_index_json(state).to_string()),
        "/quit" => {
            for s in shards {
                s.quit.store(true, Ordering::SeqCst);
            }
            Response::status(200, "shutting down\n")
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/incidents/") {
                let bundle = rest
                    .strip_suffix(".json")
                    .and_then(|id| find_incident(state, id));
                return match bundle {
                    Some(b) => Response::json(b.to_json().to_string()),
                    None => Response::status(404, "unknown incident\n"),
                };
            }
            Response::status(404, "unknown path\n")
        }
    }
}

/// The `/incidents` index: one summary row per retained bundle, across
/// every shard, plus the lifetime capture counter (evicted bundles
/// count but no longer list).
fn incident_index_json(state: &EndpointState) -> Json {
    let mut rows = Vec::new();
    for shared in &state.shards {
        for b in shared.incidents().iter() {
            rows.push(Json::Obj(vec![
                ("id".to_owned(), Json::Str(b.id.clone())),
                ("shard".to_owned(), Json::UInt(b.shard as u64)),
                ("seq".to_owned(), Json::UInt(b.seq)),
                ("t_ns".to_owned(), Json::UInt(b.t_ns)),
                ("sample_index".to_owned(), Json::UInt(b.sample_index)),
                ("generation".to_owned(), Json::UInt(b.generation)),
                ("windows".to_owned(), Json::UInt(b.windows.len() as u64)),
                ("verdict_digest".to_owned(), Json::UInt(b.verdict_digest)),
                (
                    "triggers".to_owned(),
                    Json::Arr(
                        b.triggers
                            .iter()
                            .filter(|t| t.firing)
                            .map(|t| Json::Str(t.rule.clone()))
                            .collect(),
                    ),
                ),
            ]));
        }
    }
    Json::Obj(vec![
        ("incidents".to_owned(), Json::Arr(rows)),
        ("total".to_owned(), Json::UInt(state.incidents_total())),
    ])
}

/// Looks an incident bundle up by id across every shard's store.
fn find_incident(state: &EndpointState, id: &str) -> Option<Arc<IncidentBundle>> {
    state
        .shards
        .iter()
        .find_map(|shared| shared.incidents().iter().find(|b| b.id == id).cloned())
}

/// Per-shard windowed snapshots, each at its own published clock.
fn shard_snapshots(shards: &[Arc<Shared>]) -> Vec<MonitorSnapshot> {
    shards
        .iter()
        .map(|s| s.monitor.snapshot_at(s.t_ns.load(Ordering::Relaxed)))
        .collect()
}

/// Appends the shared quarantine-ring series to a rendered page: the
/// buffer lives on the detector (one per fleet), not on a shard. Under
/// retraining the eviction counter spans generations and the fill gauge
/// reads the live one.
fn append_quarantine_series(page: &mut String, state: &EndpointState) {
    use std::fmt::Write as _;
    let _ = writeln!(
        page,
        "# HELP hmd_serving_quarantine_evicted_total Quarantined rows evicted oldest-first by the ring bound.\n\
         # TYPE hmd_serving_quarantine_evicted_total counter\n\
         hmd_serving_quarantine_evicted_total {}",
        state.quarantine_evicted()
    );
    let _ = writeln!(
        page,
        "# HELP hmd_serving_quarantined Rows currently held in the quarantine ring.\n\
         # TYPE hmd_serving_quarantined gauge\n\
         hmd_serving_quarantined {}",
        state.artifacts().detector.quarantined()
    );
}

/// The live `/snapshot.json` document: the merged monitor view plus
/// fleet health and quarantine state. When tracing is enabled the
/// telemetry snapshot rides along under `"telemetry"` — previously it
/// was the *only* content, which left the endpoint empty (`{}`-ish)
/// whenever `HMD_TRACE` was off and ignored the live monitor entirely.
fn live_snapshot_json(state: &EndpointState) -> Json {
    let shards = &state.shards;
    let artifacts = state.artifacts();
    let snaps = shard_snapshots(shards);
    let merged = MonitorSnapshot::merged(&snaps);
    let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
    let (mut transitions, mut healthy) = (0, true);
    let mut slo: Vec<Json> = Vec::new();
    {
        let engines: Vec<_> = shards.iter().map(|s| s.engine()).collect();
        for engine in &engines {
            transitions += engine.transitions();
            healthy &= engine.healthy();
        }
        // per-rule SLO state, fleet-merged: firing on any shard,
        // transitions summed (engines share one rule shape)
        for (i, rule) in engines[0].rules().iter().enumerate() {
            let firing = engines.iter().any(|e| e.is_firing(i));
            let rule_transitions: u64 = engines
                .iter()
                .map(|e| e.rule_transitions().get(i).copied().unwrap_or(0))
                .sum();
            slo.push(Json::Obj(vec![
                ("rule".to_owned(), Json::Str(rule.name.to_owned())),
                ("severity".to_owned(), Json::Str(rule.severity.to_string())),
                ("threshold".to_owned(), Json::Float(rule.threshold())),
                ("firing".to_owned(), Json::Bool(firing)),
                ("transitions".to_owned(), Json::UInt(rule_transitions)),
            ]));
        }
    }
    let mut fields = vec![
        ("t_ns".to_owned(), Json::UInt(merged.t_ns)),
        ("shards".to_owned(), Json::UInt(shards.len() as u64)),
        ("samples_window".to_owned(), Json::UInt(merged.samples)),
        ("samples_total".to_owned(), Json::UInt(merged.total_samples)),
        ("tp".to_owned(), Json::UInt(merged.tp)),
        ("fn".to_owned(), Json::UInt(merged.fn_)),
        ("fp".to_owned(), Json::UInt(merged.fp)),
        ("tn".to_owned(), Json::UInt(merged.tn)),
        ("flags".to_owned(), Json::UInt(merged.flags)),
        ("drifts".to_owned(), Json::UInt(merged.drifts)),
        ("detection_rate".to_owned(), opt(merged.detection_rate())),
        ("adversarial_flag_rate".to_owned(), opt(merged.flag_rate())),
        ("accuracy".to_owned(), opt(merged.accuracy())),
        ("false_positive_rate".to_owned(), opt(merged.false_positive_rate())),
        ("latency_p95_ms".to_owned(), Json::Float(merged.latency_p95_ms())),
        ("model_latency_p95_ms".to_owned(), Json::Float(merged.model_latency_p95_ms())),
        ("healthy".to_owned(), Json::Bool(healthy)),
        ("alert_transitions".to_owned(), Json::UInt(transitions)),
        ("quarantined".to_owned(), Json::UInt(artifacts.detector.quarantined() as u64)),
        ("quarantine_evicted".to_owned(), Json::UInt(state.quarantine_evicted())),
        ("model_generation".to_owned(), Json::UInt(state.generation())),
        ("model_swaps".to_owned(), Json::UInt(state.swaps())),
        ("retrain_absorbed".to_owned(), Json::UInt(state.absorbed())),
        ("incidents_total".to_owned(), Json::UInt(state.incidents_total())),
        (
            "calibration_quarantined".to_owned(),
            Json::UInt(state.calibration_quarantined()),
        ),
        ("slo".to_owned(), Json::Arr(slo)),
    ];
    if hmd_telemetry::enabled() {
        fields.push(("telemetry".to_owned(), hmd_telemetry::snapshot_json("serving")));
    }
    Json::Obj(fields)
}

/// The windowed confusion matrix of a snapshot.
#[allow(clippy::cast_possible_truncation)]
fn confusion_of(snap: &MonitorSnapshot) -> ConfusionMatrix {
    ConfusionMatrix {
        tp: snap.tp as usize,
        fp: snap.fp as usize,
        tn: snap.tn as usize,
        fn_: snap.fn_ as usize,
    }
}

