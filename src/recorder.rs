//! Flight recorder + incident bundles: the serving loop's black box.
//!
//! Every shard keeps a [`FlightRecorder`] — a preallocated ring of the
//! last N served windows (raw feature row, per-model probabilities,
//! adversarial-predictor score, routing decision, verdict, model
//! generation, model-only latency). Recording is allocation-free: the
//! recorder owns its inference scratch (one critic scratch plus one
//! [`PredictScratch`] per zoo model, sized at warmup exactly like the
//! serving [`InferArena`](hmd_core::InferArena)), and every per-window
//! write lands in flat buffers sized once at construction.
//!
//! When an SLO alert crosses a fire edge, the shard snapshots the ring
//! plus its monitor/alert/generation state into an [`IncidentBundle`]:
//! a seeded, JSON-serializable forensic record that pins everything a
//! later [`replay`](../replay/index.html) run needs to re-execute the
//! exact alert-tripping windows through the exact model generation and
//! assert byte-identical verdicts. Floats round-trip exactly through
//! `hmd_util::json` (shortest-representation `Display` + `from_str`),
//! so the rows a bundle carries replay bit-for-bit.
//!
//! The verdict digest helpers ([`DIGEST_SEED`], [`digest_step`],
//! [`verdict_digest`]) are the single definition of the FNV-1a verdict
//! chain shared by the serving loop, the bundles and the replay
//! binary.

use hmd_core::{AdaptiveDetector, CoreError, Verdict};
use hmd_ml::PredictScratch;
use hmd_nn::InferScratch;
use hmd_obs::{AlertTransition, MonitorSnapshot};
use hmd_rl::ConstraintKind;
use hmd_util::json::{field, Json, JsonError};

use crate::serving::{Burst, ServingConfig};

/// Schema tag written into every bundle. v2 adds the `traces` array
/// (promoted per-window stage traces); [`IncidentBundle::from_json`]
/// still accepts v1 documents, which simply carry no traces.
pub const BUNDLE_SCHEMA: &str = "hmd-incident-v2";

/// The previous bundle schema, still accepted on parse for replay
/// compatibility with bundles captured before stage tracing existed.
pub const BUNDLE_SCHEMA_V1: &str = "hmd-incident-v1";

/// FNV-1a offset basis — the seed of every verdict digest chain.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The digest slot of a verdict (paper ordering: adversarial, malware,
/// benign).
#[must_use]
pub fn verdict_slot(v: Verdict) -> u64 {
    match v {
        Verdict::AdversarialAttack => 0,
        Verdict::MalwareAttack => 1,
        Verdict::Benign => 2,
    }
}

/// Folds one verdict into an FNV-1a digest chain.
#[must_use]
pub fn digest_step(hash: u64, v: Verdict) -> u64 {
    (hash ^ (verdict_slot(v) + 1)).wrapping_mul(0x0100_0000_01b3)
}

/// The digest of a whole verdict sequence, from [`DIGEST_SEED`].
#[must_use]
pub fn verdict_digest<I: IntoIterator<Item = Verdict>>(verdicts: I) -> u64 {
    verdicts.into_iter().fold(DIGEST_SEED, digest_step)
}

/// The wire name of a verdict.
#[must_use]
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::AdversarialAttack => "adversarial",
        Verdict::MalwareAttack => "malware",
        Verdict::Benign => "benign",
    }
}

/// Parses a wire verdict name.
///
/// # Errors
///
/// Returns [`JsonError`] on an unknown name.
pub fn parse_verdict(name: &str) -> Result<Verdict, JsonError> {
    match name {
        "adversarial" => Ok(Verdict::AdversarialAttack),
        "malware" => Ok(Verdict::MalwareAttack),
        "benign" => Ok(Verdict::Benign),
        other => Err(JsonError::new(format!("unknown verdict {other:?}"))),
    }
}

fn kind_key(kind: ConstraintKind) -> &'static str {
    kind.key()
}

fn parse_kind(key: &str) -> Result<ConstraintKind, JsonError> {
    ConstraintKind::ALL
        .into_iter()
        .find(|k| k.key() == key)
        .ok_or_else(|| JsonError::new(format!("unknown constraint kind {key:?}")))
}

/// The per-window pipeline stages a trace stamps, in hot-loop order.
/// [`WindowTrace::stage_ns`] is index-aligned with this list.
pub const TRACE_STAGES: [&str; 6] = ["draw", "transform", "classify", "critic", "route", "record"];

/// Why a window's trace was promoted out of the per-window slab into
/// the bounded trace store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceReason {
    /// The verdict was adversarial — the deterministic promotion class
    /// (identical across batch sizes, thread counts and shard counts).
    Flagged,
    /// The window set a new session latency maximum (wall-clock, so
    /// promotion membership is informational, never compared for byte
    /// determinism).
    LatencyTail,
}

impl TraceReason {
    /// The wire name of the reason.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Flagged => "flagged",
            Self::LatencyTail => "latency_tail",
        }
    }

    fn parse(name: &str) -> Result<Self, JsonError> {
        match name {
            "flagged" => Ok(Self::Flagged),
            "latency_tail" => Ok(Self::LatencyTail),
            other => Err(JsonError::new(format!("unknown trace reason {other:?}"))),
        }
    }
}

/// One promoted per-window stage trace: cumulative stage-end offsets
/// (ns since the window's draw began) for every pipeline stage in
/// [`TRACE_STAGES`] order. Cumulative means the array is monotone
/// non-decreasing by construction; stage *durations* are adjacent
/// differences.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowTrace {
    /// Zero-based shard sample index of the traced window.
    pub sample: u64,
    /// Stream time the window was served at.
    pub t_ns: u64,
    /// Model generation that served the window.
    pub generation: u64,
    /// The verdict the serving loop emitted.
    pub verdict: Verdict,
    /// Why the trace was promoted.
    pub reason: TraceReason,
    /// Cumulative wall-clock stage-end offsets, [`TRACE_STAGES`] order.
    pub stage_ns: [u64; 6],
    /// Total wall-clock window latency (equals the last stage end).
    pub latency_ns: u64,
}

impl WindowTrace {
    /// The all-zero trace used to preallocate ring slots.
    pub const ZERO: Self = Self {
        sample: 0,
        t_ns: 0,
        generation: 0,
        verdict: Verdict::Benign,
        reason: TraceReason::Flagged,
        stage_ns: [0; 6],
        latency_ns: 0,
    };

    /// Serializes the trace. The stage array lives under a
    /// `stage_latency_ns` key on purpose: byte-determinism comparisons
    /// scrub every key containing `latency`, so wall-clock stage
    /// timings never poison bundle digests.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sample".to_owned(), Json::UInt(self.sample)),
            ("t_ns".to_owned(), Json::UInt(self.t_ns)),
            ("generation".to_owned(), Json::UInt(self.generation)),
            ("verdict".to_owned(), Json::Str(verdict_name(self.verdict).to_owned())),
            ("reason".to_owned(), Json::Str(self.reason.name().to_owned())),
            (
                "stage_latency_ns".to_owned(),
                Json::Arr(self.stage_ns.iter().map(|&n| Json::UInt(n)).collect()),
            ),
            ("latency_ns".to_owned(), Json::UInt(self.latency_ns)),
        ])
    }

    /// Parses a trace from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any malformed or missing field or a
    /// stage array of the wrong length.
    pub fn from_json(j: &Json) -> Result<Self, JsonError> {
        let stages = j
            .get("stage_latency_ns")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("missing array \"stage_latency_ns\""))?;
        if stages.len() != TRACE_STAGES.len() {
            return Err(JsonError::new(format!(
                "stage_latency_ns has {} entries (expected {})",
                stages.len(),
                TRACE_STAGES.len()
            )));
        }
        let mut stage_ns = [0_u64; 6];
        for (slot, v) in stage_ns.iter_mut().zip(stages) {
            *slot = v
                .as_f64()
                .ok_or_else(|| JsonError::new("non-number in \"stage_latency_ns\""))?
                as u64;
        }
        Ok(Self {
            sample: field(j, "sample")?,
            t_ns: field(j, "t_ns")?,
            generation: field(j, "generation")?,
            verdict: parse_verdict(&field::<String>(j, "verdict")?)?,
            reason: TraceReason::parse(&field::<String>(j, "reason")?)?,
            stage_ns,
            latency_ns: field(j, "latency_ns")?,
        })
    }
}

/// A preallocated ring of promoted traces (oldest evicted first).
#[derive(Debug)]
struct TraceRing {
    cap: usize,
    head: usize,
    len: usize,
    slots: Vec<WindowTrace>,
}

impl TraceRing {
    fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace ring capacity must be positive");
        Self { cap, head: 0, len: 0, slots: vec![WindowTrace::ZERO; cap] }
    }

    fn push(&mut self, trace: WindowTrace) {
        self.slots[self.head] = trace;
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
    }

    fn snapshot(&self) -> Vec<WindowTrace> {
        (0..self.len)
            .map(|i| self.slots[(self.head + self.cap - self.len + i) % self.cap])
            .collect()
    }
}

/// The per-shard store of promoted window traces: two independent
/// preallocated rings, one for deterministically flagged windows (the
/// set replayed and digest-compared) and one for wall-clock latency
/// tails — so a burst of slow-but-benign windows can never evict the
/// forensic flagged history.
#[derive(Debug)]
pub struct TraceStore {
    flagged: TraceRing,
    tail: TraceRing,
}

/// Default flagged-ring capacity.
pub const TRACE_FLAGGED_CAP: usize = 32;
/// Default latency-tail ring capacity.
pub const TRACE_TAIL_CAP: usize = 8;

impl TraceStore {
    /// Builds a store with the default ring capacities.
    #[must_use]
    pub fn new() -> Self {
        Self::with_caps(TRACE_FLAGGED_CAP, TRACE_TAIL_CAP)
    }

    /// Builds a store with explicit ring capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn with_caps(flagged_cap: usize, tail_cap: usize) -> Self {
        Self { flagged: TraceRing::new(flagged_cap), tail: TraceRing::new(tail_cap) }
    }

    /// Promotes one trace into the ring its reason selects. In-place
    /// `Copy` write — allocation-free after construction.
    pub fn push(&mut self, trace: WindowTrace) {
        match trace.reason {
            TraceReason::Flagged => self.flagged.push(trace),
            TraceReason::LatencyTail => self.tail.push(trace),
        }
    }

    /// Promoted flagged traces, oldest first. Allocates — snapshot
    /// path only, never per window.
    #[must_use]
    pub fn flagged(&self) -> Vec<WindowTrace> {
        self.flagged.snapshot()
    }

    /// Promoted latency-tail traces, oldest first.
    #[must_use]
    pub fn tail(&self) -> Vec<WindowTrace> {
        self.tail.snapshot()
    }

    /// Total traces currently held across both rings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flagged.len + self.tail.len
    }

    /// Whether nothing has been promoted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Schema tag of the `/traces.json` document.
pub const TRACES_SCHEMA: &str = "hmd-traces-v1";

/// One shard's promoted traces, as served by `/traces.json`.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Deterministically flagged traces, oldest first.
    pub flagged: Vec<WindowTrace>,
    /// Wall-clock latency-tail traces, oldest first.
    pub tail: Vec<WindowTrace>,
}

/// Renders the `/traces.json` document for a fleet of shards.
#[must_use]
pub fn traces_json(shards: &[TraceSnapshot]) -> Json {
    let trace_arr =
        |ts: &[WindowTrace]| Json::Arr(ts.iter().map(WindowTrace::to_json).collect());
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(TRACES_SCHEMA.to_owned())),
        (
            "stages".to_owned(),
            Json::Arr(TRACE_STAGES.iter().map(|&s| Json::Str(s.to_owned())).collect()),
        ),
        (
            "per_shard".to_owned(),
            Json::Arr(
                shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        Json::Obj(vec![
                            ("shard".to_owned(), Json::UInt(i as u64)),
                            ("flagged".to_owned(), trace_arr(&s.flagged)),
                            ("latency_tail".to_owned(), trace_arr(&s.tail)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One served window as the flight recorder captured it: everything
/// the replay binary needs to re-classify it bit-for-bit plus the
/// evidence a human reads first.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentWindow {
    /// Zero-based shard sample index of this window.
    pub sample: u64,
    /// Stream time the window was served at.
    pub t_ns: u64,
    /// The verdict the serving loop emitted.
    pub verdict: Verdict,
    /// The adversarial predictor's critic value for the row.
    pub adv_score: f64,
    /// The model the UCB controller had routed to.
    pub selected_model: usize,
    /// Attack probability from every model in the zoo (paper order).
    pub model_probs: Vec<f64>,
    /// The model generation that served the window.
    pub generation: u64,
    /// Wall-clock model-only latency (informational; scrubbed when
    /// bundles are compared for byte determinism).
    pub model_latency_ns: u64,
    /// The feature-selected, scaled input row.
    pub row: Vec<f64>,
}

impl IncidentWindow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sample".to_owned(), Json::UInt(self.sample)),
            ("t_ns".to_owned(), Json::UInt(self.t_ns)),
            ("verdict".to_owned(), Json::Str(verdict_name(self.verdict).to_owned())),
            ("adv_score".to_owned(), Json::Float(self.adv_score)),
            ("selected_model".to_owned(), Json::UInt(self.selected_model as u64)),
            (
                "model_probs".to_owned(),
                Json::Arr(self.model_probs.iter().map(|&p| Json::Float(p)).collect()),
            ),
            ("generation".to_owned(), Json::UInt(self.generation)),
            ("model_latency_ns".to_owned(), Json::UInt(self.model_latency_ns)),
            ("row".to_owned(), Json::Arr(self.row.iter().map(|&x| Json::Float(x)).collect())),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let verdict = parse_verdict(&field::<String>(j, "verdict")?)?;
        let arr_f64 = |name: &str| -> Result<Vec<f64>, JsonError> {
            j.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| JsonError::new(format!("missing array {name:?}")))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| JsonError::new(format!("non-number in {name:?}"))))
                .collect()
        };
        Ok(Self {
            sample: field(j, "sample")?,
            t_ns: field(j, "t_ns")?,
            verdict,
            adv_score: field(j, "adv_score")?,
            selected_model: field(j, "selected_model")?,
            model_probs: arr_f64("model_probs")?,
            generation: field(j, "generation")?,
            model_latency_ns: field(j, "model_latency_ns")?,
            row: arr_f64("row")?,
        })
    }
}

/// One alert edge from the evaluation that captured the bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentTrigger {
    /// The rule that transitioned.
    pub rule: String,
    /// `"warning"` or `"critical"`.
    pub severity: String,
    /// `true` = fired (at least one trigger always is), `false` =
    /// resolved in the same evaluation.
    pub firing: bool,
    /// The observed value that drove the flip.
    pub observed: f64,
    /// The rule threshold at capture time (post-calibration).
    pub threshold: f64,
}

impl IncidentTrigger {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".to_owned(), Json::Str(self.rule.clone())),
            ("severity".to_owned(), Json::Str(self.severity.clone())),
            ("firing".to_owned(), Json::Bool(self.firing)),
            ("observed".to_owned(), Json::Float(self.observed)),
            ("threshold".to_owned(), Json::Float(self.threshold)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            rule: field(j, "rule")?,
            severity: field(j, "severity")?,
            firing: field(j, "firing")?,
            observed: field(j, "observed")?,
            threshold: field(j, "threshold")?,
        })
    }
}

/// The monitor's windowed view at capture time (informational; the
/// latency quantiles are wall-clock and scrubbed in byte-determinism
/// comparisons).
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentMonitor {
    /// Samples in the sliding window.
    pub samples: u64,
    /// Windowed confusion: detected attacks.
    pub tp: u64,
    /// Windowed confusion: missed attacks.
    pub fn_: u64,
    /// Windowed confusion: false alarms.
    pub fp: u64,
    /// Windowed confusion: clean passes.
    pub tn: u64,
    /// Windowed adversarial flags.
    pub flags: u64,
    /// Windowed integrity drift events.
    pub drifts: u64,
    /// All-time processed samples.
    pub total_samples: u64,
    /// Windowed model-only latency p95 in milliseconds (wall-clock).
    pub model_latency_p95_ms: f64,
}

impl IncidentMonitor {
    /// Captures the bundle-facing summary of a monitor snapshot.
    #[must_use]
    pub fn capture(snap: &MonitorSnapshot) -> Self {
        Self {
            samples: snap.samples,
            tp: snap.tp,
            fn_: snap.fn_,
            fp: snap.fp,
            tn: snap.tn,
            flags: snap.flags,
            drifts: snap.drifts,
            total_samples: snap.total_samples,
            model_latency_p95_ms: snap.model_latency_p95_ms(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("samples".to_owned(), Json::UInt(self.samples)),
            ("tp".to_owned(), Json::UInt(self.tp)),
            ("fn".to_owned(), Json::UInt(self.fn_)),
            ("fp".to_owned(), Json::UInt(self.fp)),
            ("tn".to_owned(), Json::UInt(self.tn)),
            ("flags".to_owned(), Json::UInt(self.flags)),
            ("drifts".to_owned(), Json::UInt(self.drifts)),
            ("total_samples".to_owned(), Json::UInt(self.total_samples)),
            ("model_latency_p95_ms".to_owned(), Json::Float(self.model_latency_p95_ms)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            samples: field(j, "samples")?,
            tp: field(j, "tp")?,
            fn_: field(j, "fn")?,
            fp: field(j, "fp")?,
            tn: field(j, "tn")?,
            flags: field(j, "flags")?,
            drifts: field(j, "drifts")?,
            total_samples: field(j, "total_samples")?,
            model_latency_p95_ms: field(j, "model_latency_p95_ms")?,
        })
    }
}

/// Everything replay needs to rebuild the serving universe: the quick
/// base seed plus every `ServingConfig` override the CLI and the test
/// builders reach for. Applied over [`ServingConfig::quick`], this
/// reproduces the original configuration exactly.
fn config_to_json(cfg: &ServingConfig, shards: usize) -> Json {
    let burst = match cfg.burst {
        Some(b) => Json::Obj(vec![
            ("start".to_owned(), Json::Float(b.start)),
            ("end".to_owned(), Json::Float(b.end)),
            ("adv_fraction".to_owned(), Json::Float(b.adv_fraction)),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("base_seed".to_owned(), Json::UInt(cfg.base_seed)),
        ("kind".to_owned(), Json::Str(kind_key(cfg.kind).to_owned())),
        ("samples".to_owned(), Json::UInt(cfg.samples as u64)),
        ("malware_fraction".to_owned(), Json::Float(cfg.malware_fraction)),
        ("adv_fraction".to_owned(), Json::Float(cfg.adv_fraction)),
        ("burst".to_owned(), burst),
        ("tick_ns".to_owned(), Json::UInt(cfg.tick_ns)),
        ("window_slots".to_owned(), Json::UInt(cfg.window.slots as u64)),
        ("window_slot_ns".to_owned(), Json::UInt(cfg.window.slot_ns)),
        ("evaluate_every".to_owned(), Json::UInt(cfg.evaluate_every as u64)),
        ("integrity_every".to_owned(), Json::UInt(cfg.integrity_every as u64)),
        ("monitoring".to_owned(), Json::Bool(cfg.monitoring)),
        ("calibration_samples".to_owned(), Json::UInt(cfg.calibration_samples as u64)),
        ("stream_seed".to_owned(), Json::UInt(cfg.stream_seed)),
        ("batch".to_owned(), Json::UInt(cfg.batch as u64)),
        ("arena".to_owned(), Json::Bool(cfg.arena)),
        ("replay".to_owned(), Json::UInt(cfg.replay as u64)),
        ("retrain_every".to_owned(), Json::UInt(cfg.retrain_every as u64)),
        ("recorder".to_owned(), Json::UInt(cfg.recorder as u64)),
        ("shards".to_owned(), Json::UInt(shards as u64)),
    ])
}

fn config_from_json(j: &Json) -> Result<(ServingConfig, usize), JsonError> {
    let base_seed: u64 = field(j, "base_seed")?;
    let mut cfg = ServingConfig::quick(base_seed);
    cfg.kind = parse_kind(&field::<String>(j, "kind")?)?;
    cfg.samples = field(j, "samples")?;
    cfg.malware_fraction = field(j, "malware_fraction")?;
    cfg.adv_fraction = field(j, "adv_fraction")?;
    cfg.burst = match j.get("burst") {
        None | Some(Json::Null) => None,
        Some(b) => Some(Burst {
            start: field(b, "start")?,
            end: field(b, "end")?,
            adv_fraction: field(b, "adv_fraction")?,
        }),
    };
    cfg.tick_ns = field(j, "tick_ns")?;
    cfg.window =
        hmd_obs::WindowConfig::new(field(j, "window_slots")?, field(j, "window_slot_ns")?);
    cfg.evaluate_every = field(j, "evaluate_every")?;
    cfg.integrity_every = field(j, "integrity_every")?;
    cfg.monitoring = field(j, "monitoring")?;
    cfg.calibration_samples = field(j, "calibration_samples")?;
    cfg.stream_seed = field(j, "stream_seed")?;
    cfg.batch = field(j, "batch")?;
    cfg.arena = field(j, "arena")?;
    cfg.replay = field(j, "replay")?;
    cfg.retrain_every = field(j, "retrain_every")?;
    cfg.recorder = field(j, "recorder")?;
    let shards: usize = field(j, "shards")?;
    Ok((cfg, shards))
}

/// A forensic snapshot captured on an SLO alert fire edge: the flight
/// recorder ring (oldest first) plus the monitor, alert and generation
/// state at the moment of capture, and the seeded configuration replay
/// needs to rebuild the exact serving universe.
#[derive(Clone, Debug)]
pub struct IncidentBundle {
    /// Bundle id, `s<shard>-i<seq>` — unique within a fleet run.
    pub id: String,
    /// The shard that tripped.
    pub shard: usize,
    /// Zero-based incident sequence number on that shard.
    pub seq: u64,
    /// Stream time of the capturing alert evaluation.
    pub t_ns: u64,
    /// Shard samples processed when the bundle was captured.
    pub sample_index: u64,
    /// Model generation deployed at capture time.
    pub generation: u64,
    /// The shard's own traffic seed (informational; the `config`
    /// section carries the fleet base seed replay rebuilds from).
    pub stream_seed: u64,
    /// FNV-1a digest over the recorded window verdicts, oldest first —
    /// the value replay must reproduce byte-identically.
    pub verdict_digest: u64,
    /// The alert edges of the capturing evaluation (at least one fire).
    pub triggers: Vec<IncidentTrigger>,
    /// Every rule firing after the capturing evaluation.
    pub alerts_firing: Vec<String>,
    /// The monitor's windowed view at capture time.
    pub monitor: IncidentMonitor,
    /// Zoo model names, index-aligned with every window's
    /// `model_probs` and `selected_model`.
    pub model_names: Vec<String>,
    /// The serving configuration (base seed + overrides).
    pub config: ServingConfig,
    /// Fleet shard count the configuration ran under.
    pub shards: usize,
    /// The recorded windows, oldest first.
    pub windows: Vec<IncidentWindow>,
    /// Promoted flagged stage traces at capture time, oldest first
    /// (v2; empty when parsed from a v1 document). Only the
    /// deterministic flagged ring is embedded — latency-tail
    /// membership is wall-clock and stays endpoint-only.
    pub traces: Vec<WindowTrace>,
}

impl IncidentBundle {
    /// Serializes the bundle to its canonical JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_owned(), Json::Str(BUNDLE_SCHEMA.to_owned())),
            ("id".to_owned(), Json::Str(self.id.clone())),
            ("shard".to_owned(), Json::UInt(self.shard as u64)),
            ("seq".to_owned(), Json::UInt(self.seq)),
            ("t_ns".to_owned(), Json::UInt(self.t_ns)),
            ("sample_index".to_owned(), Json::UInt(self.sample_index)),
            ("generation".to_owned(), Json::UInt(self.generation)),
            ("stream_seed".to_owned(), Json::UInt(self.stream_seed)),
            ("verdict_digest".to_owned(), Json::UInt(self.verdict_digest)),
            (
                "triggers".to_owned(),
                Json::Arr(self.triggers.iter().map(IncidentTrigger::to_json).collect()),
            ),
            (
                "alerts_firing".to_owned(),
                Json::Arr(self.alerts_firing.iter().map(|r| Json::Str(r.clone())).collect()),
            ),
            ("monitor".to_owned(), self.monitor.to_json()),
            (
                "model_names".to_owned(),
                Json::Arr(self.model_names.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
            ("config".to_owned(), config_to_json(&self.config, self.shards)),
            (
                "windows".to_owned(),
                Json::Arr(self.windows.iter().map(IncidentWindow::to_json).collect()),
            ),
            (
                "traces".to_owned(),
                Json::Arr(self.traces.iter().map(WindowTrace::to_json).collect()),
            ),
        ])
    }

    /// Parses a bundle from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on a schema mismatch or any malformed or
    /// missing field.
    pub fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema: String = field(j, "schema")?;
        if schema != BUNDLE_SCHEMA && schema != BUNDLE_SCHEMA_V1 {
            return Err(JsonError::new(format!(
                "unsupported bundle schema {schema:?} (expected {BUNDLE_SCHEMA:?} or {BUNDLE_SCHEMA_V1:?})"
            )));
        }
        let arr = |name: &str| -> Result<&[Json], JsonError> {
            j.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| JsonError::new(format!("missing array {name:?}")))
        };
        let triggers =
            arr("triggers")?.iter().map(IncidentTrigger::from_json).collect::<Result<_, _>>()?;
        let alerts_firing = arr("alerts_firing")?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| JsonError::new("non-string rule")))
            .collect::<Result<_, _>>()?;
        let model_names = arr("model_names")?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| JsonError::new("non-string name")))
            .collect::<Result<_, _>>()?;
        let windows =
            arr("windows")?.iter().map(IncidentWindow::from_json).collect::<Result<_, _>>()?;
        // v1 documents predate stage tracing and carry no traces key.
        let traces = match j.get("traces").and_then(Json::as_arr) {
            Some(ts) => ts.iter().map(WindowTrace::from_json).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let monitor = IncidentMonitor::from_json(
            j.get("monitor").ok_or_else(|| JsonError::new("missing monitor"))?,
        )?;
        let (config, shards) = config_from_json(
            j.get("config").ok_or_else(|| JsonError::new("missing config"))?,
        )?;
        Ok(Self {
            id: field(j, "id")?,
            shard: field(j, "shard")?,
            seq: field(j, "seq")?,
            t_ns: field(j, "t_ns")?,
            sample_index: field(j, "sample_index")?,
            generation: field(j, "generation")?,
            stream_seed: field(j, "stream_seed")?,
            verdict_digest: field(j, "verdict_digest")?,
            triggers,
            alerts_firing,
            monitor,
            model_names,
            config,
            shards,
            windows,
            traces,
        })
    }

    /// Parses a bundle from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or a bad schema.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Per-window scalar metadata the serving loop stamps onto a
/// recording; grouped so [`FlightRecorder::record`] stays a
/// (detector, row, verdict, stamp) call.
#[derive(Clone, Copy, Debug)]
pub struct WindowStamp {
    /// Zero-based index of the window in the shard's stream.
    pub sample: u64,
    /// Stream-clock timestamp of the window.
    pub t_ns: u64,
    /// Model generation that served the window.
    pub generation: u64,
    /// Wall-clock model-only classification latency.
    pub model_latency_ns: u64,
}

/// The per-shard flight recorder: a preallocated ring of the last N
/// served windows plus the inference scratch that lets it score every
/// window against the adversarial predictor and the whole model zoo
/// without a single heap allocation.
///
/// `head` is the next write slot; the ring holds `len ≤ cap` windows
/// ending at the most recently recorded one.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    width: usize,
    n_models: usize,
    head: usize,
    len: usize,
    /// `cap × width` feature rows.
    rows: Vec<f64>,
    /// `cap × n_models` per-model attack probabilities.
    probs: Vec<f64>,
    adv_scores: Vec<f64>,
    selected: Vec<usize>,
    verdicts: Vec<Verdict>,
    samples: Vec<u64>,
    t_ns: Vec<u64>,
    generations: Vec<u64>,
    model_latency: Vec<u64>,
    /// One-row critic scratch for the adversarial predictor.
    critic: InferScratch,
    /// One one-row scratch per zoo model.
    model_scratch: Vec<PredictScratch>,
}

impl FlightRecorder {
    /// Builds a recorder for `cap` windows of `width` features, sizing
    /// the inference scratch from the deployed detector's topology.
    ///
    /// # Panics
    ///
    /// Panics if `cap` or `width` is zero.
    #[must_use]
    pub fn warmup(detector: &AdaptiveDetector, width: usize, cap: usize) -> Self {
        assert!(cap > 0, "flight recorder capacity must be positive");
        assert!(width > 0, "flight recorder width must be positive");
        let n_models = detector.models().len();
        Self {
            cap,
            width,
            n_models,
            head: 0,
            len: 0,
            rows: vec![0.0; cap * width],
            probs: vec![0.0; cap * n_models],
            adv_scores: vec![0.0; cap],
            selected: vec![0; cap],
            verdicts: vec![Verdict::Benign; cap],
            samples: vec![0; cap],
            t_ns: vec![0; cap],
            generations: vec![0; cap],
            model_latency: vec![0; cap],
            critic: detector.predictor().infer_scratch(1),
            model_scratch: detector.models().iter().map(|m| m.make_scratch(1)).collect(),
        }
    }

    /// Re-sizes the inference scratch against freshly hot-swapped
    /// artifacts. Ring contents survive — incident history deliberately
    /// crosses generation boundaries, which is why every window carries
    /// its own generation tag.
    pub fn rewarm(&mut self, detector: &AdaptiveDetector) {
        debug_assert_eq!(detector.models().len(), self.n_models, "zoo shape changed under swap");
        self.critic = detector.predictor().infer_scratch(1);
        self.model_scratch = detector.models().iter().map(|m| m.make_scratch(1)).collect();
    }

    /// Records one served window and returns the adversarial
    /// predictor's critic score for the row (the value the metrics
    /// history accumulates as `critic_sum`). Allocation-free: scores
    /// the row through the recorder-owned scratch and writes into the
    /// preallocated ring.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures (unfitted model — cannot
    /// happen on promoted artifacts).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not match the warmup width.
    pub fn record(
        &mut self,
        detector: &AdaptiveDetector,
        row: &[f64],
        verdict: Verdict,
        stamp: WindowStamp,
    ) -> Result<f64, CoreError> {
        assert_eq!(row.len(), self.width, "row width changed under the recorder");
        let slot = self.head;
        self.rows[slot * self.width..(slot + 1) * self.width].copy_from_slice(row);
        for (m, model) in detector.models().iter().enumerate() {
            self.probs[slot * self.n_models + m] =
                model.predict_proba_row_with(row, &mut self.model_scratch[m])?;
        }
        let adv_score = detector.predictor().feedback_reward_with(row, &mut self.critic);
        self.adv_scores[slot] = adv_score;
        self.selected[slot] = detector.controller().selected_model();
        self.verdicts[slot] = verdict;
        self.samples[slot] = stamp.sample;
        self.t_ns[slot] = stamp.t_ns;
        self.generations[slot] = stamp.generation;
        self.model_latency[slot] = stamp.model_latency_ns;
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
        Ok(adv_score)
    }

    /// Windows currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity fixed at warmup.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// FNV-1a digest over the held verdicts, oldest first.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash = DIGEST_SEED;
        for i in 0..self.len {
            hash = digest_step(hash, self.verdicts[self.slot(i)]);
        }
        hash
    }

    /// The ring slot of logical window `i` (0 = oldest).
    fn slot(&self, i: usize) -> usize {
        (self.head + self.cap - self.len + i) % self.cap
    }

    /// Snapshots the ring into owned windows, oldest first. Allocates —
    /// called only on alert fire edges, never per window.
    #[must_use]
    pub fn snapshot_windows(&self) -> Vec<IncidentWindow> {
        (0..self.len)
            .map(|i| {
                let s = self.slot(i);
                IncidentWindow {
                    sample: self.samples[s],
                    t_ns: self.t_ns[s],
                    verdict: self.verdicts[s],
                    adv_score: self.adv_scores[s],
                    selected_model: self.selected[s],
                    model_probs: self.probs[s * self.n_models..(s + 1) * self.n_models].to_vec(),
                    generation: self.generations[s],
                    model_latency_ns: self.model_latency[s],
                    row: self.rows[s * self.width..(s + 1) * self.width].to_vec(),
                }
            })
            .collect()
    }
}

/// Converts the edges of one alert evaluation into bundle triggers,
/// resolving each rule's current threshold from the engine rule set.
#[must_use]
pub fn triggers_from_edges(
    edges: &[AlertTransition],
    rules: &[hmd_obs::SloRule],
) -> Vec<IncidentTrigger> {
    edges
        .iter()
        .map(|e| IncidentTrigger {
            rule: e.rule.to_owned(),
            severity: e.severity.to_string(),
            firing: e.firing,
            observed: e.observed,
            threshold: rules
                .iter()
                .find(|r| r.name == e.rule)
                .map_or(f64::NAN, hmd_obs::SloRule::threshold),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_manual_fold() {
        let vs = [Verdict::Benign, Verdict::MalwareAttack, Verdict::AdversarialAttack];
        let mut h = DIGEST_SEED;
        for v in vs {
            h = (h ^ (verdict_slot(v) + 1)).wrapping_mul(0x0100_0000_01b3);
        }
        assert_eq!(verdict_digest(vs), h);
        assert_ne!(verdict_digest(vs), DIGEST_SEED);
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [Verdict::AdversarialAttack, Verdict::MalwareAttack, Verdict::Benign] {
            assert_eq!(parse_verdict(verdict_name(v)).unwrap(), v);
        }
        assert!(parse_verdict("bogus").is_err());
    }

    #[test]
    fn config_json_round_trips_through_quick_base() {
        let mut cfg = ServingConfig::quick(41);
        cfg.samples = 840;
        cfg.batch = 7;
        cfg.retrain_every = 280;
        cfg.burst = Some(Burst { start: 0.25, end: 0.65, adv_fraction: 0.9 });
        cfg.recorder = 16;
        let j = config_to_json(&cfg, 3);
        let (back, shards) = config_from_json(&j).unwrap();
        assert_eq!(shards, 3);
        assert_eq!(back.samples, cfg.samples);
        assert_eq!(back.batch, cfg.batch);
        assert_eq!(back.retrain_every, cfg.retrain_every);
        assert_eq!(back.burst, cfg.burst);
        assert_eq!(back.recorder, cfg.recorder);
        assert_eq!(back.stream_seed, cfg.stream_seed);
        assert_eq!(back.base_seed, cfg.base_seed);
        // the framework config is rebuilt from the base seed
        assert_eq!(back.framework.seed, cfg.framework.seed);
    }

    #[test]
    fn bundle_parse_rejects_wrong_schema() {
        let err = IncidentBundle::parse("{\"schema\":\"hmd-incident-v0\"}").unwrap_err();
        assert!(err.to_string().contains("unsupported bundle schema"));
    }

    fn trace(sample: u64, reason: TraceReason) -> WindowTrace {
        WindowTrace {
            sample,
            t_ns: sample * 10_000_000,
            generation: 1,
            verdict: Verdict::AdversarialAttack,
            reason,
            stage_ns: [10, 25, 60, 80, 85, 95],
            latency_ns: 95,
        }
    }

    #[test]
    fn window_trace_round_trips_through_json() {
        let t = trace(7, TraceReason::LatencyTail);
        let text = t.to_json().to_string();
        let back = WindowTrace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
        // the stage array key opts into the latency-scrub convention
        assert!(text.contains("\"stage_latency_ns\""));
    }

    #[test]
    fn trace_store_keeps_flagged_and_tail_rings_independent() {
        let mut store = TraceStore::with_caps(3, 2);
        for s in 0..5 {
            store.push(trace(s, TraceReason::Flagged));
        }
        // tail promotions can never evict flagged history
        for s in 100..110 {
            store.push(trace(s, TraceReason::LatencyTail));
        }
        let flagged = store.flagged();
        let tail = store.tail();
        assert_eq!(flagged.iter().map(|t| t.sample).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(tail.iter().map(|t| t.sample).collect::<Vec<_>>(), vec![108, 109]);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn traces_json_names_the_stage_order() {
        let snap = TraceSnapshot { flagged: vec![trace(1, TraceReason::Flagged)], tail: vec![] };
        let doc = traces_json(&[snap]);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(TRACES_SCHEMA));
        let stages = doc.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages.len(), TRACE_STAGES.len());
        assert_eq!(stages[0].as_str(), Some("draw"));
        assert_eq!(stages[5].as_str(), Some("record"));
        let shard0 = doc.get("per_shard").and_then(Json::as_arr).unwrap()[0].clone();
        assert_eq!(shard0.get("flagged").and_then(Json::as_arr).unwrap().len(), 1);
        assert_eq!(shard0.get("latency_tail").and_then(Json::as_arr).unwrap().len(), 0);
    }
}
