//! `replay` — deterministic forensic replay of an incident bundle.
//!
//! Loads an [`IncidentBundle`](hmd::IncidentBundle) (captured by a
//! serving shard on an SLO alert fire edge and fetched from
//! `/incidents/<id>.json`), rebuilds the serving artifacts at the
//! bundle's pinned model generation(s) from the recorded seed,
//! re-executes every captured window through the detector, and asserts
//! that the replayed verdicts — and their FNV-1a digest — are
//! byte-identical to what the live shard served. It then prints a
//! per-window explanation trace (critic score vs. threshold, routed
//! model, per-model probabilities) so the alert can be understood
//! offline.
//!
//! ```text
//! replay <bundle.json> [--explain N]
//! ```
//!
//! `--explain N` prints the trace for the last N windows (default 8;
//! 0 silences it). Exit status: 0 on a byte-identical replay, 1 on any
//! verdict or digest divergence, 2 on usage/parse errors.
//!
//! Generation 0 needs only the training pipeline
//! ([`Framework::prepare_serving`]); windows served by a later
//! generation re-run the recorded fleet with
//! [`retain_generations`](hmd::ServingConfig::retain_generations) so
//! the hub retains every published generation — the retraining
//! schedule is a pure function of the seed, so the re-run reproduces
//! the original promoted models bit-for-bit.

use std::sync::Arc;

use hmd::core::{Framework, ServingArtifacts, Verdict};
use hmd::recorder::{verdict_digest, verdict_name, IncidentBundle, WindowTrace};
use hmd::serving::FleetSession;
use hmd_util::json::Json;

fn usage(problem: &str) -> ! {
    eprintln!("replay: {problem}");
    eprintln!("usage: replay <bundle.json> [--explain N]");
    std::process::exit(2);
}

fn fail(problem: &str) -> ! {
    eprintln!("replay: {problem}");
    std::process::exit(2);
}

fn main() {
    let mut bundle_path: Option<String> = None;
    let mut explain: usize = 8;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(raw) = it.next() else { usage("--explain needs a value") };
                explain = raw
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad value for --explain: {raw:?}")));
            }
            "--help" | "-h" => usage("help requested"),
            other if other.starts_with("--") => usage(&format!("unknown flag {other:?}")),
            other => {
                if bundle_path.replace(other.to_owned()).is_some() {
                    usage("exactly one bundle path expected");
                }
            }
        }
    }
    let Some(path) = bundle_path else { usage("bundle path missing") };

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let bundle = IncidentBundle::parse(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    eprintln!(
        "replay: bundle {} (shard {}/{}, sample {}, generation {}, {} windows, digest {:016x})",
        bundle.id,
        bundle.shard,
        bundle.shards,
        bundle.sample_index,
        bundle.generation,
        bundle.windows.len(),
        bundle.verdict_digest
    );
    for t in &bundle.triggers {
        eprintln!(
            "replay: trigger {} [{}] {}: observed {:.6} vs threshold {:.6}",
            t.rule,
            t.severity,
            if t.firing { "fired" } else { "resolved" },
            t.observed,
            t.threshold
        );
    }
    if bundle.windows.is_empty() {
        fail("bundle holds no windows");
    }

    // v2 bundles embed the promoted flagged stage traces; assert they
    // survive a serialize → parse round trip byte-for-byte and that
    // every cumulative stage array is monotone (v1 bundles carry none)
    for t in &bundle.traces {
        if t.stage_ns.windows(2).any(|w| w[1] < w[0]) {
            fail(&format!("trace at sample {} has non-monotone stage ends", t.sample));
        }
        let text = t.to_json().to_string();
        let back = WindowTrace::from_json(
            &Json::parse(&text).unwrap_or_else(|e| fail(&format!("trace re-parse failed: {e}"))),
        )
        .unwrap_or_else(|e| fail(&format!("trace round-trip failed: {e}")));
        if back != *t {
            fail(&format!("trace at sample {} did not round-trip", t.sample));
        }
    }

    // rebuild the serving universe at the recorded seed. Generation 0
    // falls out of the training pipeline directly; later generations
    // need the recorded fleet re-run with history retention so the hub
    // can hand back the exact promoted artifacts.
    let needs_fleet = bundle.windows.iter().any(|w| w.generation > 0);
    let mut cfg = bundle.config.clone();
    eprintln!(
        "replay: rebuilding artifacts (seed {}, {})...",
        cfg.base_seed,
        if needs_fleet {
            format!("re-running {}-shard fleet for generation history", bundle.shards)
        } else {
            "generation 0, training pipeline only".to_owned()
        }
    );
    let fleet = if needs_fleet {
        cfg.retain_generations = true;
        let mut fleet = FleetSession::start(&cfg, bundle.shards)
            .unwrap_or_else(|e| fail(&format!("fleet rebuild failed: {e}")));
        fleet
            .run()
            .unwrap_or_else(|e| fail(&format!("fleet re-run failed: {e}")));
        Some(fleet)
    } else {
        None
    };
    // one artifacts handle per distinct generation in the bundle
    let mut generations: Vec<u64> = bundle.windows.iter().map(|w| w.generation).collect();
    generations.sort_unstable();
    generations.dedup();
    let pinned: Vec<(u64, Arc<ServingArtifacts>)> = generations
        .iter()
        .map(|&g| {
            let artifacts = match &fleet {
                Some(fleet) => fleet
                    .hub()
                    .unwrap_or_else(|| fail("bundle pins generations but the config never retrains"))
                    .artifacts_at(g)
                    .unwrap_or_else(|| fail(&format!("generation {g} not in retained history"))),
                None => Arc::new(
                    Framework::new(bundle.config.framework.clone())
                        .prepare_serving(bundle.config.kind)
                        .unwrap_or_else(|e| fail(&format!("training failed: {e}"))),
                ),
            };
            (g, artifacts)
        })
        .collect();
    let artifacts_at = |g: u64| -> &Arc<ServingArtifacts> {
        pinned
            .iter()
            .find(|(gen, _)| *gen == g)
            .map(|(_, a)| a)
            .unwrap_or_else(|| fail(&format!("generation {g} not pinned")))
    };

    // re-classify the windows, grouped into consecutive same-generation
    // runs (a ring can straddle a hot swap), preserving ring order so
    // the digest chain matches the recorded one
    let width = bundle.windows[0].row.len();
    let mut replayed: Vec<Verdict> = Vec::with_capacity(bundle.windows.len());
    let mut start = 0;
    while start < bundle.windows.len() {
        let generation = bundle.windows[start].generation;
        let mut end = start;
        while end < bundle.windows.len() && bundle.windows[end].generation == generation {
            end += 1;
        }
        let artifacts = artifacts_at(generation);
        let mut flat = Vec::with_capacity((end - start) * width);
        for w in &bundle.windows[start..end] {
            if w.row.len() != width {
                fail(&format!("window {} row width {} != {width}", w.sample, w.row.len()));
            }
            flat.extend_from_slice(&w.row);
        }
        let verdicts = artifacts
            .detector
            .classify_batch(&flat, width)
            .unwrap_or_else(|e| fail(&format!("replay classification failed: {e}")));
        replayed.extend(verdicts);
        start = end;
    }

    // the forensic contract: replayed verdicts (and their digest) are
    // byte-identical to what the live shard served
    let mut mismatches = 0usize;
    for (w, &got) in bundle.windows.iter().zip(&replayed) {
        if got != w.verdict {
            mismatches += 1;
            eprintln!(
                "replay: MISMATCH sample {} gen {}: recorded {} replayed {}",
                w.sample,
                w.generation,
                verdict_name(w.verdict),
                verdict_name(got)
            );
        }
    }
    let digest = verdict_digest(replayed.iter().copied());
    eprintln!(
        "replay: {} windows re-classified; digest recorded {:016x} replayed {digest:016x}",
        replayed.len(),
        bundle.verdict_digest
    );

    // explanation traces for the most recent windows: why each verdict
    // fell out of the critic threshold and the routed model
    if explain > 0 {
        let skip = bundle.windows.len().saturating_sub(explain);
        for w in &bundle.windows[skip..] {
            let artifacts = artifacts_at(w.generation);
            let trace = artifacts
                .detector
                .classify_explain(&w.row)
                .unwrap_or_else(|e| fail(&format!("explain failed: {e}")));
            let probs: Vec<String> = bundle
                .model_names
                .iter()
                .zip(&trace.model_probs)
                .map(|(name, p)| format!("{name}={p:.4}"))
                .collect();
            println!(
                "sample {:>6} gen {} verdict {:<11} critic {:+.4} vs {:+.4} ({}) routed {} [{}]",
                w.sample,
                w.generation,
                verdict_name(trace.verdict),
                trace.adv_score,
                trace.adv_threshold,
                if trace.flagged { "flagged" } else { "clean" },
                bundle.model_names.get(trace.selected_model).map_or("?", String::as_str),
                probs.join(" ")
            );
        }
    }

    if mismatches > 0 || digest != bundle.verdict_digest {
        eprintln!(
            "replay: FAILED — {mismatches} verdict mismatch(es), digest {}",
            if digest == bundle.verdict_digest { "matches" } else { "DIVERGED" }
        );
        std::process::exit(1);
    }
    println!("REPLAY_TRACES {} embedded stage trace(s) round-tripped", bundle.traces.len());
    println!("REPLAY_OK {} windows digest {digest:016x}", replayed.len());
}
