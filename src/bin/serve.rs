//! `serve` — the long-running detection service demo.
//!
//! Trains the full pipeline on the simulated corpus, then streams a
//! seeded benign/malware/adversarial traffic mix through the deployed
//! detector while exposing `/metrics`, `/healthz`, `/snapshot.json`,
//! `/history.json`, `/traces.json` and the self-contained `/dashboard`
//! over HTTP. After the sample budget is spent the process lingers,
//! still answering scrapes, until `/quit` is hit or the linger timeout
//! expires.
//!
//! ```text
//! serve [--samples N] [--port P] [--seed S] [--adv-fraction F]
//!       [--burst START,END,FRACTION] [--window-slots N] [--slot-ms MS]
//!       [--kind fast_inference|small_footprint|best_detection]
//!       [--shards N] [--batch N] [--http-workers N]
//!       [--retrain-every N] [--linger-secs S] [--no-monitoring]
//! ```
//!
//! `--shards N` runs N independently seeded serving shards (one OS
//! thread each) behind one merged endpoint; `--batch N` classifies N
//! samples per detector call (verdicts are identical at any batch
//! size); `--http-workers N` sizes the endpoint's connection pool;
//! `--retrain-every N` closes the arms-race loop, draining the
//! quarantine into a retraining round and hot-swapping the refreshed
//! models every N samples per shard.

use std::time::{Duration, Instant};

use hmd::serving::{Burst, FleetSession, ServingConfig};
use hmd::rl::ConstraintKind;
use hmd::obs::WindowConfig;

struct Args {
    samples: usize,
    port: u16,
    seed: u64,
    adv_fraction: Option<f64>,
    burst: Option<Burst>,
    window_slots: Option<usize>,
    slot_ms: Option<u64>,
    kind: ConstraintKind,
    shards: usize,
    batch: usize,
    http_workers: usize,
    retrain_every: usize,
    linger_secs: u64,
    monitoring: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!("serve: {problem}");
    eprintln!(
        "usage: serve [--samples N] [--port P] [--seed S] [--adv-fraction F] \
         [--burst START,END,FRACTION] [--window-slots N] [--slot-ms MS] \
         [--kind fast_inference|small_footprint|best_detection] \
         [--shards N] [--batch N] [--http-workers N] \
         [--retrain-every N] [--linger-secs S] [--no-monitoring]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else { usage(&format!("{flag} needs a value")) };
    raw.parse().unwrap_or_else(|_| usage(&format!("bad value for {flag}: {raw:?}")))
}

fn parse_burst(raw: &str) -> Burst {
    let parts: Vec<&str> = raw.split(',').collect();
    let [start, end, adv] = parts.as_slice() else {
        usage("--burst wants START,END,FRACTION (fractions of the budget)")
    };
    let p = |s: &str| {
        s.parse::<f64>().unwrap_or_else(|_| usage(&format!("bad burst component {s:?}")))
    };
    Burst { start: p(start), end: p(end), adv_fraction: p(adv) }
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 600,
        port: 0,
        seed: 7,
        adv_fraction: None,
        burst: None,
        window_slots: None,
        slot_ms: None,
        kind: ConstraintKind::BestDetection,
        shards: 1,
        batch: 1,
        http_workers: 4,
        retrain_every: 0,
        linger_secs: 600,
        monitoring: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--samples" => args.samples = parse("--samples", it.next()),
            "--port" => args.port = parse("--port", it.next()),
            "--seed" => args.seed = parse("--seed", it.next()),
            "--adv-fraction" => args.adv_fraction = Some(parse("--adv-fraction", it.next())),
            "--burst" => {
                let Some(raw) = it.next() else { usage("--burst needs a value") };
                args.burst = Some(parse_burst(&raw));
            }
            "--window-slots" => args.window_slots = Some(parse("--window-slots", it.next())),
            "--slot-ms" => args.slot_ms = Some(parse("--slot-ms", it.next())),
            "--kind" => {
                let raw: String = parse("--kind", it.next());
                args.kind = match raw.as_str() {
                    "fast_inference" => ConstraintKind::FastInference,
                    "small_footprint" => ConstraintKind::SmallFootprint,
                    "best_detection" => ConstraintKind::BestDetection,
                    other => usage(&format!("unknown constraint kind {other:?}")),
                };
            }
            "--shards" => args.shards = parse("--shards", it.next()),
            "--batch" => args.batch = parse("--batch", it.next()),
            "--http-workers" => args.http_workers = parse("--http-workers", it.next()),
            "--retrain-every" => args.retrain_every = parse("--retrain-every", it.next()),
            "--linger-secs" => args.linger_secs = parse("--linger-secs", it.next()),
            "--no-monitoring" => args.monitoring = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut cfg = ServingConfig::quick(args.seed);
    cfg.samples = args.samples;
    cfg.kind = args.kind;
    cfg.monitoring = args.monitoring;
    if let Some(f) = args.adv_fraction {
        cfg.adv_fraction = f;
    }
    if args.burst.is_some() {
        cfg.burst = args.burst;
    }
    if args.window_slots.is_some() || args.slot_ms.is_some() {
        let slots = args.window_slots.unwrap_or(cfg.window.slots);
        let slot_ms = args.slot_ms.unwrap_or(cfg.window.slot_ns / 1_000_000);
        cfg.window = WindowConfig::new(slots, slot_ms * 1_000_000);
    }

    cfg.batch = args.batch.max(1);
    cfg.retrain_every = args.retrain_every;

    eprintln!("serve: training pipeline (seed {})...", args.seed);
    let mut fleet = match FleetSession::start(&cfg, args.shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let addr =
        match fleet.serve_http(&format!("127.0.0.1:{}", args.port), args.http_workers) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("serve: failed to bind: {e}");
                std::process::exit(1);
            }
        };
    // machine-readable so scripts (ci.sh) can discover the ephemeral port
    println!("SERVE_ADDR http://{addr}");

    eprintln!(
        "serve: streaming {} samples across {} shard(s), batch {}...",
        args.samples,
        fleet.shards().len(),
        cfg.batch
    );
    let outcomes = match fleet.run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve: detector error: {e}");
            fleet.finish();
            std::process::exit(1);
        }
    };

    for (i, outcome) in outcomes.iter().enumerate() {
        eprintln!(
            "serve: shard {i}: processed {} samples (digest {:016x}); verdicts \
             adv/malware/benign = {:?}; alert transitions {}; drift events {}; healthy {}; \
             model generation {}",
            outcome.processed,
            outcome.digest,
            outcome.verdicts,
            outcome.alert_transitions,
            outcome.drift_events,
            outcome.healthy,
            outcome.generation
        );
    }
    let snap = fleet.snapshot();
    eprintln!(
        "serve: fleet windowed detection_rate {:?} flag_rate {:?} latency_p95 {:.3} ms",
        snap.detection_rate(),
        snap.flag_rate(),
        snap.latency_p95_ms()
    );

    // linger: keep answering scrapes until /quit or timeout
    let deadline = Instant::now() + Duration::from_secs(args.linger_secs);
    eprintln!("serve: lingering for scrapes (GET /quit to stop, timeout {}s)", args.linger_secs);
    while !fleet.quit_requested() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    fleet.finish();
    eprintln!("serve: bye");
}
