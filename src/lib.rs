//! Facade crate for the adversarial-resilient hardware malware detection
//! framework (DAC 2024 reproduction).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! * [`sim`] — synthetic processor + HPC sampling substrate;
//! * [`tabular`] — datasets, scaling, MI feature selection;
//! * [`nn`] — neural-network building blocks;
//! * [`ml`] — classical ML detectors and metrics;
//! * [`adversarial`] — LowProFool and baseline attacks;
//! * [`rl`] — A2C adversarial predictor and UCB constraint controller;
//! * [`integrity`] — SHA-256 model integrity validation;
//! * [`telemetry`] — spans, metrics and trace export (`HMD_TRACE=1`);
//! * [`obs`] — sliding-window serving observability, SLO alerts and
//!   the `/metrics` HTTP endpoint;
//! * [`core`] — the multi-phased framework tying it all together.
//!
//! See the [`core`] crate for the batch entry point (`core::Framework`)
//! and [`serving`] for the long-running streaming mode.

pub mod recorder;
pub mod serving;

pub use hmd_adversarial as adversarial;
pub use hmd_core as core;
pub use hmd_integrity as integrity;
pub use hmd_ml as ml;
pub use hmd_nn as nn;
pub use hmd_obs as obs;
pub use hmd_rl as rl;
pub use hmd_sim as sim;
pub use hmd_tabular as tabular;
pub use hmd_telemetry as telemetry;

pub use recorder::{
    FlightRecorder, IncidentBundle, IncidentMonitor, IncidentTrigger, IncidentWindow, WindowStamp,
};
pub use serving::{
    Burst, CalibrationReport, FleetSession, ModelHub, ServingConfig, ServingOutcome,
    ServingSession,
};
