//! Domain scenario: which malware families does an HPC detector catch,
//! and what do their counter signatures look like?
//!
//! Profiles every workload family on the simulated core, trains a
//! detector on the paper's four cache features, and reports per-family
//! detection rates — ransomware's scan/encrypt traffic makes it the
//! easiest catch, while a covert crypto-miner hides among the compute
//! workloads.
//!
//! ```text
//! cargo run --release --example ransomware_hunt
//! ```

use hmd::ml::{Classifier, Gbdt};
use hmd::sim::{build_corpus, CorpusConfig, HpcEvent, WorkloadClass};
use hmd::tabular::{split::stratified_split, Class, StandardScaler};
use hmd_util::rng::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CorpusConfig {
        benign_apps: 320,
        malware_apps: 320,
        windows_per_app: 3,
        warmup_windows: 2,
        seed: 1337,
        ..CorpusConfig::default()
    };
    println!("profiling {} applications on the simulated core...",
        config.benign_apps + config.malware_apps);
    let corpus = build_corpus(&config);

    // the paper's four features
    let names = corpus.dataset.feature_names();
    let feature_idx: Vec<usize> = ["LLC-load-misses", "LLC-loads", "cache-misses", "cpu/cache-misses/"]
        .iter()
        .map(|w| names.iter().position(|n| n == w).expect("event exists"))
        .collect();
    let selected = corpus.dataset.select_features(&feature_idx)?;

    // per-family mean LLC-load-misses (the top signature feature)
    println!("\nmean LLC-load-misses per 10 ms window, by family:");
    let llc_lm = corpus
        .dataset
        .feature_names()
        .iter()
        .position(|n| n == HpcEvent::LlcLoadMisses.name())
        .expect("event exists");
    for class in WorkloadClass::MALWARE.iter().chain(WorkloadClass::BENIGN.iter()) {
        let values: Vec<f64> = corpus
            .row_classes
            .iter()
            .enumerate()
            .filter(|&(_, c)| c == class)
            .map(|(i, _)| corpus.dataset.row(i).expect("row")[llc_lm])
            .collect();
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let tag = if class.is_malware() { "malware" } else { "benign " };
        println!("  [{tag}] {:<20} {:>10.0}", class.name(), mean);
    }

    // train/test split must keep row→class alignment: split indices
    let mut rng = StdRng::seed_from_u64(7);
    let (train, _test) = stratified_split(&selected, 0.2, &mut rng)?;
    let scaler = StandardScaler::fit(&train)?;
    let train_scaled = scaler.transform(&train)?;
    let targets = train_scaled.binary_targets(Class::is_attack);
    let mut detector = Gbdt::new();
    detector.fit(&train_scaled, &targets)?;

    // per-family detection rate over the full corpus
    println!("\nper-family detection rate (GBDT on the paper's four features):");
    let scaled_all = scaler.transform(&selected)?;
    for class in WorkloadClass::MALWARE {
        let mut caught = 0usize;
        let mut total = 0usize;
        for (i, &c) in corpus.row_classes.iter().enumerate() {
            if c != class {
                continue;
            }
            total += 1;
            if detector.predict_row(scaled_all.row(i)?)? {
                caught += 1;
            }
        }
        println!(
            "  {:<20} {:>5.1}%  ({caught}/{total} windows)",
            class.name(),
            100.0 * caught as f64 / total.max(1) as f64
        );
    }
    println!("\nfalse-alarm rate per benign class:");
    for class in WorkloadClass::BENIGN {
        let mut flagged = 0usize;
        let mut total = 0usize;
        for (i, &c) in corpus.row_classes.iter().enumerate() {
            if c != class {
                continue;
            }
            total += 1;
            if detector.predict_row(scaled_all.row(i)?)? {
                flagged += 1;
            }
        }
        println!(
            "  {:<20} {:>5.1}%",
            class.name(),
            100.0 * flagged as f64 / total.max(1) as f64
        );
    }
    Ok(())
}
