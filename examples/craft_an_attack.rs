//! The attacker's view: craft imperceptible HPC perturbations with
//! LowProFool, compare against FGSM and random noise, and inspect how
//! small the winning perturbations are.
//!
//! ```text
//! cargo run --release --example craft_an_attack
//! ```

use hmd::adversarial::{Attack, Fgsm, LowProFool, RandomNoise};
use hmd::core::PAPER_TOP4;
use hmd::sim::{build_corpus, CorpusConfig};
use hmd::tabular::{Class, StandardScaler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // profile victims exactly like the defender would
    let corpus = build_corpus(&CorpusConfig {
        benign_apps: 240,
        malware_apps: 240,
        windows_per_app: 3,
        warmup_windows: 2,
        seed: 7,
        ..CorpusConfig::default()
    });
    let names = corpus.dataset.feature_names();
    let idx: Vec<usize> = PAPER_TOP4
        .iter()
        .map(|w| names.iter().position(|n| n == w).expect("event exists"))
        .collect();
    let data = corpus.dataset.select_features(&idx)?;
    let scaler = StandardScaler::fit(&data)?;
    let data = scaler.transform(&data)?;
    let malware = data.filter(Class::is_attack);
    println!("{} malware windows to disguise\n", malware.len());

    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(LowProFool::fit(&data)?),
        Box::new(Fgsm::fit(&data, 0.5)?),
        Box::new(RandomNoise::fit(&data, 0.5)?),
    ];
    println!(
        "{:<12} {:>9} {:>14} {:>11}",
        "attack", "success", "perturbation", "iterations"
    );
    for attack in &attacks {
        let result = attack.generate(&malware, 2024)?;
        let mean_iters: f64 = result.outcomes.iter().map(|o| o.iterations as f64).sum::<f64>()
            / result.outcomes.len() as f64;
        println!(
            "{:<12} {:>8.1}% {:>14.3} {:>11.0}",
            attack.name(),
            result.success_rate() * 100.0,
            result.mean_perturbation(),
            mean_iters
        );
    }

    // show one disguise up close
    let lpf = LowProFool::fit(&data)?;
    let result = lpf.generate(&malware, 1)?;
    let victim = malware.row(0)?;
    let disguised = &result.outcomes[0].features;
    println!("\none disguise, feature by feature (standardized units):");
    for (i, name) in PAPER_TOP4.iter().enumerate() {
        println!(
            "  {:<20} {:>8.3} -> {:>8.3}  (Δ {:+.3})",
            name,
            victim[i],
            disguised[i],
            disguised[i] - victim[i]
        );
    }
    println!(
        "\nevaluator now scores it P(malware) = {:.3} (was {:.3})",
        hmd::ml::Classifier::predict_proba_row(lpf.evaluator(), disguised)?,
        hmd::ml::Classifier::predict_proba_row(lpf.evaluator(), victim)?,
    );
    Ok(())
}
