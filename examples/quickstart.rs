//! Quickstart: run the complete adversarial-resilient HMD pipeline on a
//! small simulated corpus and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hmd::core::{Framework, FrameworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small corpus so the example finishes in seconds; use
    // `FrameworkConfig::paper(seed)` for the full 3,000-application run.
    let mut config = FrameworkConfig::quick(42);
    config.corpus.benign_apps = 120;
    config.corpus.malware_apps = 120;

    println!("running the multi-phased framework (corpus → attack → defense)...");
    let report = Framework::new(config).run()?;

    println!("\nselected HPC features: {:?}", report.selected_features);
    println!(
        "LowProFool attack success rate: {:.0}%",
        report.attack_success_rate * 100.0
    );

    println!("\nF1 per scenario:");
    println!("{:<10} {:>9} {:>9} {:>9}", "model", "baseline", "attacked", "defended");
    for row in &report.baseline {
        let attacked = report
            .attacked
            .iter()
            .find(|r| r.model == row.model)
            .map_or(0.0, |r| r.metrics.f1);
        let defended = report
            .defended
            .iter()
            .find(|r| r.model == row.model)
            .map_or(0.0, |r| r.metrics.f1);
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2}",
            row.model, row.metrics.f1, attacked, defended
        );
    }

    println!(
        "\nadversarial predictor: accuracy {:.2}, precision {:.2}, recall {:.2}",
        report.predictor.accuracy, report.predictor.precision, report.predictor.recall
    );
    for c in &report.controllers {
        println!(
            "{}: routes to {} (F1 {:.2}, {:.4} ms, {} bytes)",
            c.agent, c.selected_model, c.metrics.f1, c.latency_ms, c.size_bytes
        );
    }
    Ok(())
}
