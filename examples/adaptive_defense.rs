//! The paper's run-time feedback loop, end to end: deploy the adaptive
//! detector, stream mixed traffic (benign / malware / adversarial), watch
//! the adversarial predictor quarantine disguised samples, then retrain
//! on the quarantine and verify the detectors hardened.
//!
//! ```text
//! cargo run --release --example adaptive_defense
//! ```

use hmd::adversarial::attacked_test_set;
use hmd::core::{AdaptiveDetector, Framework, FrameworkConfig, Verdict};
use hmd::integrity::{MetricMonitor, ModelRegistry};
use hmd::ml::{classical_models, evaluate, Classifier, Mlp};
use hmd::rl::{ConstraintController, ConstraintKind, ControllerConfig, ModelProfile};
use hmd::tabular::Class;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = FrameworkConfig::quick(99);
    config.corpus.benign_apps = 160;
    config.corpus.malware_apps = 160;
    let fw = Framework::new(config);

    println!("phase 1-3: corpus, baseline, attack generation...");
    let bundle = fw.prepare_data()?;
    let attacks = fw.generate_attacks(&bundle)?;
    println!(
        "  LowProFool succeeded on {:.0}% of test malware",
        attacks.test_result.success_rate() * 100.0
    );

    // before hardening: a baseline MLP collapses under the attack
    let clean_targets = bundle.train.binary_targets(Class::is_attack);
    let mut naive = Mlp::new();
    naive.fit(&bundle.train, &clean_targets)?;
    let attacked = attacked_test_set(&bundle.test, &attacks.test_result.adversarial)?;
    let attacked_targets = attacked.binary_targets(Class::is_attack);
    let naive_metrics = evaluate(&naive, &attacked, &attacked_targets)?;
    println!("  naive MLP under attack: F1 {:.2}, FNR {:.2}", naive_metrics.f1, naive_metrics.fnr);

    println!("\nphase 4-6: predictor, adversarial training, controller...");
    let merged = Framework::merged_training_set(&bundle, &attacks)?;
    let predictor = fw.train_predictor(&merged)?;
    let merged_targets = merged.binary_targets(Class::is_attack);
    let mut models = classical_models();
    for m in &mut models {
        m.fit(&merged, &merged_targets)?;
    }
    let profiles: Vec<ModelProfile> = models
        .iter()
        .map(|m| ModelProfile {
            name: m.name().to_owned(),
            latency_ms: 0.01,
            size_bytes: m.size_bytes(),
        })
        .collect();
    let controller = ConstraintController::train(
        ConstraintKind::BestDetection,
        &models,
        profiles,
        &merged,
        &merged_targets,
        ControllerConfig::default(),
    )?;
    println!("  controller routes inference to {}", models[controller.selected_model()].name());

    // integrity: register the deployed models and verify them
    let registry = ModelRegistry::new();
    let monitor = MetricMonitor::new(0.08);
    for m in &models {
        registry.register(m.name(), m.name().as_bytes(), 1_720_000_000);
    }
    let merged_test = Framework::merged_test_set(&bundle, &attacks)?;
    let merged_test_targets = merged_test.binary_targets(Class::is_attack);
    for m in &models {
        monitor.record_baseline(m.name(), evaluate(m.as_ref(), &merged_test, &merged_test_targets)?);
        assert!(registry.verify(m.name(), m.name().as_bytes()).is_verified());
    }
    println!("  {} model fingerprints registered & verified", registry.len());

    println!("\ndeploying the adaptive detector and streaming mixed traffic...");
    let detector =
        AdaptiveDetector::new(predictor, controller, models, bundle.feature_names.clone())?;
    let mut verdicts = [0usize; 3];
    for (row, label) in &merged_test {
        let v = detector.classify(row)?;
        match v {
            Verdict::AdversarialAttack => verdicts[0] += 1,
            Verdict::MalwareAttack => verdicts[1] += 1,
            Verdict::Benign => verdicts[2] += 1,
        }
        let _ = label;
    }
    println!(
        "  verdicts: {} adversarial (quarantined), {} malware, {} benign",
        verdicts[0], verdicts[1], verdicts[2]
    );

    // the feedback loop: quarantine feeds the next training round
    let quarantine = detector.take_quarantine();
    println!("  quarantine drained: {} samples labeled adversarial", quarantine.len());
    let mut next_round = merged.clone();
    next_round.merge(&quarantine)?;
    let next_targets = next_round.binary_targets(Class::is_attack);
    let mut hardened = Mlp::new();
    hardened.fit(&next_round, &next_targets)?;
    let hardened_metrics = evaluate(&hardened, &attacked, &attacked_targets)?;
    println!(
        "\nhardened MLP under the same attack: F1 {:.2} (naive was {:.2})",
        hardened_metrics.f1, naive_metrics.f1
    );
    assert!(hardened_metrics.f1 > naive_metrics.f1);
    Ok(())
}
