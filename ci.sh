#!/usr/bin/env bash
# Tier-1 verification gate. Must pass on a machine with NO network
# access and an EMPTY cargo registry: the workspace is hermetic and
# depends on nothing outside this repository (see DESIGN.md,
# "Hermetic-build policy").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== clippy (offline, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke (fast mode) =="
BENCH_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_SMOKE_DIR"' EXIT
HMD_BENCH_FAST=1 BENCH_OUT_DIR="$BENCH_SMOKE_DIR" \
    cargo bench -p hmd-bench --bench substrates --offline
cargo run --release --offline -p hmd-bench --bin bench_check -- \
    "$BENCH_SMOKE_DIR/BENCH_substrates.json"

echo "== hermeticity: dependency tree must be workspace-only =="
if cargo tree --workspace --offline --prefix none | grep -v '^hmd' | grep -q '[a-z]'; then
    echo "ERROR: non-workspace dependency found:" >&2
    cargo tree --workspace --offline --prefix none | grep -v '^hmd' | grep '[a-z]' >&2
    exit 1
fi

echo "ci.sh: all gates passed"
