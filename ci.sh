#!/usr/bin/env bash
# Tier-1 verification gate. Must pass on a machine with NO network
# access and an EMPTY cargo registry: the workspace is hermetic and
# depends on nothing outside this repository (see DESIGN.md,
# "Hermetic-build policy").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== clippy (offline, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke (fast mode) =="
BENCH_SMOKE_DIR="$(mktemp -d)"
TRACE_DIR="$(mktemp -d)"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$BENCH_SMOKE_DIR" "$TRACE_DIR"' EXIT
HMD_BENCH_FAST=1 BENCH_OUT_DIR="$BENCH_SMOKE_DIR" \
    cargo bench -p hmd-bench --bench substrates --offline
cargo run --release --offline -p hmd-bench --bin bench_check -- \
    "$BENCH_SMOKE_DIR/BENCH_substrates.json"
# Regression gate: the fresh (fast-mode) run against the committed
# baseline. The tolerance is deliberately generous — it exists to catch
# order-of-magnitude cliffs, not machine-to-machine scatter.
cargo run --release --offline -p hmd-bench --bin bench_check -- \
    --baseline BENCH_substrates.json "$BENCH_SMOKE_DIR/BENCH_substrates.json"

echo "== telemetry gate =="
# A traced end-to-end run must emit schema-valid artifacts covering the
# paper's phases, and tracing must not perturb the pipeline: the traced
# and untraced stdout are identical once measured latencies (the one
# wall-clock field) are scrubbed.
HMD_TRACE=1 HMD_TRACE_OUT="$TRACE_DIR" \
    cargo run --release --offline --example quickstart > "$TRACE_DIR/traced.out"
cargo run --release --offline --example quickstart > "$TRACE_DIR/untraced.out"
cargo run --release --offline -p hmd-bench --bin telemetry_check -- \
    "$TRACE_DIR/TELEMETRY_pipeline.json" \
    --require-span framework.run \
    --require-span framework.prepare_data \
    --require-span sim.build_corpus \
    --require-span framework.fit_models \
    --require-span attack.lowprofool.generate \
    --require-span rl.predictor.train \
    --require-span framework.train_controllers
test -s "$TRACE_DIR/TELEMETRY_pipeline.folded" \
    || { echo "ERROR: collapsed-stack export is empty" >&2; exit 1; }
sed -E 's/[0-9]+\.[0-9]+ ms/<latency> ms/g' "$TRACE_DIR/traced.out" > "$TRACE_DIR/traced.scrubbed"
sed -E 's/[0-9]+\.[0-9]+ ms/<latency> ms/g' "$TRACE_DIR/untraced.out" > "$TRACE_DIR/untraced.scrubbed"
diff -u "$TRACE_DIR/untraced.scrubbed" "$TRACE_DIR/traced.scrubbed" \
    || { echo "ERROR: tracing perturbed the pipeline output" >&2; exit 1; }

echo "== serving observability gate =="
# A full two-shard batched serving fleet on an ephemeral port: train,
# stream the seeded lull/burst/recovery traffic on each shard, then
# scrape and validate every endpoint. The burst must have produced
# alert fire+resolve transitions, the exposition must be well-formed
# with all serving series present, and the per-shard labeled series
# must sum to the fleet aggregate. --retrain-every 200 schedules two
# retraining rounds (boundaries at 200 and 400 of 600), so the run must
# also complete at least one quarantine-driven model hot-swap and land
# on generation 2. The seeded burst trips SLO alerts, so the flight
# recorder must have captured at least one incident bundle; the first
# one is saved for the forensic replay gate below.
./target/release/serve --samples 600 --seed 7 --shards 2 --batch 16 \
    --retrain-every 200 --linger-secs 300 \
    > "$TRACE_DIR/serve.out" 2> "$TRACE_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 300); do
    grep -q '^SERVE_ADDR ' "$TRACE_DIR/serve.out" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null \
        || { echo "ERROR: serve exited early:" >&2; cat "$TRACE_DIR/serve.err" >&2; exit 1; }
    sleep 1
done
SERVE_ADDR="$(sed -n 's/^SERVE_ADDR //p' "$TRACE_DIR/serve.out")"
[ -n "$SERVE_ADDR" ] || { echo "ERROR: serve never printed SERVE_ADDR" >&2; exit 1; }
# --expect-history / --expect-traces extend the gate to the continuous
# observability surface: a populated multi-resolution /history.json
# whose merged counters equal the shard sums, at least one promoted
# stage trace on /traces.json, and a served /dashboard page.
cargo run --release --offline -p hmd-bench --bin obs_check -- \
    "$SERVE_ADDR" --wait-samples 1200 --expect-transitions 4 --expect-shards 2 \
    --expect-generation 2 --expect-incident --expect-history --expect-traces \
    --save-incident "$TRACE_DIR/incident.json" --quit
wait "$SERVE_PID"
SERVE_PID=""

echo "== forensic replay gate =="
# Deterministic replay of the incident bundle captured above: rebuild
# the artifacts at the pinned generation(s) from the recorded seed,
# re-classify every captured window, and gate on a byte-identical
# verdict digest (replay exits non-zero on any divergence). The v2
# bundle embeds the promoted flagged stage traces; replay round-trips
# them and reports the count — the burst guarantees at least one.
./target/release/replay "$TRACE_DIR/incident.json" --explain 4 \
    | tee "$TRACE_DIR/replay.out"
grep -Eq '^REPLAY_TRACES [1-9]' "$TRACE_DIR/replay.out" \
    || { echo "ERROR: replayed v2 bundle embeds no stage traces" >&2; exit 1; }

echo "== hermeticity: dependency tree must be workspace-only =="
if cargo tree --workspace --offline --prefix none | grep -v '^hmd' | grep -q '[a-z]'; then
    echo "ERROR: non-workspace dependency found:" >&2
    cargo tree --workspace --offline --prefix none | grep -v '^hmd' | grep '[a-z]' >&2
    exit 1
fi

echo "ci.sh: all gates passed"
