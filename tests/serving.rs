//! End-to-end serving mode: stream seeded traffic through the trained
//! detector while scraping the live HTTP endpoints, and assert the SLO
//! choreography — healthy lull, alert-firing adversarial burst, healthy
//! recovery once the windows slide clean.
//!
//! Everything runs on stream time (10 ms per sample), so the breach and
//! the recovery are a pure function of the seed: no sleeps, no flakes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hmd::obs::validate_exposition;
use hmd::{FleetSession, ServingConfig, ServingSession};
use hmd_util::json::Json;

/// Minimal scrape client: one GET, returns (status, body).
fn get(addr: &SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    s.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

#[test]
fn serving_breach_and_recovery_end_to_end() {
    let cfg = ServingConfig::quick(7);
    let budget = cfg.samples;
    let burst = cfg.burst.expect("quick config bursts");
    let mut session = ServingSession::start(cfg).expect("training succeeds");
    let addr = session.serve_http("127.0.0.1:0").expect("bind ephemeral port");

    // Deep into the burst the flag-rate window is saturated with
    // injected adversarial rows.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let mid_burst = ((burst.start + burst.end) / 2.0 * budget as f64) as usize + 40;
    while session.outcome().processed < mid_burst {
        assert!(session.step().expect("step"), "budget exhausted early");
    }
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 503, "mid-burst healthz must fail: {body}");
    let (status, page) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&page).expect("well-formed exposition");
    for series in [
        "hmd_serving_detection_rate",
        "hmd_serving_adversarial_flag_rate",
        "hmd_serving_latency_ns_p50",
        "hmd_serving_latency_ns_p95",
        "hmd_serving_latency_ns_p99",
        "hmd_serving_samples_total",
        "hmd_serving_healthy 0",
        "hmd_serving_alert_firing",
        "hmd_serving_latency_ns_bucket{le=",
        "hmd_serving_latency_ns_bucket{le=\"+Inf\"}",
    ] {
        assert!(page.contains(series), "missing {series} in:\n{page}");
    }
    // every observed window stamps its bucket's exemplar, so mid-burst
    // at least one bucket line carries an OpenMetrics annotation
    assert!(
        page.contains(" # {sample=\""),
        "latency buckets must carry exemplar annotations in:\n{page}"
    );

    // Run out the budget: the burst windows slide clean and every
    // critical alert resolves.
    while session.step().expect("step") {}
    let outcome = session.outcome();
    assert_eq!(outcome.processed, budget);
    assert_eq!(outcome.verdicts.iter().sum::<u64>(), budget as u64);
    assert!(outcome.healthy, "session must recover after the burst");
    assert!(
        outcome.alert_transitions >= 4,
        "expected fire+resolve edges, got {}",
        outcome.alert_transitions
    );
    assert!(outcome.drift_events >= 1, "burst must register integrity drift");

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "post-recovery healthz: {body}");
    let (status, page) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(page.contains("hmd_serving_healthy 1"), "healthy gauge must recover");

    let (status, body) = get(&addr, "/snapshot.json");
    assert_eq!(status, 200);
    let snap = Json::parse(&body).expect("snapshot must be valid JSON");
    let slo = snap.get("slo").and_then(Json::as_arr).expect("snapshot carries the slo array");
    assert!(!slo.is_empty(), "per-rule SLO state must be populated");
    for rule in slo {
        for key in ["rule", "severity", "threshold", "firing", "transitions"] {
            assert!(rule.get(key).is_some(), "slo entry missing {key:?} in:\n{body}");
        }
    }
    assert!(
        snap.get("incidents_total").and_then(Json::as_f64).expect("incidents_total") >= 1.0,
        "the burst must have captured incidents"
    );

    // the burst tripped alerts, so the flight recorder captured
    // incident bundles: counter on /metrics, browsable index, and each
    // bundle round-trips through the typed parser
    for series in [
        "hmd_serving_incidents_total",
        "hmd_serving_calibration_quarantined_total",
        "hmd_serving_slo_firing{rule=",
        "hmd_serving_alert_transitions_total{rule=",
    ] {
        assert!(page.contains(series), "missing {series} in:\n{page}");
    }
    let (status, body) = get(&addr, "/incidents");
    assert_eq!(status, 200);
    let index = Json::parse(&body).expect("incident index must be valid JSON");
    let rows = index.get("incidents").and_then(Json::as_arr).expect("incidents array");
    assert!(!rows.is_empty(), "incident index must list the captured bundles");
    let id = rows[0].get("id").and_then(Json::as_str).expect("bundle id").to_owned();
    let (status, body) = get(&addr, &format!("/incidents/{id}.json"));
    assert_eq!(status, 200, "bundle {id} must be fetchable");
    let bundle = hmd::IncidentBundle::parse(&body).expect("bundle round-trips through the parser");
    assert_eq!(bundle.id, id);
    assert!(!bundle.windows.is_empty(), "bundle must carry the recorded windows");
    assert_eq!(
        bundle.verdict_digest,
        hmd::recorder::verdict_digest(bundle.windows.iter().map(|w| w.verdict)),
        "bundle digest must fold from its own windows"
    );
    let (status, _) = get(&addr, "/incidents/s9-i999.json");
    assert_eq!(status, 404, "unknown incident ids must 404");

    let (status, _) = get(&addr, "/definitely-not-a-route");
    assert_eq!(status, 404);

    assert!(!session.quit_requested());
    let (status, _) = get(&addr, "/quit");
    assert_eq!(status, 200);
    assert!(session.quit_requested(), "/quit must reach the session");
    session.finish();
}

/// Sends one GET on an already-open keep-alive connection and reads
/// exactly one response: parses `Content-Length` instead of reading to
/// EOF, so the connection stays usable for the next request.
fn get_on(reader: &mut BufReader<TcpStream>, path: &str) -> (u16, String) {
    write!(reader.get_mut(), "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 =
        line.split_whitespace().nth(1).and_then(|c| c.parse().ok()).expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// A two-shard fleet with batched classification behind one endpoint:
/// the merged `/metrics` page carries label-separated per-shard series
/// whose totals sum to the aggregate, `/snapshot.json` serves the live
/// monitor (with tracing off — the old bug returned only the telemetry
/// snapshot, i.e. nothing), and the worker pool answers two concurrent
/// keep-alive scrapers while a third client stalls mid-request.
#[test]
fn fleet_merged_endpoint_with_concurrent_keepalive_scrapers() {
    let mut cfg = ServingConfig::quick(23);
    cfg.samples = 300;
    cfg.batch = 8;
    let mut fleet = FleetSession::start(&cfg, 2).expect("training succeeds");
    let addr = fleet.serve_http("127.0.0.1:0", 4).expect("bind ephemeral port");
    let outcomes = fleet.run().expect("fleet run");
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].processed + outcomes[1].processed, 600);
    assert_ne!(outcomes[0].digest, outcomes[1].digest, "shards must decorrelate");

    // a client that stalls mid-request-line pins one worker on its I/O
    // timeout; the rest of the pool must keep answering
    let mut staller = TcpStream::connect(addr).expect("staller connects");
    staller.write_all(b"GET /met").expect("partial request");

    // two concurrent scrapers, three requests over one connection each
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let stream = TcpStream::connect(addr).expect("scraper connects");
                stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
                let mut reader = BufReader::new(stream);
                for _ in 0..3 {
                    let (status, page) = get_on(&mut reader, "/metrics");
                    assert_eq!(status, 200);
                    validate_exposition(&page).expect("well-formed exposition");
                    for series in [
                        "hmd_serving_shard_samples_total{shard=\"0\"} 300",
                        "hmd_serving_shard_samples_total{shard=\"1\"} 300",
                        "hmd_serving_samples_total 600",
                        "hmd_serving_quarantine_evicted_total",
                        "hmd_serving_quarantined",
                    ] {
                        assert!(page.contains(series), "missing {series} in:\n{page}");
                    }
                }
            });
        }
    });
    // well inside the 2 s per-read I/O timeout: the staller never
    // head-of-line blocked the scrapers
    assert!(
        t0.elapsed() < Duration::from_millis(1500),
        "scrapers stalled behind a slow client: {:?}",
        t0.elapsed()
    );
    drop(staller);

    // live snapshot without HMD_TRACE: the monitor view, not telemetry
    let (status, body) = get(&addr, "/snapshot.json");
    assert_eq!(status, 200);
    let snap = Json::parse(&body).expect("snapshot must be valid JSON");
    let Json::Obj(fields) = &snap else { panic!("snapshot must be an object: {body}") };
    for key in
        ["t_ns", "shards", "samples_total", "detection_rate", "healthy", "quarantined"]
    {
        assert!(fields.iter().any(|(k, _)| k == key), "missing {key:?} in:\n{body}");
    }
    let num = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or_else(|| panic!("non-numeric {key:?} in:\n{body}"))
    };
    assert_eq!(num("samples_total"), 600.0, "merged sample total");
    assert_eq!(num("shards"), 2.0);

    // continuous-observability surface: the multi-resolution history
    // document, merged across both shards with per-shard tiers attached
    let (status, body) = get(&addr, "/history.json");
    assert_eq!(status, 200);
    let hist = Json::parse(&body).expect("history must be valid JSON");
    assert_eq!(hist.get("schema").and_then(Json::as_str), Some("hmd-history-v1"));
    let merged_fine = hist
        .get("merged")
        .and_then(|m| m.get("fine"))
        .and_then(Json::as_arr)
        .expect("merged fine tier");
    assert!(!merged_fine.is_empty(), "300 samples per shard must flush fine points");
    let per_shard = hist.get("per_shard").and_then(Json::as_arr).expect("per-shard tiers");
    assert_eq!(per_shard.len(), 2, "one history tier set per shard");

    // promoted stage traces: every cumulative stage array spans the
    // pinned stage order and is monotone non-decreasing
    let (status, body) = get(&addr, "/traces.json");
    assert_eq!(status, 200);
    let traces = Json::parse(&body).expect("traces must be valid JSON");
    assert_eq!(traces.get("schema").and_then(Json::as_str), Some("hmd-traces-v1"));
    let stages = traces.get("stages").and_then(Json::as_arr).expect("stage names");
    assert_eq!(stages.len(), hmd::recorder::TRACE_STAGES.len());
    let mut promoted = 0usize;
    for shard in traces.get("per_shard").and_then(Json::as_arr).expect("per-shard traces") {
        for ring in ["flagged", "latency_tail"] {
            for t in shard.get(ring).and_then(Json::as_arr).expect(ring) {
                promoted += 1;
                let ends: Vec<f64> = t
                    .get("stage_latency_ns")
                    .and_then(Json::as_arr)
                    .expect("stage array")
                    .iter()
                    .filter_map(Json::as_f64)
                    .collect();
                assert_eq!(ends.len(), stages.len(), "one stage end per pinned stage");
                assert!(
                    ends.windows(2).all(|w| w[0] <= w[1]),
                    "cumulative stage ends must be monotone: {ends:?}"
                );
            }
        }
    }
    assert!(promoted >= 1, "the burst must promote at least one trace");

    // the dashboard is one self-contained page that polls the history
    let (status, page) = get(&addr, "/dashboard");
    assert_eq!(status, 200);
    assert!(page.starts_with("<!doctype html>"), "dashboard must be a full document");
    assert!(page.contains("/history.json"), "dashboard must poll the history endpoint");

    let (status, _) = get(&addr, "/quit");
    assert_eq!(status, 200);
    assert!(fleet.quit_requested(), "/quit must reach every shard");
    fleet.finish();
}

/// The arms-race loop under live scrape load: a two-shard fleet crosses
/// two retraining boundaries (the first mid-burst, so the round drains
/// a non-empty quarantine and hot-swaps the zoo) while a scraper
/// hammers `/metrics` and `/snapshot.json` across the promotions. No
/// scrape may error, the generation series must climb monotonically to
/// the scheduled final generation, no shard may drop a window, and the
/// integrity registry must have re-hashed the promoted models under
/// their generation tag.
#[test]
fn model_hot_swap_under_scrape_load() {
    let mut cfg = ServingConfig::quick(31);
    cfg.samples = 400;
    cfg.batch = 8;
    cfg.retrain_every = 150; // boundaries at 150 (mid-burst) and 300
    let mut fleet = FleetSession::start(&cfg, 2).expect("training succeeds");
    let addr = fleet.serve_http("127.0.0.1:0", 4).expect("bind ephemeral port");

    let done = std::sync::atomic::AtomicBool::new(false);
    let outcomes = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut generations: Vec<f64> = Vec::new();
            loop {
                // check-then-scrape: the last pass runs after the fleet
                // finished, so at least one scrape sees the final state
                let stop = done.load(std::sync::atomic::Ordering::SeqCst);
                let (status, page) = get(&addr, "/metrics");
                assert_eq!(status, 200, "scrape failed mid-promotion");
                validate_exposition(&page).expect("well-formed exposition across promotions");
                let generation = page
                    .lines()
                    .find_map(|l| l.strip_prefix("hmd_serving_model_generation "))
                    .and_then(|v| v.trim().parse::<f64>().ok())
                    .expect("generation series present");
                generations.push(generation);
                let (status, body) = get(&addr, "/snapshot.json");
                assert_eq!(status, 200, "snapshot failed mid-promotion");
                Json::parse(&body).expect("snapshot stays valid JSON across promotions");
                if stop {
                    break;
                }
            }
            generations
        });
        let outcomes = fleet.run().expect("fleet run across hot-swaps");
        done.store(true, std::sync::atomic::Ordering::SeqCst);
        let generations = scraper.join().expect("scraper thread");
        assert!(!generations.is_empty());
        assert!(
            generations.windows(2).all(|w| w[0] <= w[1]),
            "generation series must be monotonic: {generations:?}"
        );
        outcomes
    });

    // zero dropped windows across both promotions, both shards finish
    // on the final scheduled generation
    assert_eq!(outcomes.len(), 2);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.processed, 400, "shard {i} dropped windows across a swap");
        assert_eq!(outcome.verdicts.iter().sum::<u64>(), 400, "shard {i} verdict counts");
        assert_eq!(outcome.generation, 2, "shard {i} finished on the wrong generation");
    }

    let hub = fleet.hub().expect("retraining fleet has a hub");
    assert_eq!(hub.generation(), 2);
    assert!(hub.swaps() >= 1, "the mid-burst boundary must swap models");
    assert!(hub.absorbed() >= 1, "a swap absorbs quarantined rows");

    // final exposition reflects the completed schedule
    let (status, page) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(page.contains("hmd_serving_model_generation 2"), "final generation in:\n{page}");
    let swaps = page
        .lines()
        .find_map(|l| l.strip_prefix("hmd_serving_model_swaps_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("swap counter present");
    assert!(swaps >= 1.0, "swap counter must record the promotion");

    // the registry was re-hashed at promotion: every deployed model
    // carries a generation-tagged record, and at least one was promoted
    // past generation 0
    let registry = hub.registry();
    let names = registry.model_names();
    assert_eq!(names.len(), fleet.artifacts().detector.models().len());
    let max_deployed =
        names.iter().map(|n| registry.record(n).expect("record").deployed_at).max().unwrap();
    assert!((1..=2).contains(&max_deployed), "promoted models must be tagged with their generation");

    let (status, _) = get(&addr, "/quit");
    assert_eq!(status, 200);
    fleet.finish();
}

/// Exemplar identity: every latency-histogram exemplar names a global
/// sample index, and with the flight recorder deep enough to retain the
/// whole run, that index must resolve to a recorded window whose
/// generation matches. Model-latency exemplars additionally carry the
/// exact nanosecond value the recorder stamped — the exemplar is a
/// live cross-reference from the exposition into the forensic ring,
/// not a statistical echo.
#[test]
fn latency_exemplars_resolve_to_flight_recorder_windows() {
    let mut cfg = ServingConfig::quick(11);
    cfg.samples = 250;
    cfg.recorder = 250; // the ring retains every served window
    let mut session = ServingSession::start(cfg).expect("training succeeds");
    while session.step().expect("step") {}

    let snap = session.snapshot();
    let ring = session.flight_recorder().expect("recorder is on");
    let windows = ring.snapshot_windows();
    assert_eq!(windows.len(), 250, "the ring must retain the whole run");

    let mut resolved = 0usize;
    for e in snap.latency_exemplars.iter().chain(&snap.model_latency_exemplars).flatten() {
        let w = windows
            .iter()
            .find(|w| w.sample == e.sample)
            .unwrap_or_else(|| panic!("exemplar sample {} is not in the ring", e.sample));
        assert_eq!(e.shard, 0, "a single session stamps shard 0");
        assert_eq!(
            w.generation, e.generation,
            "exemplar at sample {} pins the wrong generation",
            e.sample
        );
        resolved += 1;
    }
    assert!(resolved >= 2, "a 250-window run must populate exemplars");

    // the model-latency store records the same nanosecond value the
    // flight recorder stamped for that window
    for e in snap.model_latency_exemplars.iter().flatten() {
        let w = windows.iter().find(|w| w.sample == e.sample).expect("resolved above");
        assert_eq!(
            w.model_latency_ns, e.value,
            "model-latency exemplar at sample {} diverged from the recorded stamp",
            e.sample
        );
    }
}

/// Ring wraparound: with a 16-deep flight recorder, an incident
/// captured deep into the stream holds exactly the 16 most recent
/// windows, in stream order, with consecutive sample indices ending at
/// the capture point — older windows were overwritten in place.
#[test]
fn flight_recorder_ring_wraps_and_keeps_the_trailing_windows() {
    let mut cfg = ServingConfig::quick(7);
    cfg.samples = 250;
    cfg.recorder = 16;
    let mut session = ServingSession::start(cfg).expect("training succeeds");
    while session.step().expect("step") {}

    assert!(session.incidents_total() >= 1, "the seeded burst must trip an alert");
    let ring = session.flight_recorder().expect("recorder is on");
    assert_eq!(ring.capacity(), 16);
    assert_eq!(ring.len(), 16, "a 250-sample stream must have filled the ring");

    let bundles = session.incidents();
    let bundle = bundles
        .iter()
        .find(|b| b.sample_index > 16)
        .expect("an incident fired past ring capacity");
    assert_eq!(bundle.windows.len(), 16, "the ring must cap the recorded history");
    for (i, w) in bundle.windows.iter().enumerate() {
        assert_eq!(
            w.sample,
            bundle.sample_index - 16 + i as u64,
            "window {i} is not the consecutive trailing sample"
        );
        assert_eq!(w.row.len(), bundle.windows[0].row.len(), "row width must be uniform");
    }
    assert_eq!(
        bundle.verdict_digest,
        hmd::recorder::verdict_digest(bundle.windows.iter().map(|w| w.verdict)),
        "bundle digest must fold from exactly the retained windows"
    );

    // an early incident (before the ring filled) records every window
    // served so far and nothing more
    if let Some(early) = bundles.iter().find(|b| b.sample_index <= 16) {
        assert_eq!(early.windows.len(), early.sample_index as usize);
    }
}
