//! End-to-end serving mode: stream seeded traffic through the trained
//! detector while scraping the live HTTP endpoints, and assert the SLO
//! choreography — healthy lull, alert-firing adversarial burst, healthy
//! recovery once the windows slide clean.
//!
//! Everything runs on stream time (10 ms per sample), so the breach and
//! the recovery are a pure function of the seed: no sleeps, no flakes.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use hmd::obs::validate_exposition;
use hmd::{ServingConfig, ServingSession};
use hmd_util::json::Json;

/// Minimal scrape client: one GET, returns (status, body).
fn get(addr: &SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    s.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

#[test]
fn serving_breach_and_recovery_end_to_end() {
    let cfg = ServingConfig::quick(7);
    let budget = cfg.samples;
    let burst = cfg.burst.expect("quick config bursts");
    let mut session = ServingSession::start(cfg).expect("training succeeds");
    let addr = session.serve_http("127.0.0.1:0").expect("bind ephemeral port");

    // Deep into the burst the flag-rate window is saturated with
    // injected adversarial rows.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let mid_burst = ((burst.start + burst.end) / 2.0 * budget as f64) as usize + 40;
    while session.outcome().processed < mid_burst {
        assert!(session.step().expect("step"), "budget exhausted early");
    }
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 503, "mid-burst healthz must fail: {body}");
    let (status, page) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&page).expect("well-formed exposition");
    for series in [
        "hmd_serving_detection_rate",
        "hmd_serving_adversarial_flag_rate",
        "hmd_serving_latency_ns_p50",
        "hmd_serving_latency_ns_p95",
        "hmd_serving_latency_ns_p99",
        "hmd_serving_samples_total",
        "hmd_serving_healthy 0",
        "hmd_serving_alert_firing",
    ] {
        assert!(page.contains(series), "missing {series} in:\n{page}");
    }

    // Run out the budget: the burst windows slide clean and every
    // critical alert resolves.
    while session.step().expect("step") {}
    let outcome = session.outcome();
    assert_eq!(outcome.processed, budget);
    assert_eq!(outcome.verdicts.iter().sum::<u64>(), budget as u64);
    assert!(outcome.healthy, "session must recover after the burst");
    assert!(
        outcome.alert_transitions >= 4,
        "expected fire+resolve edges, got {}",
        outcome.alert_transitions
    );
    assert!(outcome.drift_events >= 1, "burst must register integrity drift");

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "post-recovery healthz: {body}");
    let (status, page) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(page.contains("hmd_serving_healthy 1"), "healthy gauge must recover");

    let (status, body) = get(&addr, "/snapshot.json");
    assert_eq!(status, 200);
    Json::parse(&body).expect("snapshot must be valid JSON");

    let (status, _) = get(&addr, "/definitely-not-a-route");
    assert_eq!(status, 404);

    assert!(!session.quit_requested());
    let (status, _) = get(&addr, "/quit");
    assert_eq!(status, 200);
    assert!(session.quit_requested(), "/quit must reach the session");
    session.finish();
}
