//! End-to-end integration: the complete framework run on the quick
//! corpus must reproduce the paper's qualitative results.

use hmd::core::{Framework, FrameworkConfig, FrameworkReport};

fn run_once(seed: u64) -> FrameworkReport {
    let mut config = FrameworkConfig::quick(seed);
    config.corpus.benign_apps = 96;
    config.corpus.malware_apps = 96;
    Framework::new(config).run().expect("framework run")
}

#[test]
fn full_pipeline_reproduces_paper_shapes() {
    let report = run_once(5);

    // the paper's four features are the pipeline default
    assert_eq!(
        report.selected_features,
        vec![
            "LLC-load-misses".to_string(),
            "LLC-loads".to_string(),
            "cache-misses".to_string(),
            "cpu/cache-misses/".to_string()
        ]
    );

    // six models in all three scenarios
    for scenario in [&report.baseline, &report.attacked, &report.defended] {
        assert_eq!(scenario.len(), 6);
    }

    // LowProFool evades the imperceptibility evaluator (paper: 100%)
    assert!(
        report.attack_success_rate > 0.95,
        "attack success {}",
        report.attack_success_rate
    );

    // under attack every model's F1 collapses; adversarial training
    // recovers above the attacked level for every model
    for base in &report.baseline {
        let name = &base.model;
        let attacked = FrameworkReport::metrics_for(&report.attacked, name).unwrap();
        let defended = FrameworkReport::metrics_for(&report.defended, name).unwrap();
        assert!(
            attacked.f1 < base.metrics.f1,
            "{name}: attacked F1 {} !< baseline {}",
            attacked.f1,
            base.metrics.f1
        );
        assert!(
            defended.f1 > attacked.f1,
            "{name}: defended F1 {} !> attacked {}",
            defended.f1,
            attacked.f1
        );
        // attacked FNR skyrockets (malware passes as benign)
        assert!(
            attacked.fnr > base.metrics.fnr,
            "{name}: attacked FNR should exceed baseline"
        );
    }

    // predictor separates adversarial from clean rewards
    assert!(report.predictor.accuracy > 0.7, "predictor acc {}", report.predictor.accuracy);
    let adv_mean = segment_mean(&report.predictor.reward_trace, true);
    let clean_mean = segment_mean(&report.predictor.reward_trace, false);
    assert!(
        adv_mean > clean_mean + 20.0,
        "reward separation too small: {adv_mean} vs {clean_mean}"
    );

    // three controllers; Agent 3 (best detection) F1 at least matches the
    // cheap agents
    assert_eq!(report.controllers.len(), 3);
    let f1 = |i: usize| report.controllers[i].metrics.f1;
    assert!(f1(2) + 1e-9 >= f1(0).min(f1(1)), "Agent 3 should not be the worst detector");
    for c in &report.controllers {
        assert!(c.latency_ms > 0.0);
        assert!(c.size_bytes > 0);
    }
}

fn segment_mean(trace: &[(bool, f64)], adversarial: bool) -> f64 {
    let values: Vec<f64> = trace
        .iter()
        .filter(|(a, _)| *a == adversarial)
        .map(|(_, r)| *r)
        .collect();
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

#[test]
fn metrics_are_well_formed_probabilities() {
    let report = run_once(6);
    for scenario in [&report.baseline, &report.attacked, &report.defended] {
        for row in scenario {
            let m = &row.metrics;
            for v in [m.accuracy, m.f1, m.auc, m.tpr, m.fpr, m.fnr, m.tnr, m.precision, m.recall]
            {
                assert!((0.0..=1.0).contains(&v), "{}: metric {v} out of range", row.model);
            }
            // complementary rates
            assert!((m.tpr + m.fnr - 1.0).abs() < 1e-9 || m.tpr + m.fnr == 0.0);
            assert!((m.fpr + m.tnr - 1.0).abs() < 1e-9 || m.fpr + m.tnr == 0.0);
        }
    }
}
