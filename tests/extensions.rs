//! Integration coverage for the extension components: alternative
//! defenses, the boundary attack, CSV persistence, and execution traces.

use hmd::adversarial::{
    Attack, BoundaryAttack, BoundaryAttackConfig, LowProFool, RandomizedEnsemble,
};
use hmd::core::{Framework, FrameworkConfig};
use hmd::ml::{classical_models, evaluate, Classifier, RandomForest};
use hmd::sim::{ExecutionTrace, HpcEvent, MachineConfig, WorkloadClass};
use hmd::tabular::{read_csv, write_csv, Class};

#[test]
fn corpus_survives_csv_roundtrip() {
    let fw = Framework::new(FrameworkConfig::quick(51));
    let bundle = fw.prepare_data().expect("prepare");
    let mut buf = Vec::new();
    write_csv(&bundle.train, &mut buf).expect("write");
    let restored = read_csv(buf.as_slice()).expect("read");
    assert_eq!(restored.len(), bundle.train.len());
    assert_eq!(restored.feature_names(), bundle.train.feature_names());
    // numeric fidelity: rows match to full precision
    for i in 0..restored.len() {
        assert_eq!(restored.row(i).unwrap(), bundle.train.row(i).unwrap());
        assert_eq!(restored.label(i).unwrap(), bundle.train.label(i).unwrap());
    }
}

#[test]
fn randomized_ensemble_softens_but_does_not_stop_lowprofool() {
    let fw = Framework::new(FrameworkConfig::quick(52));
    let bundle = fw.prepare_data().expect("prepare");
    let targets = bundle.train.binary_targets(Class::is_attack);
    let mut pool = classical_models();
    for m in &mut pool {
        m.fit(&bundle.train, &targets).expect("fit");
    }
    let ensemble = RandomizedEnsemble::new(pool, 0xABCD).expect("ensemble");

    let attack = LowProFool::fit(&bundle.train).expect("attack");
    let malware = bundle.test.filter(Class::is_attack);
    let result = attack.generate(&malware, 53).expect("generate");

    // the randomized defense still misses most disguised samples
    // (transfer dominates) — the paper's motivation for going further
    let mut missed = 0usize;
    for (row, _) in &result.adversarial {
        if !ensemble.predict_row(row).expect("predict") {
            missed += 1;
        }
    }
    assert!(
        missed * 2 > result.adversarial.len(),
        "randomization alone should not stop the attack ({missed}/{})",
        result.adversarial.len()
    );
}

#[test]
fn boundary_attack_works_on_the_simulated_corpus() {
    let fw = Framework::new(FrameworkConfig::quick(54));
    let bundle = fw.prepare_data().expect("prepare");
    let targets = bundle.train.binary_targets(Class::is_attack);
    let mut rf = RandomForest::new();
    rf.fit(&bundle.train, &targets).expect("fit");
    let clean = evaluate(&rf, &bundle.test, &bundle.test.binary_targets(Class::is_attack))
        .expect("eval");
    assert!(clean.f1 > 0.6, "sanity: baseline F1 {}", clean.f1);

    let attack =
        BoundaryAttack::new(&rf, &bundle.train, BoundaryAttackConfig::default()).expect("attack");
    let malware = bundle.test.filter(Class::is_attack);
    let subset = malware.subset(&(0..malware.len().min(20)).collect::<Vec<_>>()).expect("subset");
    let result = attack.generate(&subset, 55).expect("generate");
    assert!(
        result.success_rate() > 0.7,
        "boundary success {}",
        result.success_rate()
    );
}

#[test]
fn execution_traces_reflect_family_behaviour() {
    let cfg = MachineConfig { slice_instructions: 4_000, ..MachineConfig::default() };
    let ransomware = ExecutionTrace::record(WorkloadClass::Ransomware, cfg, 120, 10.0, 7);
    let editor = ExecutionTrace::record(WorkloadClass::TextEditor, cfg, 120, 10.0, 7);
    assert!(
        ransomware.mean(HpcEvent::LlcLoadMisses) > 3.0 * editor.mean(HpcEvent::LlcLoadMisses),
        "ransomware {} vs editor {}",
        ransomware.mean(HpcEvent::LlcLoadMisses),
        editor.mean(HpcEvent::LlcLoadMisses)
    );
    // the trace walks through the family's phases
    assert!(ransomware.phases_observed().len() >= 2);
}

#[test]
fn prefetcher_is_configurable_through_the_corpus_path() {
    use hmd::sim::{build_corpus, CorpusConfig};
    let mut with = CorpusConfig::quick(56);
    with.machine.next_line_prefetch = true;
    let mut without = CorpusConfig::quick(56);
    without.machine.next_line_prefetch = false;
    let a = build_corpus(&with);
    let b = build_corpus(&without);
    // same seed, different micro-architecture ⇒ different counters
    assert_ne!(a.dataset, b.dataset);
    assert_eq!(a.dataset.len(), b.dataset.len());
}
