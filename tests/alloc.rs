//! Allocation-freedom of the serving steady state, proven under a
//! counting global allocator: once a session is warmed up (arena built,
//! windows settled, alert engine past its initial transitions, replay
//! ring standing in for live traffic synthesis), classifying a window —
//! monitoring, alert evaluation, integrity checks, the flight recorder
//! (on at its default 64-window depth, re-capturing every window's row,
//! probabilities and critic score into its preallocated ring), the
//! multi-resolution metrics history (flushing a point every
//! `FINE_EVERY` windows) and the tail-sampling trace promoter included
//! — must perform **zero** heap allocations, on both the scalar and the
//! batched path.
//!
//! The counting allocator is process-global, so this integration test
//! lives in its own binary: no sibling test's allocations can bleed
//! into the measured deltas, and the worker-thread override pins all
//! work to the measuring thread.

use hmd_util::alloc::CountingAllocator;
use hmd_util::par;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Builds a replay-ring session around shared artifacts: uniform
/// traffic (no burst), arena path, `batch` samples per detector call.
fn replay_session(
    base: &hmd::ServingConfig,
    artifacts: &std::sync::Arc<hmd::core::ServingArtifacts>,
    batch: usize,
) -> hmd::ServingSession {
    let mut cfg = base.clone();
    cfg.samples = 900;
    cfg.replay = 128;
    cfg.burst = None;
    cfg.batch = batch;
    cfg.calibration_samples = 0; // baseline calibrated by the training session
    hmd::ServingSession::with_artifacts(cfg, artifacts.clone()).expect("assemble session")
}

#[test]
fn serving_steady_state_allocates_nothing() {
    // single worker: the delta below must attribute every allocation to
    // the serving loop, and quick-config matmuls stay below the
    // parallel substrate's spawn threshold anyway
    par::set_thread_override(Some(1));
    let mut base = hmd::ServingConfig::quick(19);
    let trainer = hmd::ServingSession::start(base.clone()).expect("train");
    let artifacts = trainer.artifacts_handle();
    // reuse the calibration-derived SLO thresholds (as fleet shards
    // do): they sit a margin away from this deployment's live rates,
    // so the alert engine stays edge-free — stock thresholds can
    // chatter against replay traffic, and every edge allocates
    base.rules = trainer.slo_rules().to_vec();
    drop(trainer);

    // scalar (batch 1) and batched (batch 8) paths measured separately
    for batch in [1usize, 8] {
        let mut session = replay_session(&base, &artifacts, batch);
        // warm up: fill the sliding windows twice over and let the
        // alert engine cross its initial fire/resolve edges
        while session.outcome().processed < 500 {
            assert!(session.step_batch().expect("warmup step") > 0, "budget spent in warmup");
        }
        let processed_before = session.outcome().processed;
        let allocs_before = ALLOC.allocations();
        let bytes_before = ALLOC.bytes_allocated();
        while session.step_batch().expect("steady-state step") > 0 {}
        let allocs = ALLOC.allocations() - allocs_before;
        let bytes = ALLOC.bytes_allocated() - bytes_before;
        let windows = session.outcome().processed - processed_before;
        assert!(windows >= 300, "measured too few windows: {windows}");
        // the flight recorder was live (and full) for every measured
        // window: recording is part of the zero-allocation contract
        let ring = session.flight_recorder().expect("recorder defaults on");
        assert_eq!(ring.len(), ring.capacity(), "ring must be full after warmup");
        // the continuous-observability surface was live the whole time:
        // history points flushed every FINE_EVERY windows and the trace
        // sampler promoted flagged windows (the replay traffic carries
        // the background adversarial fraction) — all inside the same
        // zero-allocation budget, proving both rings are preallocated
        let history = session.history_snapshot();
        assert!(!history.fine.is_empty(), "steady state must flush fine history points");
        let traces = session.trace_snapshot();
        assert!(
            !traces.flagged.is_empty(),
            "replay traffic must promote flagged stage traces"
        );
        assert_eq!(
            allocs, 0,
            "batch {batch}: {allocs} allocations ({bytes} bytes) across {windows} \
             steady-state windows — the hot path must not touch the heap"
        );
    }

    // Retraining on: the rounds themselves allocate (drain, refit,
    // re-hash — all while the shard is parked at the boundary), but the
    // steady state *between* rounds must stay at zero allocations per
    // window even though the shard now serves hot-swapped generation-1
    // artifacts through a re-warmed arena. This phase shares the test
    // fn because the counting allocator is process-global: a sibling
    // test's allocations would bleed into the deltas.
    {
        use hmd::obs::{Severity, SloKind, SloRule};
        let mut cfg = base.clone();
        // thresholds no live rate can cross: post-swap windowed rates
        // shift with the refreshed models, and every alert edge
        // allocates a transition record
        cfg.rules = vec![
            SloRule {
                name: "quiet_latency",
                kind: SloKind::LatencyP95CeilingMs(1e9),
                severity: Severity::Warning,
                min_samples: 1,
            },
            SloRule {
                name: "quiet_detection",
                kind: SloKind::DetectionRateFloor(0.01),
                severity: Severity::Critical,
                min_samples: 1,
            },
            SloRule {
                name: "quiet_flags",
                kind: SloKind::FlagRateCeiling(0.99),
                severity: Severity::Critical,
                min_samples: 1,
            },
            SloRule {
                name: "quiet_drift",
                kind: SloKind::DriftCeiling(u64::MAX),
                severity: Severity::Critical,
                min_samples: 1,
            },
        ];
        cfg.retrain_every = 400; // boundaries at 400 and 800 of 900
        let mut session = replay_session(&cfg, &artifacts, 8);
        // warm past the first boundary: the round runs (and allocates)
        // while the shard waits, the shard swaps + re-warms its arena,
        // then the windows refill on generation-1 verdicts
        while session.outcome().processed < 520 {
            assert!(session.step_batch().expect("warmup step") > 0, "budget spent in warmup");
        }
        assert!(session.model_generation() >= 1, "first boundary must promote a generation");
        let allocs_before = ALLOC.allocations();
        let bytes_before = ALLOC.bytes_allocated();
        // measure strictly between boundaries: stop short of 800 so the
        // second round's (legitimate) allocations stay out of the delta
        while session.outcome().processed < 760 {
            assert!(session.step_batch().expect("steady-state step") > 0, "budget spent early");
        }
        let allocs = ALLOC.allocations() - allocs_before;
        let bytes = ALLOC.bytes_allocated() - bytes_before;
        let windows = session.outcome().processed - 520;
        assert!(windows >= 200, "measured too few post-swap windows: {windows}");
        assert_eq!(
            allocs, 0,
            "{allocs} allocations ({bytes} bytes) across {windows} post-swap windows — \
             serving a hot-swapped generation must stay allocation-free between rounds"
        );
    }
    par::set_thread_override(None);
}
