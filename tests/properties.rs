//! Property-based tests over cross-crate invariants.

use hmd::adversarial::{Attack, LowProFool};
use hmd::ml::{BinaryMetrics, Classifier, LogisticRegression};
use hmd::nn::{Dense, Loss, Optimizer, Sequential, Tensor};
use hmd::tabular::{Class, Dataset, MinMaxClipper, StandardScaler};
use hmd_util::proptest_lite::collection;
use hmd_util::rng::prelude::*;
use hmd_util::{prop_assert, prop_assert_eq, prop_tests};

/// Builds an overlapping two-blob dataset from arbitrary-but-sane
/// geometry parameters.
fn blobs(n: usize, gap: f64, spread: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
    for _ in 0..n {
        let benign = [
            rng.random_range(-spread..spread * 0.5),
            rng.random_range(-spread..spread * 0.5),
        ];
        let attack = [
            gap + rng.random_range(-spread * 0.5..spread),
            gap + rng.random_range(-spread * 0.5..spread),
        ];
        d.push(&benign, Class::Benign).unwrap();
        d.push(&attack, Class::Malware).unwrap();
    }
    d
}

prop_tests! {
    cases = 12;

    /// LowProFool output always stays inside the malware clip box and its
    /// success flag always agrees with the evaluator's verdict.
    fn lowprofool_respects_clip_box(
        gap in 0.3f64..2.0,
        spread in 0.3f64..1.5,
        seed in 0u64..1000,
    ) {
        let data = blobs(60, gap, spread, seed);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let clipper = MinMaxClipper::fit(&malware).unwrap();
        let result = attack.generate(&malware, seed).unwrap();
        for (i, outcome) in result.outcomes.iter().enumerate() {
            for (f, &v) in outcome.features.iter().enumerate() {
                prop_assert!(v >= clipper.mins()[f] - 1e-9, "row {i} feature {f} below min");
                prop_assert!(v <= clipper.maxs()[f] + 1e-9, "row {i} feature {f} above max");
            }
            let p = attack.evaluator().predict_proba_row(&outcome.features).unwrap();
            prop_assert_eq!(outcome.evades, p < 0.5, "evades flag disagrees with evaluator");
        }
    }

    /// Standard scaling is invertible on arbitrary datasets.
    fn scaler_roundtrips(
        rows in collection::vec(collection::vec(-1e6f64..1e6, 3), 2..40),
    ) {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let label = if i % 2 == 0 { Class::Benign } else { Class::Malware };
            d.push(row, label).unwrap();
        }
        let scaler = StandardScaler::fit(&d).unwrap();
        for row in &rows {
            let mut x = row.clone();
            scaler.transform_row(&mut x).unwrap();
            scaler.inverse_transform_row(&mut x).unwrap();
            for (orig, rec) in row.iter().zip(&x) {
                prop_assert!((orig - rec).abs() <= 1e-6 * (1.0 + orig.abs()));
            }
        }
    }

    /// Classifier probabilities are probabilities, on arbitrary inputs.
    fn probabilities_stay_in_unit_interval(
        seed in 0u64..500,
        probe in collection::vec(-1e3f64..1e3, 2),
    ) {
        let data = blobs(40, 1.0, 0.8, seed);
        let targets = data.binary_targets(Class::is_attack);
        let mut lr = LogisticRegression::new();
        lr.fit(&data, &targets).unwrap();
        let p = lr.predict_proba_row(&probe).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// BinaryMetrics stays consistent for arbitrary score/truth vectors.
    fn metric_identities_hold(
        scores in collection::vec(0.0f64..1.0, 4..60),
        flip in 0usize..7,
    ) {
        let truth: Vec<bool> = scores.iter().enumerate()
            .map(|(i, &s)| (s > 0.5) ^ (i % 7 == flip)).collect();
        let m = BinaryMetrics::from_scores(&scores, &truth);
        prop_assert!((0.0..=1.0).contains(&m.accuracy));
        prop_assert!((0.0..=1.0).contains(&m.auc));
        // complementarity (when the denominator class exists)
        if truth.iter().any(|&t| t) {
            prop_assert!((m.tpr + m.fnr - 1.0).abs() < 1e-9);
        }
        if truth.iter().any(|&t| !t) {
            prop_assert!((m.fpr + m.tnr - 1.0).abs() < 1e-9);
        }
        prop_assert!((m.recall - m.tpr).abs() < 1e-12);
    }

    /// The cache-blocked (and possibly parallel) matmul kernel agrees
    /// with the textbook triple loop on random shapes, and the fused
    /// transpose kernels agree with explicit transpose copies.
    fn blocked_matmul_matches_naive(
        rows in 1usize..70,
        inner in 1usize..200,
        cols in 1usize..50,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(rows, inner, |_, _| rng.random_range(-1.0..1.0));
        let b = Tensor::from_fn(inner, cols, |_, _| rng.random_range(-1.0..1.0));
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                "matmul[{i}] blocked {x} vs naive {y}"
            );
        }
        // fused A·Bᵀ and Aᵀ·B kill the transpose copies in backprop;
        // they must match the copy-then-multiply formulation exactly
        let bt = b.transposed();
        let fused = a.matmul_transposed(&bt);
        for (i, (x, y)) in fused.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                "matmul_transposed[{i}] {x} vs naive {y}"
            );
        }
        let at = a.transposed();
        let fused_t = at.tr_matmul(&b);
        for (i, (x, y)) in fused_t.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                "tr_matmul[{i}] {x} vs naive {y}"
            );
        }
    }

    /// One gradient step on a fixed batch must not increase that batch's
    /// loss (for a sufficiently small learning rate).
    fn gradient_step_decreases_batch_loss(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new()
            .with(Dense::he(3, 8, &mut rng))
            .with(hmd::nn::Relu::new())
            .with(Dense::xavier(8, 1, &mut rng));
        let x = Tensor::from_fn(16, 3, |_, _| rng.random_range(-1.0..1.0));
        let y = Tensor::from_fn(16, 1, |r, _| f64::from(r % 2 == 0));
        let mut opt = Optimizer::sgd(1e-3);
        let before = {
            let out = net.infer(&x);
            Loss::BinaryCrossEntropy.compute(&out, &y).0
        };
        net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
        let after = {
            let out = net.infer(&x);
            Loss::BinaryCrossEntropy.compute(&out, &y).0
        };
        prop_assert!(after <= before + 1e-9, "loss rose {before} -> {after}");
    }
}
