//! Cross-crate substrate integration: simulator → tabular → ML, and the
//! integrity layer guarding fitted models.

use hmd::integrity::{MetricMonitor, ModelRegistry};
use hmd::ml::{evaluate, Classifier, Mlp, RandomForest};
use hmd::sim::{build_corpus, CorpusConfig, HpcEvent, IsolationMode, WorkloadClass};
use hmd::tabular::{rank_features_by_mi, split::stratified_split, Class, StandardScaler};
use hmd_util::rng::prelude::*;

#[test]
fn corpus_feeds_detectors_above_chance() {
    let corpus = build_corpus(&CorpusConfig::quick(31));
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = stratified_split(&corpus.dataset, 0.25, &mut rng).unwrap();
    let scaler = StandardScaler::fit(&train).unwrap();
    let train = scaler.transform(&train).unwrap();
    let test = scaler.transform(&test).unwrap();
    let train_targets = train.binary_targets(Class::is_attack);
    let test_targets = test.binary_targets(Class::is_attack);
    let mut rf = RandomForest::new();
    rf.fit(&train, &train_targets).unwrap();
    let m = evaluate(&rf, &test, &test_targets).unwrap();
    assert!(m.auc > 0.75, "RF AUC on quick corpus {}", m.auc);
}

#[test]
fn mi_ranking_prefers_microarchitectural_events_over_constants() {
    let corpus = build_corpus(&CorpusConfig::quick(32));
    let ranked = rank_features_by_mi(&corpus.dataset, 24).unwrap();
    // the top-ranked feature must be informative; the bottom should be
    // near-constant events (e.g. major faults on a quick corpus)
    assert!(ranked[0].1 > ranked[ranked.len() - 1].1);
    assert!(ranked[0].1 > 0.05, "top MI {}", ranked[0].1);
}

#[test]
fn vm_isolation_degrades_detection_quality() {
    // The LXC-vs-VirtualBox argument of §2.1: emulated counters carry
    // bias+jitter and should not beat clean LXC counters.
    let clean = build_corpus(&CorpusConfig::quick(33));
    let noisy = build_corpus(&CorpusConfig {
        isolation: IsolationMode::VmEmulated { bias: 0.3, jitter: 0.6 },
        ..CorpusConfig::quick(33)
    });
    let auc_of = |corpus: &hmd::sim::Corpus| {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = stratified_split(&corpus.dataset, 0.25, &mut rng).unwrap();
        let train_targets = train.binary_targets(Class::is_attack);
        let test_targets = test.binary_targets(Class::is_attack);
        let mut rf = RandomForest::new();
        rf.fit(&train, &train_targets).unwrap();
        evaluate(&rf, &test, &test_targets).unwrap().auc
    };
    let clean_auc = auc_of(&clean);
    let noisy_auc = auc_of(&noisy);
    assert!(
        clean_auc >= noisy_auc - 0.02,
        "VM emulation should not improve detection: clean {clean_auc} vs vm {noisy_auc}"
    );
}

#[test]
fn corpus_contains_every_family_with_plausible_counters() {
    let corpus = build_corpus(&CorpusConfig::quick(34));
    for class in WorkloadClass::BENIGN.into_iter().chain(WorkloadClass::MALWARE) {
        assert!(corpus.row_classes.contains(&class), "{class} missing");
    }
    let instr_idx = HpcEvent::Instructions.index();
    let cyc_idx = HpcEvent::Cycles.index();
    for i in 0..corpus.dataset.len() {
        let row = corpus.dataset.row(i).unwrap();
        assert!(row[instr_idx] > 0.0, "row {i} has zero instructions");
        assert!(row[cyc_idx] > 0.0, "row {i} has zero cycles");
        // IPC plausibility on a 4-wide core
        let ipc = row[instr_idx] / row[cyc_idx];
        assert!(ipc < 4.0, "row {i} has impossible IPC {ipc}");
    }
}

#[test]
fn integrity_layer_guards_fitted_models() {
    let corpus = build_corpus(&CorpusConfig::quick(35));
    let targets = corpus.dataset.binary_targets(Class::is_attack);
    let mut mlp = Mlp::new();
    mlp.fit(&corpus.dataset, &targets).unwrap();

    let registry = ModelRegistry::new();
    let bytes = mlp.params_bytes().unwrap();
    registry.register("MLP", &bytes, 1_720_000_000);
    assert!(registry.verify("MLP", &bytes).is_verified());

    // tamper one weight byte → detected
    let mut tampered = bytes.clone();
    tampered[0] ^= 0xFF;
    assert!(!registry.verify("MLP", &tampered).is_verified());

    // metric drift detection
    let monitor = MetricMonitor::new(0.05);
    let baseline = evaluate(&mlp, &corpus.dataset, &targets).unwrap();
    monitor.record_baseline("MLP", baseline);
    assert!(monitor.assess("MLP", &baseline).is_stable());
    let degraded = hmd::ml::BinaryMetrics { accuracy: baseline.accuracy - 0.3, ..baseline };
    assert!(!monitor.assess("MLP", &degraded).is_stable());
}
