//! Reproducibility: every experiment must regenerate identically from
//! its seed, across the whole stack.

use hmd::adversarial::{Attack, LowProFool};
use hmd::core::{Framework, FrameworkConfig};
use hmd::sim::{build_corpus, CorpusConfig};
use hmd::tabular::Class;

#[test]
fn corpus_is_seed_deterministic() {
    let a = build_corpus(&CorpusConfig::quick(77));
    let b = build_corpus(&CorpusConfig::quick(77));
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.row_classes, b.row_classes);
    let c = build_corpus(&CorpusConfig::quick(78));
    assert_ne!(a.dataset, c.dataset);
}

#[test]
fn framework_report_is_seed_deterministic() {
    let run = |seed| {
        let mut config = FrameworkConfig::quick(seed);
        config.corpus.benign_apps = 64;
        config.corpus.malware_apps = 64;
        config.predictor.episodes = 1500;
        Framework::new(config).run().expect("run")
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.attacked, b.attacked);
    assert_eq!(a.defended, b.defended);
    assert_eq!(a.predictor, b.predictor);
    assert_eq!(a.attack_success_rate, b.attack_success_rate);

    let c = run(4);
    assert_ne!(a.baseline, c.baseline);
}

#[test]
fn attack_generation_is_deterministic() {
    let fw = Framework::new(FrameworkConfig::quick(9));
    let bundle = fw.prepare_data().expect("prepare");
    let attack = LowProFool::fit(&bundle.train).expect("fit");
    let malware = bundle.test.filter(Class::is_attack);
    let a = attack.generate(&malware, 42).expect("generate");
    let b = attack.generate(&malware, 42).expect("generate");
    assert_eq!(a.adversarial, b.adversarial);
    assert_eq!(a.outcomes, b.outcomes);
}
