//! Reproducibility: every experiment must regenerate identically from
//! its seed, across the whole stack.

use hmd::adversarial::{Attack, LowProFool};
use hmd::core::{Framework, FrameworkConfig};
use hmd::sim::{build_corpus, CorpusConfig};
use hmd::tabular::Class;
use hmd_util::json::{Json, ToJson};

#[test]
fn corpus_is_seed_deterministic() {
    let a = build_corpus(&CorpusConfig::quick(77));
    let b = build_corpus(&CorpusConfig::quick(77));
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.row_classes, b.row_classes);
    let c = build_corpus(&CorpusConfig::quick(78));
    assert_ne!(a.dataset, c.dataset);
}

#[test]
fn framework_report_is_seed_deterministic() {
    let run = |seed| {
        let mut config = FrameworkConfig::quick(seed);
        config.corpus.benign_apps = 64;
        config.corpus.malware_apps = 64;
        config.predictor.episodes = 1500;
        Framework::new(config).run().expect("run")
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.attacked, b.attacked);
    assert_eq!(a.defended, b.defended);
    assert_eq!(a.predictor, b.predictor);
    assert_eq!(a.attack_success_rate, b.attack_success_rate);

    let c = run(4);
    assert_ne!(a.baseline, c.baseline);

    // Byte-level reproducibility: the serialized reports must be
    // identical, not merely PartialEq-equal — object fields keep
    // insertion order and floats format deterministically, so two
    // same-seed runs emit the same bytes. The single exception is
    // `latency_ms`, which is measured wall-clock time of the deployed
    // models (real profiling, not simulation), so it is zeroed before
    // comparing.
    let a_bytes = scrub_measured_latency(&a.to_json().to_string());
    let b_bytes = scrub_measured_latency(&b.to_json().to_string());
    assert_eq!(a_bytes, b_bytes, "same-seed reports serialized differently");
    assert!(!a_bytes.is_empty());
    // And the bytes are well-formed JSON that survives a parse.
    let reparsed = Json::parse(&a_bytes).expect("report serializes to valid JSON");
    assert_eq!(reparsed.to_string(), a_bytes, "serialize → parse → serialize is not a fixpoint");
}

/// Replaces every measured `latency_ms` value with zero, leaving all
/// seed-derived content intact.
fn scrub_measured_latency(text: &str) -> String {
    fn scrub(value: &mut Json) {
        match value {
            Json::Obj(fields) => {
                for (key, v) in fields {
                    if key == "latency_ms" {
                        *v = Json::Float(0.0);
                    } else {
                        scrub(v);
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(scrub),
            _ => {}
        }
    }
    let mut doc = Json::parse(text).expect("report is valid JSON");
    scrub(&mut doc);
    doc.to_string()
}

#[test]
fn attack_generation_is_deterministic() {
    let fw = Framework::new(FrameworkConfig::quick(9));
    let bundle = fw.prepare_data().expect("prepare");
    let attack = LowProFool::fit(&bundle.train).expect("fit");
    let malware = bundle.test.filter(Class::is_attack);
    let a = attack.generate(&malware, 42).expect("generate");
    let b = attack.generate(&malware, 42).expect("generate");
    assert_eq!(a.adversarial, b.adversarial);
    assert_eq!(a.outcomes, b.outcomes);
}
