//! Reproducibility: every experiment must regenerate identically from
//! its seed, across the whole stack.

use hmd::adversarial::{Attack, LowProFool};
use hmd::core::{Framework, FrameworkConfig};
use hmd::ml::{Classifier, RandomForest, RandomForestConfig};
use hmd::sim::{build_corpus, CorpusConfig};
use hmd::tabular::Class;
use hmd_util::json::{Json, ToJson};
use hmd_util::par;

#[test]
fn corpus_is_seed_deterministic() {
    let a = build_corpus(&CorpusConfig::quick(77));
    let b = build_corpus(&CorpusConfig::quick(77));
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.row_classes, b.row_classes);
    let c = build_corpus(&CorpusConfig::quick(78));
    assert_ne!(a.dataset, c.dataset);
}

#[test]
fn framework_report_is_seed_deterministic() {
    let run = |seed| {
        let mut config = FrameworkConfig::quick(seed);
        config.corpus.benign_apps = 64;
        config.corpus.malware_apps = 64;
        config.predictor.episodes = 1500;
        Framework::new(config).run().expect("run")
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.attacked, b.attacked);
    assert_eq!(a.defended, b.defended);
    assert_eq!(a.predictor, b.predictor);
    assert_eq!(a.attack_success_rate, b.attack_success_rate);

    let c = run(4);
    assert_ne!(a.baseline, c.baseline);

    // Byte-level reproducibility: the serialized reports must be
    // identical, not merely PartialEq-equal — object fields keep
    // insertion order and floats format deterministically, so two
    // same-seed runs emit the same bytes. The single exception is
    // `latency_ms`, which is measured wall-clock time of the deployed
    // models (real profiling, not simulation), so it is zeroed before
    // comparing.
    let a_bytes = scrub_measured_latency(&a.to_json().to_string());
    let b_bytes = scrub_measured_latency(&b.to_json().to_string());
    assert_eq!(a_bytes, b_bytes, "same-seed reports serialized differently");
    assert!(!a_bytes.is_empty());
    // And the bytes are well-formed JSON that survives a parse.
    let reparsed = Json::parse(&a_bytes).expect("report serializes to valid JSON");
    assert_eq!(reparsed.to_string(), a_bytes, "serialize → parse → serialize is not a fixpoint");
}

/// Replaces every measured `latency_ms` value with zero, leaving all
/// seed-derived content intact.
fn scrub_measured_latency(text: &str) -> String {
    fn scrub(value: &mut Json) {
        match value {
            Json::Obj(fields) => {
                for (key, v) in fields {
                    if key == "latency_ms" {
                        *v = Json::Float(0.0);
                    } else {
                        scrub(v);
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(scrub),
            _ => {}
        }
    }
    let mut doc = Json::parse(text).expect("report is valid JSON");
    scrub(&mut doc);
    doc.to_string()
}

/// Same-seed outputs must be byte-identical regardless of worker-thread
/// count: the parallel substrate (`hmd_util::par`) only changes *where*
/// each independent item is computed, never *what* is computed or in
/// which order results concatenate and reduce.
///
/// The thread override is process-global, but that is harmless here:
/// every sibling test's output is thread-count-invariant by the very
/// contract this test enforces.
#[test]
fn pipeline_is_thread_count_invariant() {
    let run_all = || {
        // corpus generation (threads = 0 defers to the override)
        let corpus = build_corpus(&CorpusConfig::quick(55));
        // forest fit + batch predict
        let targets = corpus.dataset.binary_targets(Class::is_attack);
        let mut forest = RandomForest::with_config(RandomForestConfig {
            n_trees: 8,
            ..RandomForestConfig::default()
        });
        forest.fit(&corpus.dataset, &targets).expect("fit");
        let probs = forest.predict_proba(&corpus.dataset).expect("predict");
        // LowProFool attack generation, serialized to bytes
        let attack = LowProFool::fit(&corpus.dataset).expect("fit attack");
        let malware = corpus.dataset.filter(Class::is_attack);
        let report = attack.generate(&malware, 99).expect("generate").to_json().to_string();
        (corpus.dataset, probs, report)
    };

    par::set_thread_override(Some(1));
    let (data_1, probs_1, report_1) = run_all();
    par::set_thread_override(Some(4));
    let (data_4, probs_4, report_4) = run_all();
    par::set_thread_override(None);

    assert_eq!(data_1, data_4, "corpus differs across thread counts");
    // bitwise, not approximate: accumulation order is part of the contract
    assert_eq!(probs_1, probs_4, "forest probabilities differ across thread counts");
    assert_eq!(report_1, report_4, "attack report bytes differ across thread counts");
}

/// Telemetry's determinism contract: it observes, it never perturbs.
/// The same-seed report must serialize to identical bytes (measured
/// latencies scrubbed, as above) with tracing forced off and forced on.
#[test]
fn tracing_does_not_perturb_the_report() {
    let run = || {
        let config = FrameworkConfig::quick(21);
        Framework::new(config).run().expect("run").to_json().to_string()
    };
    hmd::telemetry::set_enabled_override(Some(false));
    let untraced = scrub_measured_latency(&run());
    hmd::telemetry::set_enabled_override(Some(true));
    let traced = scrub_measured_latency(&run());
    // tracing actually happened in the second run
    let recorded = hmd::telemetry::span::snapshot();
    hmd::telemetry::set_enabled_override(None);
    hmd::telemetry::reset();
    assert!(recorded.iter().any(|s| s.name == "framework.run"), "no spans recorded");
    assert_eq!(untraced, traced, "tracing changed the pipeline's output");
}

#[test]
fn attack_generation_is_deterministic() {
    let fw = Framework::new(FrameworkConfig::quick(9));
    let bundle = fw.prepare_data().expect("prepare");
    let attack = LowProFool::fit(&bundle.train).expect("fit");
    let malware = bundle.test.filter(Class::is_attack);
    let a = attack.generate(&malware, 42).expect("generate");
    let b = attack.generate(&malware, 42).expect("generate");
    assert_eq!(a.adversarial, b.adversarial);
    assert_eq!(a.outcomes, b.outcomes);
}

/// Serving monitoring is strictly observational: the verdict stream
/// (digest + counts) is identical with the monitor recording or fully
/// disabled. BestDetection routing never reads measured latency, so the
/// whole session is a pure function of the seed.
#[test]
fn serving_monitoring_does_not_change_verdicts() {
    let run = |monitoring: bool| {
        let mut cfg = hmd::ServingConfig::quick(11);
        cfg.samples = 250; // lull + burst onset is enough to pin it
        cfg.monitoring = monitoring;
        let mut session = hmd::ServingSession::start(cfg).expect("train");
        while session.step().expect("step") {}
        session.outcome()
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.digest, off.digest, "monitoring perturbed the verdict stream");
    assert_eq!(on.verdicts, off.verdicts);
    assert_eq!(on.processed, off.processed);
    // with recording disabled nothing ever evaluates, so no transitions
    assert_eq!(off.alert_transitions, 0);
}

/// The batched predict path is bit-identical to the scalar path, and
/// the arena-backed (allocation-free) paths are bit-identical to the
/// legacy allocating paths: the blocked matmul's per-output-element
/// accumulation order is row-count-invariant and the arena kernels
/// replay the exact float operation order, so neither grouping samples
/// into batches nor routing through preallocated buffers (at any worker
/// thread count) may move a single verdict. The FNV digest over the
/// verdict stream pins the whole sequence, not just the counts.
#[test]
fn serving_batch_size_thread_count_and_arena_are_verdict_invariant() {
    // train once, share the artifacts across every configuration
    let base = {
        let mut cfg = hmd::ServingConfig::quick(13);
        cfg.samples = 250;
        cfg
    };
    let artifacts = hmd::ServingSession::start(base.clone()).expect("train").artifacts_handle();

    let run = |batch: usize, arena: bool| {
        let mut cfg = base.clone();
        cfg.batch = batch;
        cfg.arena = arena;
        // the baseline was calibrated by the training session above;
        // recalibrating per run would only repeat the same work
        cfg.calibration_samples = 0;
        let mut session =
            hmd::ServingSession::with_artifacts(cfg, artifacts.clone()).expect("assemble");
        session.run_to_completion().expect("run")
    };

    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        par::set_thread_override(Some(threads));
        for batch in [1usize, 7, 64] {
            for arena in [true, false] {
                outcomes.push((threads, batch, arena, run(batch, arena)));
            }
        }
    }
    par::set_thread_override(None);

    let (_, _, _, reference) = &outcomes[0];
    assert_eq!(reference.processed, 250);
    for (threads, batch, arena, outcome) in &outcomes {
        assert_eq!(
            outcome.digest, reference.digest,
            "digest moved at batch {batch}, {threads} thread(s), arena={arena}"
        );
        assert_eq!(outcome.verdicts, reference.verdicts);
        assert_eq!(outcome.drift_events, reference.drift_events);
        assert_eq!(outcome.alert_transitions, reference.alert_transitions);
    }
}

/// The arms-race loop is a pure function of the seed: with
/// `retrain_every` on, the swap schedule, the post-swap verdict stream
/// and the hub's promotion statistics are byte-identical across reruns,
/// at any batch size, thread count, and arena mode. Batches never
/// straddle a retraining boundary, every round drains the quarantine in
/// a canonical order, and the controller is cloned (never re-profiled),
/// so nothing wall-clock leaks into the digest.
#[test]
fn serving_retraining_schedule_and_digests_are_seed_deterministic() {
    let base = {
        let mut cfg = hmd::ServingConfig::quick(23);
        cfg.samples = 240;
        cfg
    };
    let artifacts = hmd::ServingSession::start(base.clone()).expect("train").artifacts_handle();

    // boundaries at 80 (mid-burst: quarantine is non-empty, so the
    // round swaps models) and 160 → the run must finish on generation 2
    let run = |batch: usize, arena: bool| {
        let mut cfg = base.clone();
        cfg.retrain_every = 80;
        cfg.batch = batch;
        cfg.arena = arena;
        cfg.calibration_samples = 0;
        let mut session =
            hmd::ServingSession::with_artifacts(cfg, artifacts.clone()).expect("assemble");
        let outcome = session.run_to_completion().expect("run");
        let hub = session.hub().expect("retraining session has a hub");
        (outcome, hub.generation(), hub.swaps(), hub.absorbed())
    };

    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        par::set_thread_override(Some(threads));
        for batch in [1usize, 7, 64] {
            for arena in [true, false] {
                outcomes.push((threads, batch, arena, run(batch, arena)));
            }
        }
    }
    // exact rerun of the first configuration: same bytes again
    par::set_thread_override(Some(1));
    outcomes.push((1, 1, true, run(1, true)));
    par::set_thread_override(None);

    let (_, _, _, reference) = &outcomes[0];
    let (outcome, generation, swaps, absorbed) = reference;
    assert_eq!(outcome.processed, 240);
    assert_eq!(*generation, 2, "240 samples at retrain_every 80 schedule two rounds");
    assert_eq!(outcome.generation, 2);
    assert!(*swaps >= 1, "the mid-burst boundary must swap models");
    assert!(*absorbed >= 1, "a swap absorbs at least one quarantined row");
    for (threads, batch, arena, got) in &outcomes {
        let (o, g, s, a) = got;
        assert_eq!(
            o.digest, outcome.digest,
            "retraining digest moved at batch {batch}, {threads} thread(s), arena={arena}"
        );
        assert_eq!(o.verdicts, outcome.verdicts);
        assert_eq!(o.drift_events, outcome.drift_events);
        assert_eq!(o.alert_transitions, outcome.alert_transitions);
        assert_eq!((g, s, a), (generation, swaps, absorbed), "promotion stats moved");
    }
}

/// A retraining fleet reruns byte-identically: shards race pushing into
/// the shared quarantine ring, but each round sorts the drained rows
/// into a canonical order before absorbing them, so per-shard digests
/// and the hub's promotion statistics survive any scheduler interleave.
/// Per-generation SLO recalibration is part of the pinned surface.
#[test]
fn fleet_retraining_rerun_is_byte_identical() {
    let mut cfg = hmd::ServingConfig::quick(29);
    cfg.samples = 160;
    cfg.retrain_every = 60; // boundaries at 60 (mid-burst) and 120
    let trainer = hmd::ServingSession::start(cfg.clone()).expect("train");
    let artifacts = trainer.artifacts_handle();
    drop(trainer);

    let run = || {
        let mut fleet = hmd::FleetSession::with_artifacts(&cfg, 3, artifacts.clone()).expect("fleet");
        let outcomes = fleet.run().expect("fleet run");
        let hub = fleet.hub().expect("retraining fleet has a hub");
        let stats = (hub.generation(), hub.swaps(), hub.absorbed());
        (outcomes, stats)
    };
    let (a, a_stats) = run();
    let (b, b_stats) = run();
    assert_eq!(a.len(), 3);
    assert_eq!(a_stats.0, 2, "160 samples at retrain_every 60 schedule two rounds");
    assert!(a_stats.1 >= 1, "the mid-burst boundary must swap models");
    assert_eq!(a_stats, b_stats, "fleet promotion stats diverged across reruns");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.processed, 160, "shard {i} dropped windows");
        assert_eq!(x.generation, 2, "shard {i} finished on the wrong generation");
        assert_eq!(x.digest, y.digest, "shard {i} digest diverged across reruns");
        assert_eq!(x.verdicts, y.verdicts, "shard {i} verdicts diverged across reruns");
        assert_eq!(x.drift_events, y.drift_events);
        assert_eq!(x.alert_transitions, y.alert_transitions);
    }
}

/// Incident bundles are part of the determinism contract: on the same
/// seed, each captured bundle serializes to identical bytes at any
/// batch size, worker-thread count, and fleet width — the flight
/// recorder ring sees the same verdict stream regardless of how the
/// windows were grouped or scheduled, and shard 0 of a fleet replays
/// the single-session stream exactly. Wall-clock latency fields and the
/// grouping knobs themselves (batch, fleet width — recorded so replay
/// can rebuild the run, legitimately different across configurations)
/// are scrubbed; every seed-derived byte is pinned.
#[test]
fn incident_bundles_are_byte_identical_across_batch_threads_and_shards() {
    let base = {
        let mut cfg = hmd::ServingConfig::quick(19);
        cfg.samples = 250; // lull + burst: the burst trips the SLO alerts
        cfg
    };
    let artifacts = hmd::ServingSession::start(base.clone()).expect("train").artifacts_handle();

    // shard 0's bundles of an n-shard fleet, serialized and scrubbed
    let run = |batch: usize, shards: usize| -> Vec<String> {
        let mut cfg = base.clone();
        cfg.batch = batch;
        cfg.calibration_samples = 0;
        let mut fleet =
            hmd::FleetSession::with_artifacts(&cfg, shards, artifacts.clone()).expect("fleet");
        fleet.run().expect("fleet run");
        fleet.shards()[0]
            .incidents()
            .iter()
            .map(|b| {
                // digest purity: the recorded digest is exactly the
                // FNV fold of the recorded window verdicts
                assert_eq!(
                    b.verdict_digest,
                    hmd::recorder::verdict_digest(b.windows.iter().map(|w| w.verdict)),
                    "bundle {} digest does not match its own windows",
                    b.id
                );
                scrub_incident(&b.to_json().to_string())
            })
            .collect()
    };

    let mut variants = Vec::new();
    for threads in [1usize, 4] {
        par::set_thread_override(Some(threads));
        for batch in [1usize, 7] {
            for shards in [1usize, 3] {
                variants.push((threads, batch, shards, run(batch, shards)));
            }
        }
    }
    par::set_thread_override(None);

    let (_, _, _, reference) = &variants[0];
    assert!(!reference.is_empty(), "the seeded burst must capture at least one incident");
    for (threads, batch, shards, got) in &variants {
        assert_eq!(
            got, reference,
            "bundle bytes moved at batch {batch}, {threads} thread(s), {shards} shard(s)"
        );
    }
}

/// Replaces everything interleave- or wall-clock-dependent in a
/// serialized observability document with zeros, leaving all
/// seed-derived content intact: latency fields (wall-clock — this also
/// flattens the `latency_tail` trace ring, whose promotions depend on
/// machine timing), quarantine depths (the quarantine ring is
/// fleet-shared, so its fill level depends on shard interleaving) and
/// the stream-grouping knobs themselves (batch size, fleet width —
/// recorded so replay can rebuild the run, legitimately different
/// across configurations).
fn scrub_incident(text: &str) -> String {
    fn scrub(value: &mut Json) {
        match value {
            Json::Obj(fields) => {
                for (key, v) in fields {
                    if key.contains("latency")
                        || key.contains("quarantine")
                        || key == "batch"
                        || key == "shards"
                    {
                        *v = Json::UInt(0);
                    } else {
                        scrub(v);
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(scrub),
            _ => {}
        }
    }
    let mut doc = Json::parse(text).expect("bundle is valid JSON");
    scrub(&mut doc);
    doc.to_string()
}

/// The continuous-observability surface is part of the determinism
/// contract: shard 0's multi-resolution history and its promoted
/// flagged stage traces serialize to identical bytes at any batch
/// size, worker-thread count, and fleet width. History points flush on
/// stream-time sample boundaries and fold counters exactly, flagged
/// trace promotion is verdict-driven — both are pure functions of the
/// seed once the wall-clock fields (scrubbed, including the
/// wall-clock-promoted `latency_tail` ring) are zeroed.
#[test]
fn shard_history_and_traces_are_byte_identical_across_batch_threads_and_shards() {
    let base = {
        let mut cfg = hmd::ServingConfig::quick(37);
        cfg.samples = 250; // lull + burst: the burst flags adversarial windows
        cfg
    };
    let artifacts = hmd::ServingSession::start(base.clone()).expect("train").artifacts_handle();

    // shard 0's history + trace documents of an n-shard fleet, scrubbed
    let run = |batch: usize, shards: usize| -> (String, String) {
        let mut cfg = base.clone();
        cfg.batch = batch;
        cfg.calibration_samples = 0;
        let mut fleet =
            hmd::FleetSession::with_artifacts(&cfg, shards, artifacts.clone()).expect("fleet");
        fleet.run().expect("fleet run");
        let shard0 = &fleet.shards()[0];
        let history = hmd::obs::history_json(&[shard0.history_snapshot()]).to_string();
        let traces = hmd::recorder::traces_json(&[shard0.trace_snapshot()]).to_string();
        (scrub_incident(&history), scrub_incident(&traces))
    };

    let mut variants = Vec::new();
    for threads in [1usize, 4] {
        par::set_thread_override(Some(threads));
        for batch in [1usize, 7] {
            for shards in [1usize, 3] {
                variants.push((threads, batch, shards, run(batch, shards)));
            }
        }
    }
    par::set_thread_override(None);

    let (_, _, _, reference) = &variants[0];
    let (history, traces) = reference;

    // the reference is non-trivial: 250 samples flush fine points at
    // 64/128/192, each covering exactly FINE_EVERY windows
    let doc = Json::parse(history).expect("history is valid JSON");
    let fine = doc
        .get("per_shard")
        .and_then(|s| s.at(0))
        .and_then(|s| s.get("fine"))
        .and_then(Json::as_arr)
        .expect("shard 0 fine tier");
    assert_eq!(fine.len(), 3, "250 samples must flush exactly three fine points");
    let covered: f64 =
        fine.iter().filter_map(|p| p.get("samples").and_then(Json::as_f64)).sum();
    assert_eq!(covered, 192.0, "fine points must each cover one flush interval");
    let doc = Json::parse(traces).expect("traces are valid JSON");
    let flagged = doc
        .get("per_shard")
        .and_then(|s| s.at(0))
        .and_then(|s| s.get("flagged"))
        .and_then(Json::as_arr)
        .expect("shard 0 flagged ring");
    assert!(!flagged.is_empty(), "the seeded burst must promote flagged traces");

    for (threads, batch, shards, got) in &variants {
        let (h, t) = got;
        assert_eq!(
            h, history,
            "history bytes moved at batch {batch}, {threads} thread(s), {shards} shard(s)"
        );
        assert_eq!(
            t, traces,
            "trace bytes moved at batch {batch}, {threads} thread(s), {shards} shard(s)"
        );
    }
}

/// Shard 0 of a fleet replays the exact single-session stream: same
/// base seed, same digest. Other shards decorrelate.
#[test]
fn fleet_shard_zero_matches_single_session() {
    let mut cfg = hmd::ServingConfig::quick(17);
    cfg.samples = 150;
    let mut single = hmd::ServingSession::start(cfg.clone()).expect("train");
    let single_outcome = single.run_to_completion().expect("run");

    let mut fleet =
        hmd::FleetSession::with_artifacts(&cfg, 2, single.artifacts_handle()).expect("fleet");
    let outcomes = fleet.run().expect("fleet run");
    assert_eq!(outcomes.len(), 2);
    assert_eq!(
        outcomes[0].digest, single_outcome.digest,
        "fleet shard 0 diverged from the single session"
    );
    assert_eq!(outcomes[0].verdicts, single_outcome.verdicts);
    assert_ne!(
        outcomes[1].digest, outcomes[0].digest,
        "shard seeds failed to decorrelate"
    );
}
