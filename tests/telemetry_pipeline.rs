//! End-to-end telemetry coverage: one traced quick-config framework run
//! must produce spans for every paper phase, hot-loop metrics from the
//! attack and RL layers, and structured integrity events.
//!
//! Lives in its own integration-test binary (own process) so the
//! process-global enablement override and recorded state are not shared
//! with unrelated tests.

use hmd::core::{Framework, FrameworkConfig};
use hmd::telemetry as tel;

#[test]
fn traced_run_covers_every_pipeline_phase() {
    tel::set_enabled_override(Some(true));
    let report = Framework::new(FrameworkConfig::quick(17)).run().expect("run");
    tel::set_enabled_override(None);

    // Phase spans: corpus → detectors → attack → predictor → controllers.
    let spans = tel::span::snapshot();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "framework.run",
        "framework.prepare_data",
        "sim.build_corpus",
        "framework.fit_models",
        "framework.evaluate_models",
        "framework.generate_attacks",
        "attack.lowprofool.generate",
        "framework.train_predictor",
        "rl.predictor.train",
        "framework.evaluate_predictor",
        "framework.train_controllers",
        "rl.controller.train.fast_inference",
        "rl.controller.train.small_footprint",
        "rl.controller.train.best_detection",
    ] {
        assert!(names.contains(&expected), "missing span {expected:?}; got {names:?}");
    }

    // Nesting: every phase parents under framework.run, and
    // sim.build_corpus under prepare_data.
    let root = spans.iter().find(|s| s.name == "framework.run").unwrap();
    let prepare = spans.iter().find(|s| s.name == "framework.prepare_data").unwrap();
    assert_eq!(prepare.parent, root.id);
    let corpus = spans.iter().find(|s| s.name == "sim.build_corpus").unwrap();
    assert_eq!(corpus.parent, prepare.id);

    // Hot-loop metrics recorded real work.
    let counters = tel::metrics::counters_snapshot();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("counter {name} not registered"))
            .1
    };
    assert!(counter("sim.apps") > 0);
    assert!(counter("sim.windows") > 0);
    assert!(counter("attack.lowprofool.samples") > 0);
    assert!(counter("attack.lowprofool.iterations") > counter("attack.lowprofool.samples"));
    assert!(counter("rl.predictor.episodes") > 0);
    assert!(counter("rl.a2c.updates") >= counter("rl.predictor.episodes"));
    let ucb_pulls: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("rl.ucb.") && k.ends_with(".pulls"))
        .map(|(_, v)| v)
        .sum();
    assert!(ucb_pulls > 0, "UCB arm selections were not counted");

    // Latency histograms carry the same numbers the controller profiles saw.
    let histograms = tel::metrics::histograms_snapshot();
    for controller in &report.controllers {
        let hist_name = format!("ml.latency_ns.{}", controller.selected_model);
        let (_, snap) = histograms
            .iter()
            .find(|(k, _)| *k == hist_name)
            .unwrap_or_else(|| panic!("histogram {hist_name} not recorded"));
        assert!(snap.count > 0);
        let hist_ms = snap.mean() / 1e6;
        assert!(
            controller.latency_ms > 0.0 && hist_ms > 0.0,
            "latency measured through the telemetry clock"
        );
    }

    // The integrity monitor published structured drift events for the
    // attacked and defended scenarios.
    let doc = tel::snapshot_json("pipeline");
    let events = doc.get("events").and_then(|e| e.as_arr()).expect("events array");
    let drift_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("integrity.drift"))
        .collect();
    assert!(!drift_events.is_empty(), "no integrity.drift events recorded");
    for e in &drift_events {
        let payload = e.get("payload").expect("payload");
        assert!(payload.get("model").and_then(|m| m.as_str()).is_some());
        assert!(payload.get("status").and_then(|s| s.as_str()).is_some());
        assert!(payload.get("tolerance").and_then(hmd_util::json::Json::as_f64).is_some());
    }

    // Renderers produce non-empty, well-formed views.
    let tree = tel::render_tree();
    assert!(tree.contains("framework.run"));
    let folded = tel::collapsed_stacks();
    assert!(folded.contains("framework.run;framework.prepare_data;sim.build_corpus "));

    tel::reset();
}
