//! Integration tests of the telemetry substrate: sharded merging under
//! the parallel substrate, span nesting (including across panics and
//! into `par` workers), disabled-mode no-ops, and export validity.
//!
//! Telemetry state is process-global, so every test takes `GUARD` and
//! starts from `reset()` with an explicit enablement override.

use std::sync::{Mutex, PoisonError};

use hmd_telemetry as tel;
use hmd_util::par;

static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn sharded_counter_merges_across_par_workers() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    let items: Vec<u64> = (0..1000).collect();
    for threads in [1, 2, 8] {
        par::set_thread_override(Some(threads));
        let c = tel::metrics::counter("test.par.merge");
        let before = c.value();
        let _: Vec<u64> = par::par_map(&items, |&i| {
            c.add(i);
            i
        });
        assert_eq!(c.value() - before, items.iter().sum::<u64>(), "threads={threads}");
    }
    par::set_thread_override(None);
    tel::set_enabled_override(None);
}

#[test]
fn sharded_histogram_merges_across_par_workers() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    par::set_thread_override(Some(4));
    let h = tel::metrics::histogram("test.par.hist");
    let items: Vec<u64> = (0..500).collect();
    let _: Vec<()> = par::par_map(&items, |&i| h.record(i));
    let merged = h.merged();
    assert_eq!(merged.count, 500);
    assert_eq!(merged.sum, items.iter().sum::<u64>());
    par::set_thread_override(None);
    tel::set_enabled_override(None);
}

#[test]
fn spans_nest_and_unwind_across_panics() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    let result = std::panic::catch_unwind(|| {
        let _outer = tel::span("test.panic.outer");
        let _inner = tel::span("test.panic.inner");
        panic!("boom");
    });
    assert!(result.is_err());
    let spans = tel::span::snapshot();
    let outer = spans.iter().find(|s| s.name == "test.panic.outer").expect("outer recorded");
    let inner = spans.iter().find(|s| s.name == "test.panic.inner").expect("inner recorded");
    // both guards ran their Drop during unwind, inner parented to outer
    assert_eq!(inner.parent, outer.id);
    assert!(inner.end_ns >= inner.start_ns);
    // the unwind restored the thread's current span to "none"
    assert_eq!(tel::span::current_id(), 0);
    tel::set_enabled_override(None);
}

#[test]
fn par_workers_attribute_spans_to_the_spawning_span() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    par::set_thread_override(Some(4));
    let outer_id = {
        let _outer = tel::span("test.attr.outer");
        let outer_id = tel::span::current_id();
        let items: Vec<usize> = (0..256).collect();
        let _: Vec<()> = par::par_map(&items, |_| {
            let _worker = tel::span("test.attr.worker");
        });
        outer_id
    };
    let spans = tel::span::snapshot();
    let workers: Vec<_> = spans.iter().filter(|s| s.name == "test.attr.worker").collect();
    assert!(!workers.is_empty());
    assert!(
        workers.iter().all(|s| s.parent == outer_id),
        "worker spans must parent to the spawning span"
    );
    par::set_thread_override(None);
    tel::set_enabled_override(None);
}

#[test]
fn disabled_mode_records_nothing() {
    let _lock = locked();
    tel::set_enabled_override(Some(false));
    tel::reset();
    {
        let _s = tel::span("test.disabled.span");
        let c = tel::metrics::counter("test.disabled.counter");
        c.add(7);
        let g = tel::metrics::gauge("test.disabled.gauge");
        g.set(1.5);
        let h = tel::metrics::histogram("test.disabled.hist");
        h.record(42);
        tel::event("test.disabled.event", hmd_util::json::Json::Null);
        assert_eq!(c.value(), 0);
        assert_eq!(g.sets(), 0);
        assert_eq!(h.merged().count, 0);
    }
    assert!(tel::span::snapshot().iter().all(|s| s.name != "test.disabled.span"));
    let doc = tel::snapshot_json("disabled");
    let events = doc.get("events").and_then(|e| e.as_arr()).unwrap();
    assert!(events.is_empty());
    tel::set_enabled_override(None);
}

#[test]
fn export_writes_schema_valid_artifacts() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    {
        let _a = tel::span("test.export.root");
        let _b = tel::span("test.export.child");
        tel::metrics::counter("test.export.counter").add(3);
    }
    let dir = std::env::temp_dir().join(format!("hmd_tel_test_{}", std::process::id()));
    std::env::set_var("HMD_TRACE_OUT", &dir);
    let (json_path, folded_path) = tel::export::export("unittest").expect("export succeeds");
    std::env::remove_var("HMD_TRACE_OUT");

    let text = std::fs::read_to_string(&json_path).unwrap();
    let doc = hmd_util::json::Json::parse(&text).unwrap();
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(tel::export::SCHEMA));
    assert_eq!(doc.get("name").and_then(|s| s.as_str()), Some("unittest"));
    let spans = doc.get("spans").and_then(|s| s.as_arr()).unwrap();
    assert!(spans.len() >= 2);
    for s in spans {
        let start = s.get("start_ns").and_then(hmd_util::json::Json::as_f64).unwrap();
        let end = s.get("end_ns").and_then(hmd_util::json::Json::as_f64).unwrap();
        assert!(end >= start, "span times must be monotonic");
    }
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(
        folded.contains("test.export.root;test.export.child "),
        "collapsed stack has the nested path: {folded}"
    );
    std::fs::remove_dir_all(&dir).ok();
    tel::set_enabled_override(None);
}

#[test]
fn render_tree_indents_children() {
    let _lock = locked();
    tel::set_enabled_override(Some(true));
    tel::reset();
    {
        let _a = tel::span("test.tree.root");
        let _b = tel::span("test.tree.leaf");
    }
    let tree = tel::render_tree();
    assert!(tree.contains("test.tree.root"));
    assert!(tree.contains("  test.tree.leaf"), "child is indented under root:\n{tree}");
    tel::set_enabled_override(None);
}
