//! Timestamped structured events.
//!
//! An event is a named JSON payload stamped with the telemetry clock —
//! the integrity monitor emits its drift assessments this way so a
//! trace shows *what* the monitor concluded, not just how long it took.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use hmd_util::json::Json;

use crate::clock;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Timestamp on the telemetry clock.
    pub t_ns: u64,
    /// Process-wide sequence number (total order even within one
    /// clock tick).
    pub seq: u64,
    /// Event kind, e.g. `integrity.drift`.
    pub kind: String,
    /// Structured payload.
    pub payload: Json,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static EVENTS: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());

/// Records a structured event. A no-op (one atomic load, no payload
/// evaluation cost beyond what the caller already built) when telemetry
/// is disabled — callers with expensive payloads should gate on
/// [`crate::enabled`] themselves.
pub fn event(kind: &str, payload: Json) {
    if !crate::enabled() {
        return;
    }
    let record = EventRecord {
        t_ns: clock::now_ns(),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind: kind.to_owned(),
        payload,
    };
    EVENTS.lock().unwrap_or_else(PoisonError::into_inner).push(record);
}

/// A copy of all recorded events, sorted by `(t_ns, seq)`.
#[must_use]
pub fn snapshot() -> Vec<EventRecord> {
    let mut events = EVENTS.lock().unwrap_or_else(PoisonError::into_inner).clone();
    events.sort_by_key(|e| (e.t_ns, e.seq));
    events
}

/// Discards all recorded events.
pub(crate) fn reset() {
    EVENTS.lock().unwrap_or_else(PoisonError::into_inner).clear();
}
