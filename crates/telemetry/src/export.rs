//! Exporters: the `TELEMETRY_<name>.json` artifact, a human-readable
//! span tree, and a flamegraph-compatible collapsed-stack rendering.
//!
//! The JSON schema (`hmd-telemetry-v1`) is what the `telemetry_check`
//! CI gate validates:
//!
//! ```json
//! {
//!   "name": "pipeline",
//!   "schema": "hmd-telemetry-v1",
//!   "clock_unit": "ns",
//!   "spans":      [{"id", "parent", "name", "start_ns", "end_ns"}, ...],
//!   "counters":   {"attack.lowprofool.iterations": 123, ...},
//!   "gauges":     {"rl.predictor.reward_ma": {"value", "sets"}, ...},
//!   "histograms": {"ml.latency_ns.RF": {"count", "sum", "mean",
//!                  "buckets": [{"lo", "hi", "count"}, ...]}, ...},
//!   "events":     [{"t_ns", "seq", "kind", "payload"}, ...]
//! }
//! ```
//!
//! Spans are sorted by start time, events by `(t_ns, seq)`, metric maps
//! by name — the artifact's *shape* is deterministic even though its
//! timings are wall-clock.

use std::io;
use std::path::PathBuf;

use hmd_util::json::Json;

use crate::metrics::{bucket_bounds, HistogramSnapshot, BUCKETS};
use crate::span::SpanRecord;
use crate::{events, metrics, span};

/// Schema identifier embedded in every artifact.
pub const SCHEMA: &str = "hmd-telemetry-v1";

fn json_u64(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::UInt(v),
    }
}

fn span_json(s: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("id".to_owned(), json_u64(s.id)),
        ("parent".to_owned(), json_u64(s.parent)),
        ("name".to_owned(), Json::Str(s.name.clone())),
        ("start_ns".to_owned(), json_u64(s.start_ns)),
        ("end_ns".to_owned(), json_u64(s.end_ns)),
    ])
}

fn histogram_json(snapshot: &HistogramSnapshot) -> Json {
    let buckets: Vec<Json> = snapshot
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(b, &count)| {
            let (lo, hi) = bucket_bounds(b);
            Json::Obj(vec![
                ("lo".to_owned(), json_u64(lo)),
                ("hi".to_owned(), json_u64(hi)),
                ("count".to_owned(), json_u64(count)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("count".to_owned(), json_u64(snapshot.count)),
        ("sum".to_owned(), json_u64(snapshot.sum)),
        ("mean".to_owned(), Json::Float(snapshot.mean())),
        ("buckets".to_owned(), Json::Arr(buckets)),
    ])
}

/// A point-in-time JSON document of everything recorded so far.
#[must_use]
pub fn snapshot_json(name: &str) -> Json {
    let spans: Vec<Json> = span::snapshot().iter().map(span_json).collect();
    let counters: Vec<(String, Json)> = metrics::counters_snapshot()
        .into_iter()
        .map(|(k, v)| (k, json_u64(v)))
        .collect();
    let gauges: Vec<(String, Json)> = metrics::gauges_snapshot()
        .into_iter()
        .map(|(k, value, sets)| {
            (
                k,
                Json::Obj(vec![
                    ("value".to_owned(), Json::Float(value)),
                    ("sets".to_owned(), json_u64(sets)),
                ]),
            )
        })
        .collect();
    let histograms: Vec<(String, Json)> = metrics::histograms_snapshot()
        .iter()
        .map(|(k, s)| (k.clone(), histogram_json(s)))
        .collect();
    let events: Vec<Json> = events::snapshot()
        .into_iter()
        .map(|e| {
            Json::Obj(vec![
                ("t_ns".to_owned(), json_u64(e.t_ns)),
                ("seq".to_owned(), json_u64(e.seq)),
                ("kind".to_owned(), Json::Str(e.kind)),
                ("payload".to_owned(), e.payload),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("clock_unit".to_owned(), Json::Str("ns".to_owned())),
        ("spans".to_owned(), Json::Arr(spans)),
        ("counters".to_owned(), Json::Obj(counters)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        ("histograms".to_owned(), Json::Obj(histograms)),
        ("events".to_owned(), Json::Arr(events)),
    ])
}

/// Maps a dotted metric name onto the Prometheus exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every invalid byte becomes `_`, and a
/// leading digit gets a `_` prefix.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push(if valid { c } else { '_' });
        }
    }
    out
}

/// Formats a float the way the exposition format expects (`+Inf`,
/// `-Inf`, `NaN` spellings for non-finite values).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format (version 0.0.4): counters as `<name>_total`, gauges as plain
/// samples, histograms as cumulative `_bucket{le="…"}` series plus
/// `_sum`/`_count` and `_p50`/`_p95`/`_p99` quantile-estimate gauges
/// (log-linear interpolation inside the log₂ buckets, see
/// [`HistogramSnapshot::quantile`]). Metric order is the registry's
/// (name-sorted), so the page is deterministic for a given state.
#[must_use]
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in metrics::counters_snapshot() {
        let n = prometheus_name(&name);
        let _ = writeln!(out, "# TYPE {n}_total counter");
        let _ = writeln!(out, "{n}_total {value}");
    }
    for (name, value, _) in metrics::gauges_snapshot() {
        let n = prometheus_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(value));
    }
    for (name, snapshot) in metrics::histograms_snapshot() {
        let n = prometheus_name(&name);
        out.push_str(&prometheus_histogram(&n, &snapshot));
    }
    out
}

/// The exposition lines of one histogram snapshot under base name `n`
/// (already sanitized). Shared by the registry page above and by
/// windowed views that render snapshots of their own.
#[must_use]
pub fn prometheus_histogram(n: &str, s: &HistogramSnapshot) -> String {
    prometheus_histogram_with_exemplars(n, s, &[None; BUCKETS])
}

/// One exemplar per histogram bucket: the most recent observation that
/// landed in that bucket, carrying enough identity (global sample
/// index, shard, model generation) to find the matching flight-recorder
/// window. Rendered as an OpenMetrics `# {…}` suffix on the bucket's
/// exposition line by [`prometheus_histogram_with_exemplars`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Global sample index of the window that produced the observation.
    pub sample: u64,
    /// Shard that served the window.
    pub shard: usize,
    /// Model generation the window was classified under.
    pub generation: u64,
    /// The observed value itself, in the histogram's unit.
    pub value: u64,
}

/// [`prometheus_histogram`] with OpenMetrics exemplar annotations: each
/// non-empty bucket with a recorded exemplar gets a
/// ` # {sample="…",shard="…",generation="…"} <value>` suffix linking
/// the bucket to the last window that landed in it.
#[must_use]
pub fn prometheus_histogram_with_exemplars(
    n: &str,
    s: &HistogramSnapshot,
    exemplars: &[Option<Exemplar>; BUCKETS],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE {n} histogram");
    let mut cum = 0u64;
    for (b, &count) in s.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cum += count;
        let (_, hi) = bucket_bounds(b);
        let _ = write!(out, "{n}_bucket{{le=\"{hi}\"}} {cum}");
        if let Some(e) = exemplars[b] {
            let _ = write!(
                out,
                " # {{sample=\"{}\",shard=\"{}\",generation=\"{}\"}} {}",
                e.sample, e.shard, e.generation, e.value
            );
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", s.count);
    let _ = writeln!(out, "{n}_sum {}", s.sum);
    let _ = writeln!(out, "{n}_count {}", s.count);
    for (q, v) in [("p50", s.p50()), ("p95", s.p95()), ("p99", s.p99())] {
        let _ = writeln!(out, "# TYPE {n}_{q} gauge");
        let _ = writeln!(out, "{n}_{q} {}", prom_f64(v));
    }
    out
}

/// Children of each span, in start order, plus the roots.
fn span_tree(spans: &[SpanRecord]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let index_of: std::collections::HashMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match index_of.get(&s.parent) {
            Some(&p) if s.parent != 0 => children[p].push(i),
            // parent id 0 or a parent still open at snapshot time
            _ => roots.push(i),
        }
    }
    (roots, children)
}

#[allow(clippy::cast_precision_loss)]
fn format_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// Renders the finished spans as an indented tree with durations —
/// the quick, human-readable view of where a pipeline run spent its
/// time.
#[must_use]
pub fn render_tree() -> String {
    let spans = span::snapshot();
    let (roots, children) = span_tree(&spans);
    let mut out = String::new();
    fn walk(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} {}\n", s.name, format_ms(s.duration_ns())));
        for &c in &children[i] {
            walk(out, spans, children, c, depth + 1);
        }
    }
    for &r in &roots {
        walk(&mut out, &spans, &children, r, 0);
    }
    out
}

/// Renders the finished spans in the collapsed-stack format flamegraph
/// tools consume: one `path;to;span <self_ns>` line per unique stack,
/// where self-time is the span's duration minus its children's. Lines
/// are sorted lexically so the rendering is stable.
#[must_use]
pub fn collapsed_stacks() -> String {
    let spans = span::snapshot();
    let (roots, children) = span_tree(&spans);
    let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    fn walk(
        folded: &mut std::collections::BTreeMap<String, u64>,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        prefix: &str,
    ) {
        let s = &spans[i];
        let path =
            if prefix.is_empty() { s.name.clone() } else { format!("{prefix};{}", s.name) };
        let child_ns: u64 =
            children[i].iter().map(|&c| spans[c].duration_ns()).sum();
        let self_ns = s.duration_ns().saturating_sub(child_ns);
        *folded.entry(path.clone()).or_insert(0) += self_ns;
        for &c in &children[i] {
            walk(folded, spans, children, c, &path);
        }
    }
    for &r in &roots {
        walk(&mut folded, &spans, &children, r, "");
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// The artifact directory: `HMD_TRACE_OUT`, falling back to the
/// current directory.
fn out_dir() -> PathBuf {
    std::env::var_os("HMD_TRACE_OUT").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

/// Writes `TELEMETRY_<name>.json` and `TELEMETRY_<name>.folded` into
/// the [`out_dir`], returning both paths.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Panics
///
/// Panics when `name` is not a bare file stem.
pub fn export(name: &str) -> io::Result<(PathBuf, PathBuf)> {
    assert!(
        !name.is_empty() && !name.contains(['/', '\\']),
        "telemetry artifact name must be a bare file stem, got {name:?}"
    );
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let json_path = dir.join(format!("TELEMETRY_{name}.json"));
    std::fs::write(&json_path, snapshot_json(name).pretty() + "\n")?;
    let folded_path = dir.join(format!("TELEMETRY_{name}.folded"));
    std::fs::write(&folded_path, collapsed_stacks())?;
    Ok((json_path, folded_path))
}

/// [`export`]s only when tracing is enabled *and* was requested through
/// the `HMD_TRACE` environment variable — a test-installed override
/// alone never writes files. Failures are reported on stderr rather
/// than propagated: telemetry must never fail the pipeline it observes.
pub fn maybe_export(name: &str) -> Option<PathBuf> {
    if !(crate::enabled() && std::env::var("HMD_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
    {
        return None;
    }
    match export(name) {
        Ok((json_path, _)) => Some(json_path),
        Err(e) => {
            eprintln!("hmd-telemetry: export {name:?} failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("ml.latency_ns.RF"), "ml_latency_ns_RF");
        assert_eq!(prometheus_name("rl.ucb.fast-inference"), "rl_ucb_fast_inference");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_quantiled() {
        let h = Histogram::standalone();
        for v in [1u64, 2, 2, 700] {
            h.record(v);
        }
        let text = prometheus_histogram("t_hist", &h.merged());
        assert!(text.contains("# TYPE t_hist histogram"), "{text}");
        assert!(text.contains("t_hist_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("t_hist_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("t_hist_bucket{le=\"1024\"} 4"), "{text}");
        assert!(text.contains("t_hist_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("t_hist_sum 705"), "{text}");
        assert!(text.contains("t_hist_count 4"), "{text}");
        assert!(text.contains("t_hist_p50 "), "{text}");
        assert!(text.contains("t_hist_p99 "), "{text}");
    }

    #[test]
    fn exemplar_annotations_attach_to_their_bucket_lines() {
        let h = Histogram::standalone();
        for v in [1u64, 2, 2, 700] {
            h.record(v);
        }
        let mut ex = [None; BUCKETS];
        ex[crate::metrics::bucket_index(700)] =
            Some(Exemplar { sample: 41, shard: 2, generation: 1, value: 700 });
        let text = prometheus_histogram_with_exemplars("t_ex", &h.merged(), &ex);
        assert!(
            text.contains(
                "t_ex_bucket{le=\"1024\"} 4 # {sample=\"41\",shard=\"2\",generation=\"1\"} 700"
            ),
            "{text}"
        );
        // buckets without exemplars stay bare
        assert!(text.contains("t_ex_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("t_ex_bucket{le=\"+Inf\"} 4\n"), "{text}");
    }

    #[test]
    fn registry_page_renders_registered_metrics() {
        // Sibling tests flip the global enablement override, so retry
        // each gated write until it lands instead of assuming the
        // override stays put for the whole test body.
        let c = metrics::counter("export.test.page_counter");
        let g = metrics::gauge("export.test.page_gauge");
        let h = metrics::histogram("export.test.page_hist");
        while c.value() == 0 || g.value() != 1.25 || h.merged().count == 0 {
            crate::set_enabled_override(Some(true));
            c.inc();
            g.set(1.25);
            h.record(9);
        }
        let text = prometheus_text();
        crate::set_enabled_override(None);
        assert!(text.contains("# TYPE export_test_page_counter_total counter"), "{text}");
        assert!(text.contains("export_test_page_gauge 1.25"), "{text}");
        assert!(text.contains("export_test_page_hist_bucket{le=\"+Inf\"} "), "{text}");
    }
}
