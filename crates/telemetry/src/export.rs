//! Exporters: the `TELEMETRY_<name>.json` artifact, a human-readable
//! span tree, and a flamegraph-compatible collapsed-stack rendering.
//!
//! The JSON schema (`hmd-telemetry-v1`) is what the `telemetry_check`
//! CI gate validates:
//!
//! ```json
//! {
//!   "name": "pipeline",
//!   "schema": "hmd-telemetry-v1",
//!   "clock_unit": "ns",
//!   "spans":      [{"id", "parent", "name", "start_ns", "end_ns"}, ...],
//!   "counters":   {"attack.lowprofool.iterations": 123, ...},
//!   "gauges":     {"rl.predictor.reward_ma": {"value", "sets"}, ...},
//!   "histograms": {"ml.latency_ns.RF": {"count", "sum", "mean",
//!                  "buckets": [{"lo", "hi", "count"}, ...]}, ...},
//!   "events":     [{"t_ns", "seq", "kind", "payload"}, ...]
//! }
//! ```
//!
//! Spans are sorted by start time, events by `(t_ns, seq)`, metric maps
//! by name — the artifact's *shape* is deterministic even though its
//! timings are wall-clock.

use std::io;
use std::path::PathBuf;

use hmd_util::json::Json;

use crate::metrics::{bucket_bounds, HistogramSnapshot};
use crate::span::SpanRecord;
use crate::{events, metrics, span};

/// Schema identifier embedded in every artifact.
pub const SCHEMA: &str = "hmd-telemetry-v1";

fn json_u64(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::UInt(v),
    }
}

fn span_json(s: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("id".to_owned(), json_u64(s.id)),
        ("parent".to_owned(), json_u64(s.parent)),
        ("name".to_owned(), Json::Str(s.name.clone())),
        ("start_ns".to_owned(), json_u64(s.start_ns)),
        ("end_ns".to_owned(), json_u64(s.end_ns)),
    ])
}

fn histogram_json(snapshot: &HistogramSnapshot) -> Json {
    let buckets: Vec<Json> = snapshot
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(b, &count)| {
            let (lo, hi) = bucket_bounds(b);
            Json::Obj(vec![
                ("lo".to_owned(), json_u64(lo)),
                ("hi".to_owned(), json_u64(hi)),
                ("count".to_owned(), json_u64(count)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("count".to_owned(), json_u64(snapshot.count)),
        ("sum".to_owned(), json_u64(snapshot.sum)),
        ("mean".to_owned(), Json::Float(snapshot.mean())),
        ("buckets".to_owned(), Json::Arr(buckets)),
    ])
}

/// A point-in-time JSON document of everything recorded so far.
#[must_use]
pub fn snapshot_json(name: &str) -> Json {
    let spans: Vec<Json> = span::snapshot().iter().map(span_json).collect();
    let counters: Vec<(String, Json)> = metrics::counters_snapshot()
        .into_iter()
        .map(|(k, v)| (k, json_u64(v)))
        .collect();
    let gauges: Vec<(String, Json)> = metrics::gauges_snapshot()
        .into_iter()
        .map(|(k, value, sets)| {
            (
                k,
                Json::Obj(vec![
                    ("value".to_owned(), Json::Float(value)),
                    ("sets".to_owned(), json_u64(sets)),
                ]),
            )
        })
        .collect();
    let histograms: Vec<(String, Json)> = metrics::histograms_snapshot()
        .iter()
        .map(|(k, s)| (k.clone(), histogram_json(s)))
        .collect();
    let events: Vec<Json> = events::snapshot()
        .into_iter()
        .map(|e| {
            Json::Obj(vec![
                ("t_ns".to_owned(), json_u64(e.t_ns)),
                ("seq".to_owned(), json_u64(e.seq)),
                ("kind".to_owned(), Json::Str(e.kind)),
                ("payload".to_owned(), e.payload),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("clock_unit".to_owned(), Json::Str("ns".to_owned())),
        ("spans".to_owned(), Json::Arr(spans)),
        ("counters".to_owned(), Json::Obj(counters)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        ("histograms".to_owned(), Json::Obj(histograms)),
        ("events".to_owned(), Json::Arr(events)),
    ])
}

/// Children of each span, in start order, plus the roots.
fn span_tree(spans: &[SpanRecord]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let index_of: std::collections::HashMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match index_of.get(&s.parent) {
            Some(&p) if s.parent != 0 => children[p].push(i),
            // parent id 0 or a parent still open at snapshot time
            _ => roots.push(i),
        }
    }
    (roots, children)
}

#[allow(clippy::cast_precision_loss)]
fn format_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// Renders the finished spans as an indented tree with durations —
/// the quick, human-readable view of where a pipeline run spent its
/// time.
#[must_use]
pub fn render_tree() -> String {
    let spans = span::snapshot();
    let (roots, children) = span_tree(&spans);
    let mut out = String::new();
    fn walk(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} {}\n", s.name, format_ms(s.duration_ns())));
        for &c in &children[i] {
            walk(out, spans, children, c, depth + 1);
        }
    }
    for &r in &roots {
        walk(&mut out, &spans, &children, r, 0);
    }
    out
}

/// Renders the finished spans in the collapsed-stack format flamegraph
/// tools consume: one `path;to;span <self_ns>` line per unique stack,
/// where self-time is the span's duration minus its children's. Lines
/// are sorted lexically so the rendering is stable.
#[must_use]
pub fn collapsed_stacks() -> String {
    let spans = span::snapshot();
    let (roots, children) = span_tree(&spans);
    let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    fn walk(
        folded: &mut std::collections::BTreeMap<String, u64>,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        prefix: &str,
    ) {
        let s = &spans[i];
        let path =
            if prefix.is_empty() { s.name.clone() } else { format!("{prefix};{}", s.name) };
        let child_ns: u64 =
            children[i].iter().map(|&c| spans[c].duration_ns()).sum();
        let self_ns = s.duration_ns().saturating_sub(child_ns);
        *folded.entry(path.clone()).or_insert(0) += self_ns;
        for &c in &children[i] {
            walk(folded, spans, children, c, &path);
        }
    }
    for &r in &roots {
        walk(&mut folded, &spans, &children, r, "");
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// The artifact directory: `HMD_TRACE_OUT`, falling back to the
/// current directory.
fn out_dir() -> PathBuf {
    std::env::var_os("HMD_TRACE_OUT").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

/// Writes `TELEMETRY_<name>.json` and `TELEMETRY_<name>.folded` into
/// the [`out_dir`], returning both paths.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Panics
///
/// Panics when `name` is not a bare file stem.
pub fn export(name: &str) -> io::Result<(PathBuf, PathBuf)> {
    assert!(
        !name.is_empty() && !name.contains(['/', '\\']),
        "telemetry artifact name must be a bare file stem, got {name:?}"
    );
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let json_path = dir.join(format!("TELEMETRY_{name}.json"));
    std::fs::write(&json_path, snapshot_json(name).pretty() + "\n")?;
    let folded_path = dir.join(format!("TELEMETRY_{name}.folded"));
    std::fs::write(&folded_path, collapsed_stacks())?;
    Ok((json_path, folded_path))
}

/// [`export`]s only when tracing is enabled *and* was requested through
/// the `HMD_TRACE` environment variable — a test-installed override
/// alone never writes files. Failures are reported on stderr rather
/// than propagated: telemetry must never fail the pipeline it observes.
pub fn maybe_export(name: &str) -> Option<PathBuf> {
    if !(crate::enabled() && std::env::var("HMD_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
    {
        return None;
    }
    match export(name) {
        Ok((json_path, _)) => Some(json_path),
        Err(e) => {
            eprintln!("hmd-telemetry: export {name:?} failed: {e}");
            None
        }
    }
}
