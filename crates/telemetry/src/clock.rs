//! The telemetry clock: a monotonic nanosecond counter anchored at the
//! first use in the process, shared by spans, latency measurement
//! ([`hmd_ml`]'s `measure_latency_ms`) and events so every recorded
//! timestamp lives on one axis.

use std::sync::OnceLock;
use std::time::Instant;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-local anchor.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
