//! Hierarchical timing spans with RAII guards.
//!
//! [`span`] opens a span on the calling thread; dropping the returned
//! guard closes it. Guards close in reverse opening order (they are
//! values on the Rust stack), giving proper nesting per thread, and a
//! guard dropped during a panic unwind still records its span — no
//! timing hole when a stage aborts.
//!
//! Parallel regions compose: the crate registers a context hook with
//! [`hmd_util::par`] so a worker thread inherits the spawning thread's
//! current span as its parent. A span opened inside `par_map` therefore
//! attributes to the span that launched the region, not to a detached
//! root.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never zero).
    pub id: u64,
    /// Parent span id; zero for a root span.
    pub parent: u64,
    /// Span name, e.g. `framework.prepare_data`.
    pub name: String,
    /// Start on the telemetry clock ([`clock::now_ns`]).
    pub start_ns: u64,
    /// End on the telemetry clock; always `>= start_ns`.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall-clock duration of the span in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Next span id; zero is reserved for "no span".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Finished spans, appended on guard drop. Spans are stage-granular
/// (per pipeline phase, per model, per training run), so one shared
/// mutex is cheap; per-item hot-loop measurement belongs in
/// [`crate::metrics`] instead.
static FINISHED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's innermost open span id (0 = none). Registered
/// as the *capture* half of the [`hmd_util::par`] context hook.
#[must_use]
pub fn current_id() -> u64 {
    CURRENT.with(Cell::get)
}

/// Installs `id` as the calling thread's current span. Registered as
/// the *install* half of the [`hmd_util::par`] context hook; worker
/// threads call it before running their chunk.
pub fn install_id(id: u64) {
    CURRENT.with(|c| c.set(id));
}

/// An open span; dropping it records the span. Inert (and free beyond
/// one atomic load) when telemetry is disabled.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
}

/// Opens a span named `name` on the calling thread. When telemetry is
/// disabled this allocates nothing and records nothing.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { state: None };
    }
    crate::ensure_par_hook();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    SpanGuard {
        state: Some(OpenSpan { id, parent, name: name.to_owned(), start_ns: clock::now_ns() }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.state.take() else { return };
        let end_ns = clock::now_ns();
        CURRENT.with(|c| c.set(open.parent));
        FINISHED.lock().unwrap_or_else(PoisonError::into_inner).push(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            end_ns,
        });
    }
}

/// A copy of all finished spans, sorted by `(start_ns, id)` so export
/// order does not depend on which thread finished first.
#[must_use]
pub fn snapshot() -> Vec<SpanRecord> {
    let mut spans = FINISHED.lock().unwrap_or_else(PoisonError::into_inner).clone();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    spans
}

/// Discards all finished spans.
pub(crate) fn reset() {
    FINISHED.lock().unwrap_or_else(PoisonError::into_inner).clear();
}
