//! Counters, gauges and log₂ histograms, sharded per worker thread.
//!
//! Hot loops (per-row prediction, per-sample attack optimization, A2C
//! updates) record into a per-thread shard — no cross-core cache-line
//! bouncing — and readers merge shards on demand. A *gated* metric
//! (anything obtained from the registry functions [`counter`],
//! [`gauge`], [`histogram`]) is a no-op while telemetry is disabled;
//! an *ungated* one (the `standalone` constructors) always records, so
//! plain measurement code (e.g. `hmd_ml::measure_latency_ms`) can use
//! the same data structures for its own arithmetic.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of shards; worker threads hash onto these round-robin.
const SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds zeros, bucket `b ≥ 1` holds
/// values in `[2^(b−1), 2^b)`, and the last bucket absorbs everything
/// from `2^62` up.
pub const BUCKETS: usize = 64;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PadCell(AtomicU64);

/// The calling thread's shard index, assigned round-robin on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// A monotonically increasing sum, sharded per worker.
#[derive(Debug)]
pub struct Counter {
    gated: bool,
    shards: [PadCell; SHARDS],
}

impl Counter {
    fn with_gate(gated: bool) -> Self {
        Self { gated, shards: std::array::from_fn(|_| PadCell::default()) }
    }

    /// An ungated counter that records regardless of the telemetry
    /// switch — a plain data structure, not registered for export.
    #[must_use]
    pub fn standalone() -> Self {
        Self::with_gate(false)
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.gated && !crate::enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged value across all shards.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value-wins instantaneous measurement (reward moving average,
/// critic loss, …) plus a count of how many times it was set.
#[derive(Debug)]
pub struct Gauge {
    gated: bool,
    bits: AtomicU64,
    sets: AtomicU64,
}

impl Gauge {
    fn with_gate(gated: bool) -> Self {
        Self { gated, bits: AtomicU64::new(0.0f64.to_bits()), sets: AtomicU64::new(0) }
    }

    /// An ungated gauge (always records, not registered for export).
    #[must_use]
    pub fn standalone() -> Self {
        Self::with_gate(false)
    }

    /// Stores `v` as the gauge's current value.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.gated && !crate::enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.sets.fetch_add(1, Ordering::Relaxed);
    }

    /// The last stored value (`0.0` before any set).
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// How many times the gauge was set.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.sets.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.sets.store(0, Ordering::Relaxed);
    }
}

/// One shard of a histogram: the bucket counts plus the raw sum, so
/// the merged view recovers the exact mean.
#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// A fixed-bucket log₂ histogram of `u64` observations (typically
/// nanoseconds), sharded per worker.
#[derive(Debug)]
pub struct Histogram {
    gated: bool,
    shards: Box<[HistShard]>,
}

/// The bucket a value lands in: 0 for zero, else `floor(log2(v)) + 1`,
/// saturating at the last bucket.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// The half-open value range `[lo, hi)` covered by bucket `b` (the last
/// bucket's `hi` is `u64::MAX`).
///
/// # Panics
///
/// Panics when `b >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket out of range");
    match b {
        0 => (0, 1),
        _ if b == BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
        _ => (1u64 << (b - 1), 1u64 << b),
    }
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Merged per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observation count.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (`0.0` when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]` of the recorded values.
    ///
    /// The estimator walks the cumulative bucket counts to the bucket
    /// holding the target rank and interpolates *log-linearly* inside
    /// it: bucket `b ≥ 1` covers `[2^(b−1), 2^b)`, so a fraction `f`
    /// into the bucket maps to `lo · (hi/lo)^f` — the natural
    /// interpolation for exponentially sized buckets (linear in the
    /// exponent). Bucket 0 (zeros) yields `0.0`; the open-ended last
    /// bucket is treated as one octave wide. Returns `0.0` for an
    /// empty histogram.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        if self.count == 0 {
            return 0.0;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum as f64 >= target {
                if b == 0 {
                    return 0.0;
                }
                let (lo, hi) = bucket_bounds(b);
                let lo = lo as f64;
                // the last bucket is open-ended; interpolate as if it
                // spanned one octave like every other bucket
                let hi = if b == BUCKETS - 1 { lo * 2.0 } else { hi as f64 };
                let frac = ((target - (cum - n) as f64) / n as f64).clamp(0.0, 1.0);
                return lo * (hi / lo).powf(frac);
            }
        }
        // unreachable in practice (cum == count >= target at the last
        // non-empty bucket), kept as a defensive fall-through
        0.0
    }

    /// Median estimate (see [`Self::quantile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Self::quantile`]).
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Self::quantile`]).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Histogram {
    fn with_gate(gated: bool) -> Self {
        let shards: Vec<HistShard> = (0..SHARDS).map(|_| HistShard::default()).collect();
        Self { gated, shards: shards.into_boxed_slice() }
    }

    /// An ungated histogram (always records, not registered for
    /// export) — usable as a plain statistics accumulator.
    #[must_use]
    pub fn standalone() -> Self {
        Self::with_gate(false)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.gated && !crate::enabled() {
            return;
        }
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a non-negative float scaled by `scale` (e.g. a
    /// perturbation norm at `scale = 1e6` → micro-units), saturating at
    /// the bucket range edges.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn record_scaled(&self, v: f64, scale: f64) {
        let scaled = (v * scale).max(0.0);
        self.record(if scaled.is_finite() { scaled as u64 } else { u64::MAX });
    }

    /// Merges all shards into a snapshot.
    #[must_use]
    pub fn merged(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &*self.shards {
            for (b, a) in buckets.iter_mut().zip(&shard.buckets) {
                *b += a.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum }
    }

    fn reset(&self) {
        for shard in &*self.shards {
            for a in &shard.buckets {
                a.store(0, Ordering::Relaxed);
            }
            shard.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// The global metric registry. Handles are leaked (`&'static`) so hot
/// call sites pay the name lookup once, outside their loops; names are
/// bounded (per model / per agent), so the leak is bounded too.
/// `BTreeMap` keeps export order deterministic.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// The registered (gated) counter named `name`, created on first use.
pub fn counter(name: &str) -> &'static Counter {
    with_registry(|r| {
        *r.counters
            .entry(name.to_owned())
            .or_insert_with(|| Box::leak(Box::new(Counter::with_gate(true))))
    })
}

/// The registered (gated) gauge named `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    with_registry(|r| {
        *r.gauges
            .entry(name.to_owned())
            .or_insert_with(|| Box::leak(Box::new(Gauge::with_gate(true))))
    })
}

/// The registered (gated) histogram named `name`, created on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    with_registry(|r| {
        *r.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Box::leak(Box::new(Histogram::with_gate(true))))
    })
}

/// All registered counters with merged values, in name order.
#[must_use]
pub fn counters_snapshot() -> Vec<(String, u64)> {
    with_registry(|r| r.counters.iter().map(|(k, c)| (k.clone(), c.value())).collect())
}

/// All registered gauges as `(name, value, sets)`, in name order.
#[must_use]
pub fn gauges_snapshot() -> Vec<(String, f64, u64)> {
    with_registry(|r| {
        r.gauges.iter().map(|(k, g)| (k.clone(), g.value(), g.sets())).collect()
    })
}

/// All registered histograms with merged snapshots, in name order.
#[must_use]
pub fn histograms_snapshot() -> Vec<(String, HistogramSnapshot)> {
    with_registry(|r| r.histograms.iter().map(|(k, h)| (k.clone(), h.merged())).collect())
}

/// Zeroes every registered metric, keeping the names registered.
pub(crate) fn reset() {
    with_registry(|r| {
        r.counters.values().for_each(|c| c.reset());
        r.gauges.values().for_each(|g| g.reset());
        r.histograms.values().for_each(|h| h.reset());
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_counter_sums_across_shards() {
        let c = Counter::standalone();
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn gauge_keeps_last_value_and_set_count() {
        let g = Gauge::standalone();
        assert_eq!(g.value(), 0.0);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.value(), -2.25);
        assert_eq!(g.sets(), 2);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // every bucket's bounds round-trip through bucket_index
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b, "lo bound of bucket {b}");
            assert_eq!(bucket_index(hi - 1), b, "hi bound of bucket {b}");
            assert!(lo < hi);
        }
    }

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        let s = h.merged();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert!((s.mean() - 206.0).abs() < 1e-12);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[11], 1); // 1024
    }

    #[test]
    fn record_scaled_clamps_negatives_and_infinities() {
        let h = Histogram::standalone();
        h.record_scaled(-1.0, 1e6); // clamps to 0
        h.record_scaled(2.5, 1e6); // 2_500_000
        h.record_scaled(f64::INFINITY, 1e6); // saturates
        let s = h.merged();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[bucket_index(2_500_000)], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn quantile_interpolates_log_linearly_within_a_bucket() {
        // 100 observations, all in bucket [64, 128): the estimator sees
        // only the bucket, so quantile(f) must equal 64 · 2^f exactly.
        let h = Histogram::standalone();
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.merged();
        assert!((s.quantile(0.0) - 64.0).abs() < 1e-9);
        assert!((s.p50() - 64.0 * 2f64.powf(0.5)).abs() < 1e-9);
        assert!((s.quantile(1.0) - 128.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_exact_on_log_uniform_data() {
        // one observation per octave: 1, 2, 4, …, 512 (buckets 1..=10).
        // Rank q·10 lands exactly on bucket edges: p50 → top of the
        // 5th non-empty bucket, i.e. 32.
        let h = Histogram::standalone();
        for k in 0..10u32 {
            h.record(1u64 << k);
        }
        let s = h.merged();
        assert!((s.p50() - 32.0).abs() < 1e-9, "p50 {}", s.p50());
        assert!((s.quantile(0.1) - 2.0).abs() < 1e-9);
        assert!((s.quantile(1.0) - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_bounded() {
        let h = Histogram::standalone();
        for v in [3u64, 17, 17, 90, 250, 1023, 5000, 70_000] {
            h.record(v);
        }
        let s = h.merged();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "p50 {p50}, p95 {p95}, p99 {p99}");
        // p99 of 8 samples lives in the top sample's bucket [65536, 131072)
        assert!((65536.0..=131072.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn quantile_handles_zeros_empty_and_saturation() {
        let empty = Histogram::standalone().merged();
        assert_eq!(empty.p50(), 0.0);
        let h = Histogram::standalone();
        h.record(0);
        h.record(0);
        h.record(u64::MAX);
        let s = h.merged();
        assert_eq!(s.quantile(0.3), 0.0); // inside the zero bucket
        // top rank falls in the saturating last bucket; estimate stays
        // within its (synthetic one-octave) bounds
        let top = s.quantile(1.0);
        let (lo, _) = bucket_bounds(BUCKETS - 1);
        #[allow(clippy::cast_precision_loss)]
        let lo = lo as f64;
        assert!(top >= lo && top <= lo * 2.0, "top {top}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = Histogram::standalone().merged().quantile(1.5);
    }

    #[test]
    fn registry_reuses_handles_by_name() {
        let a = counter("test.registry.reuse");
        let b = counter("test.registry.reuse");
        assert!(std::ptr::eq(a, b));
    }
}
