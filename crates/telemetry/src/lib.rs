//! Zero-dependency observability substrate for the HMD workspace.
//!
//! The paper's later phases (the UCB constraint controller, the
//! SHA-256 + metric-drift integrity monitor) are run-time monitoring
//! components; this crate gives the whole pipeline the matching
//! run-time *observability*: where the wall-clock goes, how hot loops
//! behave, and what the integrity monitor concluded — without adding a
//! single external dependency (hermetic-build policy, see DESIGN.md).
//!
//! Three layers:
//!
//! * [`span`] — hierarchical RAII timing spans. [`span()`] returns a
//!   guard; dropping it (including during a panic unwind) records the
//!   span. Each thread keeps its own current-span cell, and the
//!   substrate registers a context hook with [`hmd_util::par`] so spans
//!   opened inside parallel workers attribute to the span that spawned
//!   the region.
//! * [`metrics`] — atomic counters, gauges and fixed-bucket log₂
//!   histograms, sharded per worker thread and merged on read. Cheap
//!   enough to leave in hot loops: a disabled metric is one relaxed
//!   atomic load.
//! * [`event`](event()) — timestamped structured payloads
//!   ([`hmd_util::json::Json`]), used by the integrity monitor to emit
//!   drift assessments.
//!
//! [`export::export`] renders everything to a `TELEMETRY_<name>.json`
//! artifact plus a flamegraph-compatible collapsed-stack text file.
//!
//! # Enabling
//!
//! Telemetry is off by default. It turns on when the `HMD_TRACE`
//! environment variable is set to anything but `0`/empty, or when a
//! test/bench installs [`set_enabled_override`]. Artifacts are written
//! to `HMD_TRACE_OUT` (default: the current directory), but only when
//! `HMD_TRACE` itself is set — an override alone never touches the
//! filesystem, so tests can trace without littering.
//!
//! # Determinism contract
//!
//! Telemetry is provably non-perturbing: it never draws from any RNG
//! and never feeds a value back into the computation it observes, so
//! same-seed pipeline outputs are byte-identical with tracing on, off,
//! and at any thread count (`tests/determinism.rs` pins this).

use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

pub mod clock;
pub mod export;
pub mod metrics;
pub mod span;

mod events;

pub use events::{event, EventRecord};
pub use export::{
    collapsed_stacks, maybe_export, prometheus_histogram, prometheus_histogram_with_exemplars,
    prometheus_name, prometheus_text, render_tree, snapshot_json, Exemplar,
};
pub use span::{span, SpanGuard, SpanRecord};

/// Process-wide enablement override: `-1` = none (consult the
/// environment), `0` = forced off, `1` = forced on.
static ENABLED_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Whether `HMD_TRACE` enables tracing, parsed once per process.
fn env_enabled() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("HMD_TRACE").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Whether telemetry is currently recording. One relaxed atomic load on
/// the fast path — the cost a disabled span or metric pays.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => env_enabled(),
    }
}

/// Installs (or clears, with `None`) a process-wide enablement override
/// that takes precedence over `HMD_TRACE`. Used by tests and benches to
/// A/B tracing without touching the environment; flipping it never
/// changes computed results (see the determinism contract above).
pub fn set_enabled_override(enabled: Option<bool>) {
    let v = match enabled {
        None => -1,
        Some(false) => 0,
        Some(true) => 1,
    };
    ENABLED_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Clears all recorded spans, metric values and events (registered
/// metric names survive with zeroed values). For tests and benches that
/// need a clean slate; the span-id counter and clock anchor are *not*
/// reset, so ids stay unique across resets.
pub fn reset() {
    span::reset();
    metrics::reset();
    events::reset();
}

/// Registers the span-context propagation hook with [`hmd_util::par`]
/// exactly once, so parallel regions attribute to their spawning span.
pub(crate) fn ensure_par_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        hmd_util::par::set_context_hook(span::current_id, span::install_id);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_flips_enablement() {
        set_enabled_override(Some(true));
        assert!(enabled());
        set_enabled_override(Some(false));
        assert!(!enabled());
        set_enabled_override(None);
    }
}
