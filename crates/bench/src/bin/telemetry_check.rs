//! CI gate for telemetry artifacts: validates that a traced run's
//! `TELEMETRY_*.json` parses against the `hmd-telemetry-v1` schema and
//! carries a structurally sound trace — unique span ids, resolvable
//! parents, monotonic times, consistent histograms, ordered events —
//! so an instrumentation refactor that silently breaks the trace fails
//! the pipeline instead of shipping an unreadable artifact.
//!
//! Usage:
//!   `telemetry_check <TELEMETRY_name.json> [--require-span NAME]...`
//! Exits non-zero with a diagnostic on the first violation.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use hmd_util::json::Json;

const SCHEMA: &str = "hmd-telemetry-v1";

fn num(v: &Json, ctx: &str, field: &str) -> Result<f64, String> {
    v.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric {field:?}"))
}

fn check(path: &Path, required_spans: &[String]) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let doc =
        Json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let ctx = path.display().to_string();

    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("{ctx}: missing string field \"schema\""))?;
    if schema != SCHEMA {
        return Err(format!("{ctx}: schema {schema:?}, expected {SCHEMA:?}"));
    }
    if doc.get("name").and_then(|s| s.as_str()).is_none_or(str::is_empty) {
        return Err(format!("{ctx}: missing/empty \"name\""));
    }
    if doc.get("clock_unit").and_then(|s| s.as_str()) != Some("ns") {
        return Err(format!("{ctx}: clock_unit must be \"ns\""));
    }

    // Spans: unique nonzero ids, resolvable parents, monotonic times,
    // sorted by start, children within their parent's start.
    let spans = doc
        .get("spans")
        .and_then(|s| s.as_arr())
        .ok_or_else(|| format!("{ctx}: missing array field \"spans\""))?;
    let mut starts: HashMap<i64, f64> = HashMap::new();
    let mut prev_start = f64::NEG_INFINITY;
    for (i, s) in spans.iter().enumerate() {
        let sctx = format!("{ctx}: span #{i}");
        let id = num(s, &sctx, "id")? as i64;
        if id <= 0 {
            return Err(format!("{sctx}: id must be positive, got {id}"));
        }
        let start = num(s, &sctx, "start_ns")?;
        let end = num(s, &sctx, "end_ns")?;
        if end < start {
            return Err(format!("{sctx}: end_ns {end} < start_ns {start}"));
        }
        if start < prev_start {
            return Err(format!("{sctx}: spans not sorted by start_ns"));
        }
        prev_start = start;
        if s.get("name").and_then(|n| n.as_str()).is_none_or(str::is_empty) {
            return Err(format!("{sctx}: missing/empty \"name\""));
        }
        if starts.insert(id, start).is_some() {
            return Err(format!("{sctx}: duplicate span id {id}"));
        }
    }
    for (i, s) in spans.iter().enumerate() {
        let sctx = format!("{ctx}: span #{i}");
        let parent = num(s, &sctx, "parent")? as i64;
        if parent == 0 {
            continue;
        }
        let Some(&parent_start) = starts.get(&parent) else {
            return Err(format!("{sctx}: parent {parent} not present in the trace"));
        };
        let start = num(s, &sctx, "start_ns")?;
        if start < parent_start {
            return Err(format!("{sctx}: starts before its parent ({start} < {parent_start})"));
        }
    }
    for required in required_spans {
        let found = spans
            .iter()
            .any(|s| s.get("name").and_then(|n| n.as_str()) == Some(required));
        if !found {
            return Err(format!("{ctx}: required span {required:?} missing from the trace"));
        }
    }

    // Histograms: count must equal the sum of bucket counts.
    if let Some(Json::Obj(histograms)) = doc.get("histograms") {
        for (name, h) in histograms {
            let hctx = format!("{ctx}: histogram {name:?}");
            let count = num(h, &hctx, "count")?;
            let buckets = h
                .get("buckets")
                .and_then(|b| b.as_arr())
                .ok_or_else(|| format!("{hctx}: missing \"buckets\""))?;
            let mut total = 0.0;
            for (i, b) in buckets.iter().enumerate() {
                let bctx = format!("{hctx} bucket #{i}");
                let lo = num(b, &bctx, "lo")?;
                let hi = num(b, &bctx, "hi")?;
                if hi <= lo {
                    return Err(format!("{bctx}: empty value range [{lo}, {hi})"));
                }
                total += num(b, &bctx, "count")?;
            }
            if (total - count).abs() > 0.5 {
                return Err(format!("{hctx}: count {count} != bucket sum {total}"));
            }
        }
    } else {
        return Err(format!("{ctx}: missing object field \"histograms\""));
    }

    // Events: sorted by timestamp, each with kind + payload.
    let events = doc
        .get("events")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| format!("{ctx}: missing array field \"events\""))?;
    let mut prev_t = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let ectx = format!("{ctx}: event #{i}");
        let t = num(e, &ectx, "t_ns")?;
        if t < prev_t {
            return Err(format!("{ectx}: events not sorted by t_ns"));
        }
        prev_t = t;
        if e.get("kind").and_then(|k| k.as_str()).is_none_or(str::is_empty) {
            return Err(format!("{ectx}: missing/empty \"kind\""));
        }
        if e.get("payload").is_none() {
            return Err(format!("{ectx}: missing \"payload\""));
        }
    }

    Ok(format!("{} spans, {} events", spans.len(), events.len()))
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required_spans = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require-span" {
            match args.next() {
                Some(name) => required_spans.push(name),
                None => {
                    eprintln!("telemetry_check: --require-span needs a span name");
                    return ExitCode::FAILURE;
                }
            }
        } else if path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("telemetry_check: unexpected argument {arg:?}");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: telemetry_check <TELEMETRY_name.json> [--require-span NAME]...");
        return ExitCode::FAILURE;
    };
    match check(Path::new(&path), &required_spans) {
        Ok(summary) => {
            println!("telemetry_check: {path}: OK ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("telemetry_check: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
