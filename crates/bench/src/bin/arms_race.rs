//! Extension experiment: the adaptive arms race the paper's feedback
//! loop implies. Each round the attacker re-mounts a decision-based
//! boundary attack against the *current* defender; the defender absorbs
//! the crafted samples through [`hmd_core::Framework::retraining_round`]
//! and refits.
//!
//! The interesting series is the attacker's *cost*: a boundary attack can
//! always reach the benign region eventually, but the perturbation it
//! needs (distance from the true malware signature) grows as the
//! defender hardens — evasions drift away from real malware behaviour.

use hmd_adversarial::{Attack, BoundaryAttack, BoundaryAttackConfig};
use hmd_bench::{standard_config, EXPERIMENT_SEED};
use hmd_core::Framework;
use hmd_ml::{evaluate, Classifier, RandomForest};
use hmd_tabular::{Class, Dataset};

const ROUNDS: usize = 5;

fn main() {
    println!("Adaptive arms race (extension experiment)\n");
    let fw = Framework::new(standard_config(EXPERIMENT_SEED));
    let bundle = fw.prepare_data().expect("prepare");

    let mut training = bundle.train.clone();
    let mut models: Vec<Box<dyn Classifier>> = vec![Box::new(RandomForest::new())];
    let targets = training.binary_targets(Class::is_attack);
    models[0].fit(&training, &targets).expect("fit");

    let test_malware = bundle.test.filter(Class::is_attack);
    let probe: Dataset = test_malware
        .subset(&(0..test_malware.len().min(120)).collect::<Vec<_>>())
        .expect("subset");
    let clean_targets = bundle.test.binary_targets(Class::is_attack);

    println!(
        "{:>6} {:>12} {:>16} {:>12} {:>12}",
        "round", "attack-succ", "mean-perturb", "clean F1", "training-size"
    );
    for round in 0..ROUNDS {
        // attacker probes the current defender (decision access only)
        let attack = BoundaryAttack::new(
            models[0].as_ref(),
            &bundle.train,
            BoundaryAttackConfig::default(),
        )
        .expect("attack");
        let result = attack
            .generate(&probe, EXPERIMENT_SEED ^ round as u64)
            .expect("generate");

        let clean = evaluate(models[0].as_ref(), &bundle.test, &clean_targets).expect("eval");
        println!(
            "{round:>6} {:>11.1}% {:>16.3} {:>12.2} {:>13}",
            result.success_rate() * 100.0,
            result.mean_perturbation(),
            clean.f1,
            training.len()
        );

        // defender absorbs the evading samples (they are adversarial
        // malware and get labeled as such by the feedback loop)
        let quarantine = result.evading_subset().expect("subset");
        let mut labeled = Dataset::new(quarantine.feature_names().to_vec()).expect("schema");
        for (row, _) in &quarantine {
            labeled.push(row, Class::Adversarial).expect("push");
        }
        Framework::retraining_round(&mut models, &mut training, &labeled).expect("retrain");
    }
    println!(
        "\nexpected shape: success stays high (decision-based attacks always \
         reach benign territory) but the required perturbation grows round \
         over round — evasion gets costlier — while clean F1 is preserved."
    );
}
