//! Ablation studies over the framework's design choices (DESIGN.md):
//!
//! 1. feature-selection width (MI top-k vs the paper's fixed 4);
//! 2. LowProFool λ (imperceptibility weight) vs success rate and
//!    perturbation size;
//! 3. UCB exploration constant vs controller convergence;
//! 4. bandit algorithm for the controller (UCB1 vs ε-greedy vs Thompson);
//! 5. perf multiplexing-noise magnitude vs detection quality;
//! 6. counter multiplexing on/off vs detection quality.

use hmd_bench::{standard_config, EXPERIMENT_SEED};
use hmd_core::{FeatureSelection, Framework};
use hmd_adversarial::{Attack, LowProFool, LowProFoolConfig};
use hmd_ml::{evaluate, Classifier, Gbdt};
use hmd_rl::{
    BanditPolicy, ConstraintController, ConstraintKind, ControllerConfig, EpsilonGreedy,
    ModelProfile, ThompsonSampling, Ucb,
};
use hmd_tabular::Class;
use hmd_util::rng::prelude::*;

fn main() {
    println!("Ablation studies\n");
    let base_config = standard_config(EXPERIMENT_SEED);

    // ---- 1. feature width ----
    println!("1) feature-selection width (MI top-k), GBDT baseline F1:");
    for k in [2usize, 4, 8, 16, 35] {
        let mut config = base_config.clone();
        config.features = FeatureSelection::MutualInfo { k, bins: 32 };
        let fw = Framework::new(config);
        let bundle = fw.prepare_data().expect("prepare");
        let targets = bundle.train.binary_targets(Class::is_attack);
        let mut model = Gbdt::new();
        model.fit(&bundle.train, &targets).expect("fit");
        let test_targets = bundle.test.binary_targets(Class::is_attack);
        let m = evaluate(&model, &bundle.test, &test_targets).expect("eval");
        println!("   k={k:<3} f1={:.3} auc={:.3}", m.f1, m.auc);
    }

    // ---- 2. LowProFool λ ----
    println!("\n2) LowProFool λ vs success rate / perturbation:");
    let fw = Framework::new(base_config.clone());
    let bundle = fw.prepare_data().expect("prepare");
    let malware = bundle.test.filter(Class::is_attack);
    for lambda in [0.0, 0.5, 1.0, 4.0, 16.0] {
        let attack = LowProFool::fit_with_config(
            &bundle.train,
            LowProFoolConfig { lambda, ..LowProFoolConfig::default() },
        )
        .expect("fit attack");
        let result = attack.generate(&malware, EXPERIMENT_SEED).expect("generate");
        println!(
            "   λ={lambda:<5} success={:.3} mean-perturbation={:.3}",
            result.success_rate(),
            result.mean_perturbation()
        );
    }

    // ---- 3. UCB exploration ----
    println!("\n3) UCB exploration constant vs pulls on the converged arm:");
    let attacks = fw.generate_attacks(&bundle).expect("attacks");
    let merged = Framework::merged_training_set(&bundle, &attacks).expect("merge");
    let targets = merged.binary_targets(Class::is_attack);
    let mut models = hmd_ml::classical_models();
    for m in &mut models {
        m.fit(&merged, &targets).expect("fit");
    }
    let profiles: Vec<ModelProfile> = models
        .iter()
        .map(|m| ModelProfile {
            name: m.name().to_owned(),
            latency_ms: 0.01,
            size_bytes: m.size_bytes(),
        })
        .collect();
    for exploration in [0.0, 0.4, 0.8, 1.6, 3.2] {
        let c = ConstraintController::train(
            ConstraintKind::BestDetection,
            &models,
            profiles.clone(),
            &merged,
            &targets,
            ControllerConfig { exploration, ..ControllerConfig::default() },
        )
        .expect("controller");
        let pulls = c.ucb().counts();
        let best = c.selected_model();
        let share = pulls[best] as f64 / pulls.iter().sum::<u64>() as f64;
        println!(
            "   c={exploration:<4} -> {} ({:.0}% of pulls on converged arm)",
            profiles[best].name,
            share * 100.0
        );
    }

    // ---- 4. bandit algorithm for model selection ----
    println!("\n4) bandit algorithm on the model-selection task (reward = correct):");
    {
        let targets_vec = merged.binary_targets(Class::is_attack);
        let mut policies: Vec<Box<dyn BanditPolicy>> = vec![
            Box::new(Ucb::new(models.len(), 0.8)),
            Box::new(EpsilonGreedy::new(models.len(), 0.1)),
            Box::new(ThompsonSampling::new(models.len())),
        ];
        for policy in &mut policies {
            let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
            let mut reward_sum = 0.0;
            let mut pulls = 0u64;
            for (i, &target) in targets_vec.iter().enumerate() {
                let arm = policy.select(&mut rng);
                let row = merged.row(i).expect("row");
                let correct =
                    models[arm].predict_row(row).expect("predict") == (target == 1.0);
                let reward = f64::from(correct);
                reward_sum += reward;
                pulls += 1;
                policy.update(arm, reward);
            }
            println!(
                "   {:<16} converged on {} (mean reward {:.3} over {} pulls)",
                policy.name(),
                models[policy.best_arm()].name(),
                reward_sum / pulls as f64,
                pulls
            );
        }
    }

    // ---- 5. multiplexing-noise magnitude ----
    println!("\n5) perf multiplexing noise vs detection quality (GBDT):");
    for noise in [0.0, 0.015, 0.05, 0.15, 0.4] {
        let mut config = base_config.clone();
        config.corpus.perf.mux_noise = noise;
        let fw = Framework::new(config);
        let bundle = fw.prepare_data().expect("prepare");
        let targets = bundle.train.binary_targets(Class::is_attack);
        let mut model = Gbdt::new();
        model.fit(&bundle.train, &targets).expect("fit");
        let test_targets = bundle.test.binary_targets(Class::is_attack);
        let m = evaluate(&model, &bundle.test, &test_targets).expect("eval");
        println!("   noise={noise:<6} f1={:.3} auc={:.3}", m.f1, m.auc);
    }

    // ---- 6. counter multiplexing ----
    println!("\n6) counter multiplexing (35 events / 4 slots) vs direct counting:");
    for (label, slots) in [("multiplexed (4 slots)", 4usize), ("direct (35 slots)", 35)] {
        let mut config = base_config.clone();
        config.corpus.perf.hardware_slots = slots;
        let fw = Framework::new(config);
        let bundle = fw.prepare_data().expect("prepare");
        let targets = bundle.train.binary_targets(Class::is_attack);
        let mut model = Gbdt::new();
        model.fit(&bundle.train, &targets).expect("fit");
        let test_targets = bundle.test.binary_targets(Class::is_attack);
        let m = evaluate(&model, &bundle.test, &test_targets).expect("eval");
        println!("   {label:<22} f1={:.3} auc={:.3}", m.f1, m.auc);
    }
}
