//! Regenerates **Figure 4(a)**: the three constraint-aware RL agents —
//! detection rate (F1), AUC, precision, recall, plus the latency and
//! memory footprint of the model each agent converged on, and the
//! paper's Overhead (latency × memory) and Efficiency (F1 / overhead)
//! derived metrics.

use hmd_bench::{run_standard, EXPERIMENT_SEED};

fn main() {
    println!("Figure 4(a) — constraint-aware agents\n");
    let report = run_standard(EXPERIMENT_SEED);
    println!(
        "{:<28} {:>9} {:>6} {:>6} {:>6} {:>6} {:>12} {:>10} {:>12} {:>12}",
        "agent", "selected", "F1", "AUC", "prec", "rec", "latency(ms)", "size", "overhead", "efficiency"
    );
    for c in &report.controllers {
        println!(
            "{:<28} {:>9} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>12.5} {:>9}B {:>12.3} {:>12.1}",
            c.agent,
            c.selected_model,
            c.metrics.f1,
            c.metrics.auc,
            c.metrics.precision,
            c.metrics.recall,
            c.latency_ms,
            c.size_bytes,
            c.overhead(),
            c.efficiency()
        );
    }
    println!(
        "\nexpected shape: Agent 1/2 converge on cheap models with fair F1; \
         Agent 3 converges on the strongest (heaviest) detector."
    );
}
