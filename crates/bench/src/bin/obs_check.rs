//! CI gate for the serving endpoints: scrapes a running `serve`
//! process, validates the Prometheus exposition and the health/snapshot
//! routes, and (optionally) shuts the service down.
//!
//! Usage: `obs_check <http://host:port | host:port> [--wait-samples N]
//! [--expect-transitions N] [--expect-shards N] [--quit]`
//!
//! `--wait-samples N` polls `/metrics` until the all-time
//! `hmd_serving_samples_total` counter reaches `N` (the serve process
//! streams in the background after printing `SERVE_ADDR`), so the
//! validation runs against a finished session instead of a cold start.
//!
//! `--expect-shards N` checks the fleet's label separation: exactly `N`
//! `hmd_serving_shard_samples_total{shard="i"}` series, whose values
//! sum to the aggregate `hmd_serving_samples_total`.
//!
//! `--expect-incident` validates the forensic pipeline: the
//! `hmd_serving_incidents_total` counter must be ≥ 1, the `/incidents`
//! index must list at least one bundle, and the first bundle fetched
//! from `/incidents/<id>.json` must carry the `hmd-incident-v2` schema
//! with a non-empty window array. `--save-incident PATH` writes that
//! bundle to disk so the `replay` binary can re-execute it.
//!
//! `--expect-history` validates `/history.json`: the tier shape
//! (`fine_every`/`fold`), a non-empty merged fine tier, a per-shard
//! section, and that the merged counters equal the sum of the aligned
//! per-shard counters. `--expect-traces` validates `/traces.json`: at
//! least one promoted trace whose cumulative stage array is monotone
//! non-decreasing, plus a working `/dashboard` page.
//!
//! Exits non-zero with a diagnostic on the first failure.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use hmd_obs::validate_exposition;
use hmd_util::json::Json;

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);
const WAIT_BUDGET: Duration = Duration::from_secs(300);

/// The gauges and counters a serving exposition must carry.
const REQUIRED_SERIES: &[&str] = &[
    "hmd_serving_samples_total",
    "hmd_serving_detection_rate",
    "hmd_serving_adversarial_flag_rate",
    "hmd_serving_latency_ns_p50",
    "hmd_serving_latency_ns_p95",
    "hmd_serving_latency_ns_p99",
    "hmd_serving_model_latency_p50",
    "hmd_serving_model_latency_p95",
    "hmd_serving_model_latency_p99",
    "hmd_serving_alert_transitions_total",
    "hmd_serving_healthy",
    "hmd_serving_model_generation",
    "hmd_serving_model_swaps_total",
    "hmd_serving_retrain_absorbed_total",
    "hmd_serving_incidents_total",
    "hmd_serving_calibration_quarantined_total",
];

struct Args {
    addr: String,
    wait_samples: Option<f64>,
    expect_transitions: u64,
    expect_shards: Option<usize>,
    expect_generation: Option<f64>,
    expect_incident: bool,
    expect_history: bool,
    expect_traces: bool,
    save_incident: Option<String>,
    quit: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1);
    let Some(target) = raw.next() else {
        return Err("usage: obs_check <addr> [--wait-samples N] [--expect-transitions N] \
                    [--expect-shards N] [--expect-generation N] [--expect-incident] \
                    [--expect-history] [--expect-traces] [--save-incident PATH] [--quit]"
            .into());
    };
    let mut args = Args {
        addr: target.trim_start_matches("http://").trim_end_matches('/').to_owned(),
        wait_samples: None,
        expect_transitions: 0,
        expect_shards: None,
        expect_generation: None,
        expect_incident: false,
        expect_history: false,
        expect_traces: false,
        save_incident: None,
        quit: false,
    };
    while let Some(flag) = raw.next() {
        match flag.as_str() {
            "--wait-samples" => {
                let v = raw.next().ok_or("--wait-samples needs a value")?;
                args.wait_samples =
                    Some(v.parse().map_err(|_| format!("bad --wait-samples: {v:?}"))?);
            }
            "--expect-transitions" => {
                let v = raw.next().ok_or("--expect-transitions needs a value")?;
                args.expect_transitions =
                    v.parse().map_err(|_| format!("bad --expect-transitions: {v:?}"))?;
            }
            "--expect-shards" => {
                let v = raw.next().ok_or("--expect-shards needs a value")?;
                args.expect_shards =
                    Some(v.parse().map_err(|_| format!("bad --expect-shards: {v:?}"))?);
            }
            "--expect-generation" => {
                let v = raw.next().ok_or("--expect-generation needs a value")?;
                args.expect_generation =
                    Some(v.parse().map_err(|_| format!("bad --expect-generation: {v:?}"))?);
            }
            "--expect-incident" => args.expect_incident = true,
            "--expect-history" => args.expect_history = true,
            "--expect-traces" => args.expect_traces = true,
            "--save-incident" => {
                let v = raw.next().ok_or("--save-incident needs a path")?;
                args.save_incident = Some(v);
            }
            "--quit" => args.quit = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One GET against the service; returns (status, body).
fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let err = |stage: &str, e: std::io::Error| format!("GET {path}: {stage}: {e}");
    let mut s = TcpStream::connect(addr).map_err(|e| err("connect", e))?;
    s.set_read_timeout(Some(SCRAPE_TIMEOUT)).map_err(|e| err("timeout", e))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: obs-check\r\n\r\n").map_err(|e| err("send", e))?;
    s.shutdown(Shutdown::Write).map_err(|e| err("half-close", e))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).map_err(|e| err("read", e))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("GET {path}: malformed status line: {raw:.60?}"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

/// The value of an unlabeled series on a metrics page.
fn series_value(page: &str, name: &str) -> Option<f64> {
    page.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l[name.len()..].trim().parse().ok())
}

/// Checks the per-shard label separation of a fleet exposition: the
/// `hmd_serving_shard_samples_total{shard="i"}` family must carry
/// exactly `want` shards whose totals sum to the aggregate counter.
fn check_shards(page: &str, want: usize) -> Result<(), String> {
    const FAMILY: &str = "hmd_serving_shard_samples_total";
    let mut sum = 0.0;
    for i in 0..want {
        let series = format!("{FAMILY}{{shard=\"{i}\"}}");
        let value = page
            .lines()
            .find_map(|l| l.strip_prefix(series.as_str()))
            .and_then(|rest| rest.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("/metrics is missing {series}"))?;
        sum += value;
    }
    let labeled = page.lines().filter(|l| l.starts_with(&format!("{FAMILY}{{"))).count();
    if labeled != want {
        return Err(format!("expected {want} shard series for {FAMILY}, found {labeled}"));
    }
    let aggregate = series_value(page, "hmd_serving_samples_total")
        .ok_or("/metrics is missing hmd_serving_samples_total")?;
    if (sum - aggregate).abs() > f64::EPSILON {
        return Err(format!("shard totals sum to {sum}, aggregate says {aggregate}"));
    }
    Ok(())
}

/// Validates the forensic pipeline: the incident counter, the
/// `/incidents` index, and the schema of the first bundle. Optionally
/// persists that bundle for an offline `replay` run.
fn check_incidents(args: &Args, page: &str) -> Result<(), String> {
    let captured = series_value(page, "hmd_serving_incidents_total").unwrap_or(0.0);
    if captured < 1.0 {
        return Err(format!("expected >= 1 captured incident, counter says {captured}"));
    }

    let (status, body) = get(&args.addr, "/incidents")?;
    if status != 200 {
        return Err(format!("/incidents returned {status}"));
    }
    let index = Json::parse(&body).map_err(|e| format!("/incidents is not valid JSON: {e:?}"))?;
    let rows = index
        .get("incidents")
        .and_then(Json::as_arr)
        .ok_or("/incidents is missing the incidents array")?;
    if rows.is_empty() {
        return Err("counter reports incidents but /incidents index is empty".into());
    }
    let total = index.get("total").and_then(Json::as_f64).unwrap_or(0.0);
    if total < 1.0 {
        return Err(format!("/incidents total says {total}, want >= 1"));
    }
    let id = rows[0]
        .get("id")
        .and_then(Json::as_str)
        .ok_or("/incidents rows are missing the id field")?
        .to_owned();
    println!(
        "obs_check: /incidents OK ({} retained bundle(s), {total} captured, first {id})",
        rows.len()
    );

    let (status, body) = get(&args.addr, &format!("/incidents/{id}.json"))?;
    if status != 200 {
        return Err(format!("/incidents/{id}.json returned {status}"));
    }
    let bundle =
        Json::parse(&body).map_err(|e| format!("/incidents/{id}.json is not valid JSON: {e:?}"))?;
    match bundle.get("schema").and_then(Json::as_str) {
        Some("hmd-incident-v2") => {
            // v2 bundles must carry the traces array (may be empty if
            // no flagged window was promoted before the fire edge)
            if bundle.get("traces").and_then(Json::as_arr).is_none() {
                return Err(format!("v2 bundle {id} is missing the traces array"));
            }
        }
        // a replayed service could still serve pre-trace bundles
        Some("hmd-incident-v1") => {}
        other => return Err(format!("bundle {id} schema is {other:?}, want hmd-incident-v2")),
    }
    let windows = bundle
        .get("windows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("bundle {id} is missing the windows array"))?;
    if windows.is_empty() {
        return Err(format!("bundle {id} holds no windows"));
    }
    for field in ["verdict_digest", "config", "triggers", "monitor"] {
        if bundle.get(field).is_none() {
            return Err(format!("bundle {id} is missing the {field} field"));
        }
    }
    println!("obs_check: bundle {id} OK ({} windows, {} bytes)", windows.len(), body.len());

    let (status, _) = get(&args.addr, "/incidents/no-such-incident.json")?;
    if status != 404 {
        return Err(format!("unknown incident id returned {status}, want 404"));
    }

    if let Some(path) = &args.save_incident {
        std::fs::write(path, body.as_bytes())
            .map_err(|e| format!("cannot write bundle to {path}: {e}"))?;
        println!("obs_check: bundle {id} saved to {path}");
    }
    Ok(())
}

/// Validates `/history.json`: schema + tier shape, a non-empty merged
/// fine tier, a per-shard section, and merged-equals-sum-of-shards for
/// the `samples` counter of every merged fine point.
fn check_history(args: &Args) -> Result<(), String> {
    let (status, body) = get(&args.addr, "/history.json")?;
    if status != 200 {
        return Err(format!("/history.json returned {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("/history.json is not valid JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("hmd-history-v1") => {}
        other => return Err(format!("/history.json schema is {other:?}, want hmd-history-v1")),
    }
    let tiers = doc.get("tiers").ok_or("/history.json is missing the tiers shape")?;
    let fine_every = tiers.get("fine_every").and_then(Json::as_f64).unwrap_or(0.0);
    let fold = tiers.get("fold").and_then(Json::as_f64).unwrap_or(0.0);
    if fine_every < 1.0 || fold < 2.0 {
        return Err(format!("implausible tier shape: fine_every {fine_every}, fold {fold}"));
    }
    let merged_fine = doc
        .get("merged")
        .and_then(|m| m.get("fine"))
        .and_then(Json::as_arr)
        .ok_or("/history.json is missing merged.fine")?;
    if merged_fine.is_empty() {
        return Err("merged fine tier is empty (no history point flushed yet)".into());
    }
    let per_shard = doc
        .get("per_shard")
        .and_then(Json::as_arr)
        .ok_or("/history.json is missing per_shard")?;
    if per_shard.is_empty() {
        return Err("/history.json per_shard is empty".into());
    }
    // merged counters must equal the sum of the aligned shard counters
    for point in merged_fine {
        let end = point.get("sample_end").and_then(Json::as_f64).unwrap_or(-1.0);
        let merged_samples = point.get("samples").and_then(Json::as_f64).unwrap_or(0.0);
        let mut shard_sum = 0.0;
        for shard in per_shard {
            let fine = shard
                .get("fine")
                .and_then(Json::as_arr)
                .ok_or("per_shard entry is missing its fine tier")?;
            if let Some(p) = fine
                .iter()
                .find(|p| p.get("sample_end").and_then(Json::as_f64) == Some(end))
            {
                shard_sum += p.get("samples").and_then(Json::as_f64).unwrap_or(0.0);
            }
        }
        if (merged_samples - shard_sum).abs() > f64::EPSILON {
            return Err(format!(
                "merged point at sample_end {end} says {merged_samples} samples, \
                 shards sum to {shard_sum}"
            ));
        }
    }
    println!(
        "obs_check: /history.json OK ({} merged fine point(s), {} shard(s), \
         fine_every {fine_every}, fold {fold})",
        merged_fine.len(),
        per_shard.len()
    );
    Ok(())
}

/// Validates `/traces.json` (at least one promoted trace with a
/// monotone cumulative stage array) and the `/dashboard` page.
fn check_traces(args: &Args) -> Result<(), String> {
    let (status, body) = get(&args.addr, "/traces.json")?;
    if status != 200 {
        return Err(format!("/traces.json returned {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("/traces.json is not valid JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("hmd-traces-v1") => {}
        other => return Err(format!("/traces.json schema is {other:?}, want hmd-traces-v1")),
    }
    let stages = doc
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or("/traces.json is missing the stages array")?;
    let per_shard = doc
        .get("per_shard")
        .and_then(Json::as_arr)
        .ok_or("/traces.json is missing per_shard")?;
    let mut traces = 0usize;
    for shard in per_shard {
        for ring in ["flagged", "latency_tail"] {
            let list = shard
                .get(ring)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("per_shard entry is missing its {ring} ring"))?;
            for trace in list {
                let ends = trace
                    .get("stage_latency_ns")
                    .and_then(Json::as_arr)
                    .ok_or("trace is missing stage_latency_ns")?;
                if ends.len() != stages.len() {
                    return Err(format!(
                        "trace has {} stage ends, page declares {} stages",
                        ends.len(),
                        stages.len()
                    ));
                }
                let mut prev = 0.0;
                for end in ends {
                    let v = end.as_f64().ok_or("non-numeric stage end")?;
                    if v < prev {
                        return Err(format!(
                            "stage ends not monotone: {v} after {prev} in trace at sample {:?}",
                            trace.get("sample").and_then(Json::as_f64)
                        ));
                    }
                    prev = v;
                }
                traces += 1;
            }
        }
    }
    if traces == 0 {
        return Err("expected >= 1 promoted trace, /traces.json is empty".into());
    }
    let (status, page) = get(&args.addr, "/dashboard")?;
    if status != 200 {
        return Err(format!("/dashboard returned {status}"));
    }
    if !page.contains("<!doctype html>") || !page.contains("/history.json") {
        return Err("/dashboard does not look like the self-contained dashboard page".into());
    }
    println!(
        "obs_check: /traces.json OK ({traces} promoted trace(s), {} stage(s)); /dashboard OK \
         ({} bytes)",
        stages.len(),
        page.len()
    );
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if let Some(target) = args.wait_samples {
        let deadline = Instant::now() + WAIT_BUDGET;
        loop {
            let (status, page) = get(&args.addr, "/metrics")?;
            if status == 200
                && series_value(&page, "hmd_serving_samples_total").unwrap_or(0.0) >= target
            {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!("timed out waiting for {target} served samples"));
            }
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    let (status, page) = get(&args.addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    validate_exposition(&page).map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    for series in REQUIRED_SERIES {
        if series_value(&page, series).is_none() {
            return Err(format!("/metrics is missing series {series}"));
        }
    }
    let transitions = series_value(&page, "hmd_serving_alert_transitions_total").unwrap_or(0.0);
    #[allow(clippy::cast_precision_loss)]
    if transitions < args.expect_transitions as f64 {
        return Err(format!(
            "expected >= {} alert transitions, saw {transitions}",
            args.expect_transitions
        ));
    }
    if let Some(want) = args.expect_shards {
        check_shards(&page, want)?;
        println!("obs_check: /metrics carries {want} label-separated shard(s)");
    }
    if let Some(want) = args.expect_generation {
        let generation = series_value(&page, "hmd_serving_model_generation").unwrap_or(0.0);
        let swaps = series_value(&page, "hmd_serving_model_swaps_total").unwrap_or(0.0);
        if generation < want {
            return Err(format!("expected model generation >= {want}, saw {generation}"));
        }
        if want > 0.0 && swaps < 1.0 {
            return Err(format!("expected >= 1 model swap at generation {generation}, saw {swaps}"));
        }
        println!("obs_check: model generation {generation} after {swaps} hot-swap(s)");
    }
    println!(
        "obs_check: /metrics OK ({} lines, {} required series, {transitions} transitions)",
        page.lines().count(),
        REQUIRED_SERIES.len()
    );

    let (status, body) = get(&args.addr, "/healthz")?;
    if status != 200 && status != 503 {
        return Err(format!("/healthz returned unexpected {status}: {body:.60}"));
    }
    println!("obs_check: /healthz {status} ({})", body.trim());

    let (status, body) = get(&args.addr, "/snapshot.json")?;
    if status != 200 {
        return Err(format!("/snapshot.json returned {status}"));
    }
    let snapshot =
        Json::parse(&body).map_err(|e| format!("/snapshot.json is not valid JSON: {e:?}"))?;
    let slo_rules = snapshot
        .get("slo")
        .and_then(Json::as_arr)
        .ok_or("/snapshot.json is missing the per-rule slo array")?;
    if slo_rules.iter().any(|r| r.get("rule").is_none() || r.get("transitions").is_none()) {
        return Err("/snapshot.json slo entries need rule + transitions".into());
    }
    if snapshot.get("incidents_total").is_none() {
        return Err("/snapshot.json is missing incidents_total".into());
    }
    println!(
        "obs_check: /snapshot.json OK ({} bytes, {} SLO rules)",
        body.len(),
        slo_rules.len()
    );

    if args.expect_incident || args.save_incident.is_some() {
        check_incidents(args, &page)?;
    }
    if args.expect_history {
        check_history(args)?;
    }
    if args.expect_traces {
        check_traces(args)?;
    }

    let (status, _) = get(&args.addr, "/no-such-route")?;
    if status != 404 {
        return Err(format!("unknown route returned {status}, want 404"));
    }

    if args.quit {
        let (status, _) = get(&args.addr, "/quit")?;
        if status != 200 {
            return Err(format!("/quit returned {status}"));
        }
        println!("obs_check: /quit acknowledged");
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => {
                println!("obs_check: PASSED");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs_check: FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}
