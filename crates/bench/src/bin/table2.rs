//! Regenerates **Table 2**: performance of the six detectors in three
//! scenarios — (a) regular malware detection, (b) under adversarial
//! attack, (c) after adversarial training.

use hmd_bench::{fmt_metric, run_standard, table_row, EXPERIMENT_SEED};
use hmd_core::ScenarioMetrics;

fn print_scenario(name: &str, rows: &[ScenarioMetrics]) {
    let widths = [19, 9, 5, 5, 5, 5, 5, 5, 5];
    println!(
        "{}",
        table_row(
            &[
                name.to_owned(),
                "ML".into(),
                "ACC".into(),
                "F1".into(),
                "AUC".into(),
                "TPR".into(),
                "FPR".into(),
                "FNR".into(),
                "TNR".into(),
            ],
            &widths
        )
    );
    for r in rows {
        let m = &r.metrics;
        println!(
            "{}",
            table_row(
                &[
                    String::new(),
                    r.model.clone(),
                    fmt_metric(m.accuracy),
                    fmt_metric(m.f1),
                    fmt_metric(m.auc),
                    fmt_metric(m.tpr),
                    fmt_metric(m.fpr),
                    fmt_metric(m.fnr),
                    fmt_metric(m.tnr),
                ],
                &widths
            )
        );
    }
}

fn main() {
    println!("Table 2 — detector performance in three scenarios");
    println!("(simulated corpus; see EXPERIMENTS.md for paper-vs-measured)\n");
    let report = run_standard(EXPERIMENT_SEED);
    println!("selected features: {:?}\n", report.selected_features);
    print_scenario("malware attack", &report.baseline);
    println!();
    print_scenario("adversarial attack", &report.attacked);
    println!();
    print_scenario("adversarial defense", &report.defended);
    println!(
        "\nLowProFool success rate: {:.1}%  (mean weighted perturbation {:.3})",
        report.attack_success_rate * 100.0,
        report.mean_perturbation
    );
    println!("best defended F1: {:.3}", report.best_defended_f1());
}
