//! Regenerates **Figure 3**:
//!
//! * (a) TPR per model across the three scenarios (drops under attack,
//!   recovers with adversarial training);
//! * (b) the adversarial predictor's feedback-reward trace over an
//!   inference stream of adversarial samples followed by non-adversarial
//!   ones, plus its detection scores.

use hmd_bench::{downsample, run_standard, sparkline, EXPERIMENT_SEED};
use hmd_core::FrameworkReport;

fn main() {
    println!("Figure 3(a) — TPR by scenario\n");
    let report = run_standard(EXPERIMENT_SEED);
    println!(
        "{:<9} {:>9} {:>9} {:>9}",
        "model", "baseline", "attacked", "defended"
    );
    for base in &report.baseline {
        let name = &base.model;
        let a = FrameworkReport::metrics_for(&report.attacked, name)
            .map_or(0.0, |m| m.tpr);
        let d = FrameworkReport::metrics_for(&report.defended, name)
            .map_or(0.0, |m| m.tpr);
        println!("{name:<9} {:>9.2} {a:>9.2} {d:>9.2}", base.metrics.tpr);
    }

    println!("\nFigure 3(b) — predictor feedback-reward trace");
    let p = &report.predictor;
    let adversarial: Vec<f64> =
        p.reward_trace.iter().filter(|(a, _)| *a).map(|(_, r)| *r).collect();
    let clean: Vec<f64> =
        p.reward_trace.iter().filter(|(a, _)| !*a).map(|(_, r)| *r).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "stream: {} adversarial samples then {} non-adversarial samples",
        adversarial.len(),
        clean.len()
    );
    let full: Vec<f64> = adversarial.iter().chain(&clean).copied().collect();
    let ds = downsample(&full, 100);
    println!("reward trace (downsampled): {}", sparkline(&ds, 0.0, 100.0));
    println!(
        "mean feedback reward: adversarial segment {:.1}, non-adversarial segment {:.1}",
        mean(&adversarial),
        mean(&clean)
    );
    println!(
        "\npredictor detection: accuracy {:.3}, F1 {:.3}, precision {:.3}, recall {:.3}",
        p.accuracy, p.f1, p.precision, p.recall
    );
    println!("(paper reports a flawless 100% on its corpus; see EXPERIMENTS.md)");
}
