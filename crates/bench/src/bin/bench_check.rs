//! CI gate for bench output: validates that a `BENCH_*.json` file
//! exists, parses, and carries sane records — so a bench refactor that
//! silently stops emitting results fails the pipeline instead of
//! shipping an empty speedup table.
//!
//! With `--baseline` it additionally diffs a fresh run against a
//! committed baseline: the delta table is always printed, and a bench
//! that regresses beyond the noise-aware tolerance fails the gate.
//!
//! Usage:
//!   `bench_check <path/to/BENCH_name.json> [...]`
//!   `bench_check --baseline <committed.json> <fresh.json>`
//!
//! The regression tolerance is a multiple of the committed median
//! (default 4.0 — CI machines are noisy, the gate is for order-of-
//! magnitude cliffs, not percent drifts). Override with
//! `HMD_BENCH_MAX_REGRESSION`. Benches whose committed run was itself
//! unstable (std dev above half the median) are reported but never
//! enforced.
//!
//! Exits non-zero with a diagnostic on the first failure.

use std::path::Path;
use std::process::ExitCode;

use hmd_util::bench;
use hmd_util::json::Json;

/// Baseline records noisier than this (std dev / median) are excluded
/// from enforcement: their median carries no signal to regress from.
const STABILITY_LIMIT: f64 = 0.5;
const DEFAULT_MAX_REGRESSION: f64 = 4.0;

fn check(path: &Path) -> Result<Json, String> {
    let doc = bench::load(path)?;
    let name = doc
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or_else(|| format!("{}: missing string field \"name\"", path.display()))?;
    if name.is_empty() {
        return Err(format!("{}: empty bench suite name", path.display()));
    }
    let benches = doc
        .get("benches")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| format!("{}: missing array field \"benches\"", path.display()))?;
    if benches.is_empty() {
        return Err(format!("{}: no bench records", path.display()));
    }
    for (i, b) in benches.iter().enumerate() {
        let id = b
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{}: bench #{i} missing \"id\"", path.display()))?;
        for field in ["median_ns", "p95_ns", "mean_ns", "min_ns", "max_ns"] {
            let v = b.get(field).and_then(Json::as_f64).ok_or_else(|| {
                format!("{}: bench {id:?} missing numeric {field:?}", path.display())
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "{}: bench {id:?} has non-finite/negative {field}: {v}",
                    path.display()
                ));
            }
        }
    }
    Ok(doc)
}

/// `(id, median_ns, std_dev_ns)` per record, in file order.
fn records(doc: &Json) -> Vec<(String, f64, f64)> {
    doc.get("benches")
        .and_then(Json::as_arr)
        .map(|benches| {
            benches
                .iter()
                .filter_map(|b| {
                    Some((
                        b.get("id")?.as_str()?.to_owned(),
                        b.get("median_ns").and_then(Json::as_f64)?,
                        b.get("std_dev_ns").and_then(Json::as_f64).unwrap_or(0.0),
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn max_regression() -> Result<f64, String> {
    match std::env::var("HMD_BENCH_MAX_REGRESSION") {
        Ok(raw) => {
            let factor: f64 = raw
                .parse()
                .map_err(|_| format!("HMD_BENCH_MAX_REGRESSION is not a number: {raw:?}"))?;
            if factor <= 1.0 {
                return Err(format!("HMD_BENCH_MAX_REGRESSION must exceed 1.0, got {factor}"));
            }
            Ok(factor)
        }
        Err(_) => Ok(DEFAULT_MAX_REGRESSION),
    }
}

fn diff(baseline_path: &Path, fresh_path: &Path) -> Result<(), String> {
    let baseline = check(baseline_path)?;
    let fresh = check(fresh_path)?;
    let factor = max_regression()?;
    let base = records(&baseline);
    let new: std::collections::HashMap<String, f64> =
        records(&fresh).into_iter().map(|(id, median, _)| (id, median)).collect();

    println!(
        "{:<44} {:>12} {:>12} {:>8}  verdict (tolerance {factor:.1}x)",
        "bench", "base ns", "fresh ns", "delta"
    );
    let mut failures = Vec::new();
    let mut missing = Vec::new();
    for (id, base_median, base_std) in &base {
        let Some(&fresh_median) = new.get(id) else {
            missing.push(id.clone());
            continue;
        };
        let delta_pct = (fresh_median / base_median - 1.0) * 100.0;
        let unstable = *base_std > STABILITY_LIMIT * base_median;
        let regressed = fresh_median > base_median * factor;
        let verdict = if unstable {
            "noisy-skip"
        } else if regressed {
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{id:<44} {base_median:>12.0} {fresh_median:>12.0} {delta_pct:>+7.1}%  {verdict}");
        if regressed && !unstable {
            failures.push(format!(
                "{id}: median {fresh_median:.0} ns vs baseline {base_median:.0} ns \
                 (> {factor:.1}x tolerance)"
            ));
        }
    }
    let mut unbaselined: Vec<&String> =
        new.keys().filter(|id| !base.iter().any(|(b, _, _)| b == *id)).collect();
    unbaselined.sort();
    for id in unbaselined {
        println!("{id:<44} {:>12} (new — no baseline)", "-");
    }
    if !missing.is_empty() {
        return Err(format!(
            "{}: benches missing from fresh run: {}",
            fresh_path.display(),
            missing.join(", ")
        ));
    }
    if !failures.is_empty() {
        return Err(format!("performance regression gate:\n  {}", failures.join("\n  ")));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--baseline") {
        let [_, baseline, fresh] = args.as_slice() else {
            eprintln!("usage: bench_check --baseline <committed.json> <fresh.json>");
            return ExitCode::FAILURE;
        };
        return match diff(Path::new(baseline), Path::new(fresh)) {
            Ok(()) => {
                println!("bench_check: {fresh}: no regressions vs {baseline}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_check: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.is_empty() {
        eprintln!(
            "usage: bench_check <BENCH_name.json> [...]\n       \
             bench_check --baseline <committed.json> <fresh.json>"
        );
        return ExitCode::FAILURE;
    }
    for arg in args.drain(..) {
        match check(Path::new(&arg)) {
            Ok(doc) => {
                let n = doc.get("benches").and_then(Json::as_arr).map_or(0, |b| b.len());
                println!("bench_check: {arg}: OK ({n} records)");
            }
            Err(e) => {
                eprintln!("bench_check: FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
