//! CI gate for bench output: validates that a `BENCH_*.json` file
//! exists, parses, and carries sane records — so a bench refactor that
//! silently stops emitting results fails the pipeline instead of
//! shipping an empty speedup table.
//!
//! Usage: `bench_check <path/to/BENCH_name.json> [...]`
//! Exits non-zero with a diagnostic on the first missing/malformed file.

use std::path::Path;
use std::process::ExitCode;

use hmd_util::bench;

fn check(path: &Path) -> Result<usize, String> {
    let doc = bench::load(path)?;
    let name = doc
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or_else(|| format!("{}: missing string field \"name\"", path.display()))?;
    if name.is_empty() {
        return Err(format!("{}: empty bench suite name", path.display()));
    }
    let benches = doc
        .get("benches")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| format!("{}: missing array field \"benches\"", path.display()))?;
    if benches.is_empty() {
        return Err(format!("{}: no bench records", path.display()));
    }
    for (i, b) in benches.iter().enumerate() {
        let id = b
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{}: bench #{i} missing \"id\"", path.display()))?;
        for field in ["median_ns", "p95_ns", "mean_ns", "min_ns", "max_ns"] {
            let v = b.get(field).and_then(hmd_util::json::Json::as_f64).ok_or_else(|| {
                format!("{}: bench {id:?} missing numeric {field:?}", path.display())
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "{}: bench {id:?} has non-finite/negative {field}: {v}",
                    path.display()
                ));
            }
        }
    }
    Ok(benches.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_check <BENCH_name.json> [...]");
        return ExitCode::FAILURE;
    }
    for arg in &args {
        match check(Path::new(arg)) {
            Ok(n) => println!("bench_check: {arg}: OK ({n} records)"),
            Err(e) => {
                eprintln!("bench_check: FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
