//! Regenerates **Figure 4(b)**: scalability of adversarial learning.
//!
//! * Training sweep (paper's blue line): detection F1 after adversarial
//!   training with a growing number of adversarial training samples —
//!   rises from the attacked level, then plateaus.
//! * Inference sweep (paper's orange line): the fully adversarially
//!   trained model confronted with growing volumes of adversarial
//!   samples at inference — stays flat and high.

use hmd_bench::{standard_config, EXPERIMENT_SEED};
use hmd_core::Framework;
use hmd_ml::{evaluate, Classifier, RandomForest};
use hmd_tabular::{Class, Dataset};
use hmd_util::rng::prelude::*;

fn main() {
    println!("Figure 4(b) — scalability of adversarial learning\n");
    let fw = Framework::new(standard_config(EXPERIMENT_SEED));
    let bundle = fw.prepare_data().expect("data preparation failed");
    let attacks = fw.generate_attacks(&bundle).expect("attack generation failed");
    let adv_train = &attacks.train_result.adversarial;
    let merged_test = Framework::merged_test_set(&bundle, &attacks).expect("merge failed");
    let merged_test_targets = merged_test.binary_targets(Class::is_attack);

    // ---- training sweep ----
    println!("training sweep: adversarial samples in training vs detection F1");
    println!("{:>12} {:>8}", "#adv-train", "F1");
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let sizes = [0usize, 50, 100, 200, 400, 800, 1600, adv_train.len()];
    for &n in &sizes {
        let n = n.min(adv_train.len());
        let mut train = bundle.train.clone();
        if n > 0 {
            let mut idx: Vec<usize> = (0..adv_train.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(n);
            let subset = adv_train.subset(&idx).expect("subset");
            train.merge(&subset).expect("merge");
        }
        let targets = train.binary_targets(Class::is_attack);
        let mut model = RandomForest::new();
        model.fit(&train, &targets).expect("fit");
        let m = evaluate(&model, &merged_test, &merged_test_targets).expect("eval");
        println!("{n:>12} {:>8.3}", m.f1);
    }

    // ---- inference sweep ----
    println!("\ninference sweep: adversarial volume at inference vs robust-model F1");
    println!("{:>12} {:>8}", "#adv-infer", "F1");
    let full_train = Framework::merged_training_set(&bundle, &attacks).expect("merge");
    let full_targets = full_train.binary_targets(Class::is_attack);
    let mut robust = RandomForest::new();
    robust.fit(&full_train, &full_targets).expect("fit");
    // pool of adversarial samples to draw inference volumes from
    let mut pool = attacks.test_result.adversarial.clone();
    pool.merge(adv_train).expect("merge");
    for &k in &[100usize, 250, 500, 1000, 2000, 4000] {
        let idx: Vec<usize> = (0..k).map(|_| rng.random_range(0..pool.len())).collect();
        let mut stream: Dataset = bundle.test.clone();
        stream.merge(&pool.subset(&idx).expect("subset")).expect("merge");
        let targets = stream.binary_targets(Class::is_attack);
        let m = evaluate(&robust, &stream, &targets).expect("eval");
        println!("{k:>12} {:>8.3}", m.f1);
    }
    println!(
        "\nexpected shape: the training sweep rises from the attacked level and \
         plateaus; the inference sweep stays flat-high."
    );
}
