//! Extension experiment: head-to-head defense comparison under the same
//! LowProFool attack — the alternatives the paper's Table 1 cites
//! (randomized classifier [RHMD, MICRO'17], moving-target defense
//! [TCAD'21]) versus the paper's adversarial training, plus the
//! decision-based boundary attack as a second adversary.

use hmd_adversarial::{
    attacked_test_set, Attack, BoundaryAttack, BoundaryAttackConfig, MovingTargetDefense,
    RandomizedEnsemble,
};
use hmd_bench::{standard_config, EXPERIMENT_SEED};
use hmd_core::Framework;
use hmd_ml::{classical_models, evaluate, Classifier, RandomForest};
use hmd_tabular::Class;

fn main() {
    println!("Defense comparison under LowProFool (extension experiment)\n");
    let fw = Framework::new(standard_config(EXPERIMENT_SEED));
    let bundle = fw.prepare_data().expect("prepare");
    let attacks = fw.generate_attacks(&bundle).expect("attacks");
    let attacked =
        attacked_test_set(&bundle.test, &attacks.test_result.adversarial).expect("merge");
    let attacked_targets = attacked.binary_targets(Class::is_attack);
    let clean_targets = bundle.test.binary_targets(Class::is_attack);
    let train_targets = bundle.train.binary_targets(Class::is_attack);

    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "defense", "clean F1", "attacked", "FNR(att.)"
    );

    // 1. no defense: a single RF
    let mut rf = RandomForest::new();
    rf.fit(&bundle.train, &train_targets).expect("fit");
    let clean = evaluate(&rf, &bundle.test, &clean_targets).expect("eval");
    let att = evaluate(&rf, &attacked, &attacked_targets).expect("eval");
    println!(
        "{:<28} {:>10.2} {:>10.2} {:>10.2}",
        "none (single RF)", clean.f1, att.f1, att.fnr
    );

    // 2. RHMD-style randomized ensemble over the five classical models
    let mut pool = classical_models();
    for m in &mut pool {
        m.fit(&bundle.train, &train_targets).expect("fit");
    }
    let ensemble = RandomizedEnsemble::new(pool, 0xBEEF).expect("ensemble");
    let clean = ensemble.evaluate(&bundle.test, &clean_targets).expect("eval");
    let att = ensemble.evaluate(&attacked, &attacked_targets).expect("eval");
    println!(
        "{:<28} {:>10.2} {:>10.2} {:>10.2}",
        "randomized ensemble (RHMD)", clean.f1, att.f1, att.fnr
    );

    // 3. moving-target defense: 4 RF generations rotating every 50 queries
    let mtd = MovingTargetDefense::train(
        || Box::new(RandomForest::new()) as Box<dyn Classifier>,
        4,
        50,
        &bundle.train,
        &train_targets,
        EXPERIMENT_SEED,
    )
    .expect("mtd");
    let clean = mtd.evaluate(&bundle.test, &clean_targets).expect("eval");
    let att = mtd.evaluate(&attacked, &attacked_targets).expect("eval");
    println!(
        "{:<28} {:>10.2} {:>10.2} {:>10.2}",
        "moving target (4 gens)", clean.f1, att.f1, att.fnr
    );

    // 4. the paper's adversarial training
    let merged = Framework::merged_training_set(&bundle, &attacks).expect("merge");
    let merged_targets = merged.binary_targets(Class::is_attack);
    let mut hardened = RandomForest::new();
    hardened.fit(&merged, &merged_targets).expect("fit");
    let clean = evaluate(&hardened, &bundle.test, &clean_targets).expect("eval");
    let att = evaluate(&hardened, &attacked, &attacked_targets).expect("eval");
    println!(
        "{:<28} {:>10.2} {:>10.2} {:>10.2}",
        "adversarial training (ours)", clean.f1, att.f1, att.fnr
    );

    // --- second adversary: decision-based boundary attack vs the
    // hardened model (no gradients, no surrogate)
    println!("\nboundary attack (decision-only) against the hardened RF:");
    let boundary = BoundaryAttack::new(&hardened, &bundle.train, BoundaryAttackConfig::default())
        .expect("boundary");
    let malware = bundle.test.filter(Class::is_attack);
    let sample: Vec<usize> = (0..malware.len().min(150)).collect();
    let subset = malware.subset(&sample).expect("subset");
    let result = boundary.generate(&subset, EXPERIMENT_SEED).expect("generate");
    println!(
        "  success rate {:.1}%  mean L2 perturbation {:.3}",
        result.success_rate() * 100.0,
        result.mean_perturbation()
    );
    println!(
        "\nexpected shape: randomization/MTD soften the attack only mildly \
         (the perturbation transfers across members); adversarial training \
         restores detection outright."
    );
}
