//! Regenerates the "This Work" row of **Table 1**: attack success rate
//! and the maximum defense improvement per metric (defended − attacked,
//! over all models), alongside the adaptive-learning capability the
//! comparison table tracks.

use hmd_bench::{run_standard, EXPERIMENT_SEED};
use hmd_core::FrameworkReport;

fn main() {
    println!("Table 1 (\"This Work\" row) — attack + defense summary\n");
    let report = run_standard(EXPERIMENT_SEED);

    let max_delta = |f: fn(&hmd_ml::BinaryMetrics) -> f64| -> f64 {
        report
            .attacked
            .iter()
            .filter_map(|a| {
                FrameworkReport::metrics_for(&report.defended, &a.model)
                    .map(|d| f(d) - f(&a.metrics))
            })
            .fold(0.0, f64::max)
    };

    println!("perturbed features   : HPCs ({})", report.selected_features.join(", "));
    println!("attack type          : inference integrity (malware attack)");
    println!(
        "attack success rate  : {:.0}%  (paper: 100%)",
        report.attack_success_rate * 100.0
    );
    println!("defense approach     : adversarial training + RL-based dynamic defense");
    println!("defense improvement  :");
    println!(
        "  up to {:.0}% (F1-score)      [paper: up to 86%]",
        max_delta(|m| m.f1) * 100.0
    );
    println!(
        "  up to {:.0}% (accuracy)      [paper: up to 47%]",
        max_delta(|m| m.accuracy) * 100.0
    );
    println!(
        "  up to {:.0}% (AUC)           [paper: up to 63%]",
        max_delta(|m| m.auc) * 100.0
    );
    println!(
        "  up to {:.0}% (precision)     [paper: up to 64%]",
        max_delta(|m| m.precision) * 100.0
    );
    println!(
        "  up to {:.0}% (recall)        [paper: up to 87%]",
        max_delta(|m| m.recall) * 100.0
    );
    println!(
        "  up to {:.0}% (TPR)           [paper: up to 87%]",
        max_delta(|m| m.tpr) * 100.0
    );
    println!("adaptive learning    : yes (A2C predictor + UCB constraint controller)");
}
