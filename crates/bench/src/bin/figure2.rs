//! Regenerates **Figure 2**: F1-score per model across the three
//! scenarios, with the attack-downgrade and defense-improvement deltas
//! the paper annotates (−79% … +86%).

use hmd_bench::{run_standard, EXPERIMENT_SEED};
use hmd_core::FrameworkReport;

fn bar(f1: f64) -> String {
    let n = (f1 * 40.0).round().max(0.0) as usize;
    "█".repeat(n)
}

fn main() {
    println!("Figure 2 — F1 by scenario with attack/defense deltas\n");
    let report = run_standard(EXPERIMENT_SEED);
    println!(
        "{:<9} {:>9} {:>9} {:>9}   {:>11} {:>11}",
        "model", "baseline", "attacked", "defended", "attack drop", "defense gain"
    );
    for base in &report.baseline {
        let name = &base.model;
        let b = base.metrics.f1;
        let a = FrameworkReport::metrics_for(&report.attacked, name)
            .map_or(0.0, |m| m.f1);
        let d = FrameworkReport::metrics_for(&report.defended, name)
            .map_or(0.0, |m| m.f1);
        println!(
            "{name:<9} {b:>9.2} {a:>9.2} {d:>9.2}   {:>10.0}% {:>10.0}%",
            (a - b) * 100.0,
            (d - a) * 100.0
        );
    }
    println!("\nbars (defended):");
    for row in &report.defended {
        println!("  {:<9} {:.2} {}", row.model, row.metrics.f1, bar(row.metrics.f1));
    }
    let max_drop = report
        .baseline
        .iter()
        .filter_map(|b| {
            FrameworkReport::metrics_for(&report.attacked, &b.model)
                .map(|a| b.metrics.f1 - a.f1)
        })
        .fold(0.0, f64::max);
    let max_gain = report
        .attacked
        .iter()
        .filter_map(|a| {
            FrameworkReport::metrics_for(&report.defended, &a.model)
                .map(|d| d.f1 - a.metrics.f1)
        })
        .fold(0.0, f64::max);
    println!(
        "\nadversarial attacks downgrade F1 by up to {:.0}%; adversarial training \
         recovers it by up to {:.0}% (paper: 79% / 86%)",
        max_drop * 100.0,
        max_gain * 100.0
    );
}
