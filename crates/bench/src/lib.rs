//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library provides
//! the shared configuration and formatting.

use hmd_core::{Framework, FrameworkConfig, FrameworkReport};

/// The standard experiment configuration: the paper-scale corpus
/// (3,000+ applications) unless the `HMD_QUICK` environment variable is
/// set, in which case a small smoke-test corpus is used.
#[must_use]
pub fn standard_config(seed: u64) -> FrameworkConfig {
    if std::env::var_os("HMD_QUICK").is_some() {
        let mut config = FrameworkConfig::quick(seed);
        config.predictor.episodes = 6_000;
        config
    } else {
        let mut config = FrameworkConfig::paper(seed);
        config.corpus.benign_apps = 1_550;
        config.corpus.malware_apps = 1_550;
        config.corpus.windows_per_app = 3;
        config.corpus.warmup_windows = 2;
        config
    }
}

/// The seed every experiment binary defaults to, so tables regenerate
/// identically run to run.
pub const EXPERIMENT_SEED: u64 = 0xDAC_2024;

/// Runs the full framework under the standard configuration.
///
/// # Panics
///
/// Panics if any framework phase fails (experiment binaries surface
/// failures loudly).
#[must_use]
pub fn run_standard(seed: u64) -> FrameworkReport {
    Framework::new(standard_config(seed))
        .run()
        .expect("framework run failed")
}

/// Formats a metric as the paper prints it (two decimals).
#[must_use]
pub fn fmt_metric(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders one fixed-width, two-space-separated table row.
#[must_use]
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// A crude ASCII sparkline for reward traces (8 levels).
#[must_use]
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.0 };
            LEVELS[(t * 7.0).round() as usize]
        })
        .collect()
}

/// Downsamples a series to at most `n` points by averaging buckets.
#[must_use]
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    let bucket = values.len().div_ceil(n);
    values
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formatting_matches_paper_style() {
        assert_eq!(fmt_metric(0.879), "0.88");
        assert_eq!(fmt_metric(1.0), "1.00");
    }

    #[test]
    fn rows_are_aligned() {
        let row = table_row(&["RF".into(), "0.88".into()], &[8, 6]);
        assert_eq!(row.chars().count(), 8 + 2 + 6);
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 50.0, 100.0], 0.0, 100.0);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn downsample_averages_buckets() {
        let v: Vec<f64> = (0..10).map(f64::from).collect();
        let d = downsample(&v, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], 0.5);
    }

    #[test]
    fn standard_config_respects_quick_env() {
        // without the env var the paper corpus is used
        let c = standard_config(1);
        assert!(c.corpus.benign_apps + c.corpus.malware_apps >= 96);
    }
}
