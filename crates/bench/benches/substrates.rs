//! Benchmarks for the substrate layers: simulator window throughput,
//! SHA-256 hashing, tensor/NN primitives, and the parallel substrate
//! (`hmd_util::par`) before/after pairs — naive vs blocked matmul, and
//! 1-thread vs all-thread forest fitting, corpus generation, and batch
//! prediction. The binary runs under a counting global allocator so it
//! can also report `serve/steady_state_allocs_per_window` — the
//! allocation-freedom pin for the arena-backed serving hot path. Emits
//! `BENCH_substrates.json`.

use std::hint::black_box;

use hmd_integrity::Sha256;
use hmd_util::alloc::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();
use hmd_ml::{Classifier, Knn, RandomForest, RandomForestConfig};
use hmd_nn::{Dense, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_sim::corpus::{build_corpus, CorpusConfig};
use hmd_sim::machine::{Machine, MachineConfig, RunningWorkload};
use hmd_sim::workload::{WorkloadClass, WorkloadProfile};
use hmd_tabular::{Class, Dataset};
use hmd_util::bench::{Harness, Throughput};
use hmd_util::par;
use hmd_util::rng::prelude::*;

fn bench_simulator(h: &mut Harness) {
    let config = MachineConfig { slice_instructions: 20_000, ..MachineConfig::default() };
    let mut machine = Machine::new(config);
    let mut workload =
        RunningWorkload::new(WorkloadProfile::canonical(WorkloadClass::Ransomware), 1);
    h.bench_with_throughput(
        "simulator/run_window_20k_instructions",
        Throughput::Elements(config.slice_instructions),
        || black_box(machine.run_window(&mut workload, 10.0)),
    );
}

fn bench_sha256(h: &mut Harness) {
    for size in [1_024usize, 65_536] {
        let data = vec![0xABu8; size];
        h.bench_with_throughput(
            &format!("sha256/hash_{size}B"),
            Throughput::Bytes(size as u64),
            || {
                let mut hasher = Sha256::new();
                hasher.update(black_box(&data));
                black_box(hasher.finalize())
            },
        );
    }
}

fn bench_nn(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new()
        .with(Dense::he(4, 32, &mut rng))
        .with(Relu::new())
        .with(Dense::he(32, 16, &mut rng))
        .with(Relu::new())
        .with(Dense::xavier(16, 1, &mut rng));
    let x = Tensor::from_fn(32, 4, |_, _| rng.random_range(-1.0..1.0));
    let y = Tensor::from_fn(32, 1, |r, _| f64::from(r % 2 == 0));
    h.bench("nn/mlp_infer_batch32", || black_box(net.infer(black_box(&x))));
    let mut opt = Optimizer::adam(1e-3);
    h.bench("nn/mlp_train_batch32", || {
        black_box(net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt));
    });
}

fn bench_matmul(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(11);
    for size in [64usize, 128, 256] {
        let a = Tensor::from_fn(size, size, |_, _| rng.random_range(-1.0..1.0));
        let b = Tensor::from_fn(size, size, |_, _| rng.random_range(-1.0..1.0));
        let macs = (size * size * size) as u64;
        h.bench_with_throughput(
            &format!("tensor/matmul_naive_{size}x{size}"),
            Throughput::Elements(macs),
            || black_box(black_box(&a).matmul_naive(black_box(&b))),
        );
        h.bench_with_throughput(
            &format!("tensor/matmul_blocked_{size}x{size}"),
            Throughput::Elements(macs),
            || black_box(black_box(&a).matmul(black_box(&b))),
        );
    }
}

/// Synthetic two-blob training data sized for the model benches.
fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]).unwrap();
    for _ in 0..n {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-1.0..0.5)).collect();
        let attack: Vec<f64> = (0..4).map(|_| rng.random_range(0.0..1.5)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&attack, Class::Malware).unwrap();
    }
    let t = d.binary_targets(Class::is_attack);
    (d, t)
}

/// Runs `f` once with the thread override pinned to 1, once unpinned
/// (all threads), recording `<id>_1thread` / `<id>_allthreads`. The
/// pair is the speedup table in `BENCH_substrates.json`: on a
/// multi-core host the second entry's median should be ≥2× smaller.
fn bench_thread_pair<T>(h: &mut Harness, id: &str, mut f: impl FnMut() -> T) {
    par::set_thread_override(Some(1));
    h.bench(&format!("{id}_1thread"), &mut f);
    par::set_thread_override(None);
    h.bench(&format!("{id}_allthreads"), &mut f);
}

fn bench_parallel_models(h: &mut Harness) {
    let (train, targets) = blobs(150, 21);
    let forest_config = RandomForestConfig { n_trees: 16, ..RandomForestConfig::default() };
    bench_thread_pair(h, "par/forest_fit_16trees", || {
        let mut forest = RandomForest::with_config(forest_config);
        forest.fit(black_box(&train), black_box(&targets)).unwrap();
        black_box(forest)
    });

    let (test, _) = blobs(256, 22);
    let mut knn = Knn::new();
    knn.fit(&train, &targets).unwrap();
    bench_thread_pair(h, "par/knn_batch_predict_512rows", || {
        black_box(knn.predict_proba(black_box(&test)).unwrap())
    });

    let mut forest = RandomForest::with_config(forest_config);
    forest.fit(&train, &targets).unwrap();
    bench_thread_pair(h, "par/forest_batch_predict_512rows", || {
        black_box(forest.predict_proba(black_box(&test)).unwrap())
    });
}

fn bench_telemetry(h: &mut Harness) {
    use hmd_telemetry as tel;
    // Disabled vs enabled pairs quantify the observer cost: disabled
    // must be near-free (one relaxed atomic load), enabled must stay
    // cheap enough for hot loops.
    tel::set_enabled_override(Some(false));
    let c = tel::metrics::counter("bench.telemetry.counter");
    h.bench("telemetry/counter_add_disabled", || black_box(c).add(1));
    h.bench("telemetry/span_disabled", || black_box(tel::span("bench.telemetry.span")));
    tel::set_enabled_override(Some(true));
    h.bench("telemetry/counter_add_enabled", || black_box(c).add(1));
    h.bench("telemetry/span_enabled", || black_box(tel::span("bench.telemetry.span")));
    tel::set_enabled_override(None);
    // the enabled span bench accumulated records — drop them
    tel::reset();
}

fn bench_obs(h: &mut Harness) {
    use hmd_obs::{SampleRecord, ServingMonitor, WindowConfig, WindowedCounter, WindowedHistogram};
    // Per-sample monitoring cost: serving records every classified
    // window, so these are hot-path numbers like the telemetry pair.
    let cfg = WindowConfig::new(8, 250_000_000);
    let counter = WindowedCounter::new(cfg);
    let histogram = WindowedHistogram::new(cfg);
    let monitor = ServingMonitor::new(cfg);
    let mut t = 0u64;
    h.bench("obs/windowed_counter_record", || {
        t = t.wrapping_add(10_000_000);
        counter.record_at(black_box(t), 1);
    });
    h.bench("obs/windowed_histogram_record", || {
        t = t.wrapping_add(10_000_000);
        histogram.record_at(black_box(t), black_box(12_345));
    });
    let record = SampleRecord {
        truth_attack: true,
        verdict_attack: true,
        flagged_adversarial: false,
        latency_ns: 12_345,
        model_latency_ns: 11_000,
        sample: 0,
        generation: 0,
    };
    h.bench("obs/serving_monitor_record_sample", || {
        t = t.wrapping_add(10_000_000);
        monitor.record_at(black_box(t), black_box(record));
    });
    h.bench("obs/serving_monitor_snapshot", || black_box(monitor.snapshot_at(black_box(t))));
}

fn bench_serving(h: &mut Harness) {
    use hmd::{FleetSession, ServingConfig, ServingSession};
    // Fleet-serving throughput: samples/sec through the full deployed
    // loop (draw + feature-select + scale + batched classify + window
    // recording), 1 shard vs one shard per core. Training happens once
    // outside the timed region; each iteration assembles fresh sessions
    // around the shared artifacts and streams the whole budget.
    let mut cfg = ServingConfig::quick(41);
    cfg.samples = 256;
    cfg.batch = 32;
    let trainer = ServingSession::start(cfg.clone()).expect("training succeeds");
    let artifacts = trainer.artifacts_handle();
    // calibrated once above; reuse the derived SLO thresholds the same
    // way fleet shards inherit shard 0's (stock thresholds chatter
    // against this seed's traffic, and alert edges allocate)
    cfg.rules = trainer.slo_rules().to_vec();
    cfg.calibration_samples = 0;
    drop(trainer);
    let all_shards = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for (id, n_shards) in
        [("serve/throughput_1shard", 1usize), ("serve/throughput_allshards", all_shards)]
    {
        h.bench_with_throughput(
            id,
            Throughput::Elements((cfg.samples * n_shards) as u64),
            || {
                let mut fleet = FleetSession::with_artifacts(&cfg, n_shards, artifacts.clone())
                    .expect("assemble fleet");
                black_box(fleet.run().expect("fleet run"))
            },
        );
    }

    // Arena vs allocating inference: the same session budget through
    // the preallocated per-shard arena and through the heap-allocating
    // detector paths — verdict-identical, so the delta is pure runtime.
    for (id, arena) in
        [("serve/session_arena_batch32", true), ("serve/session_alloc_batch32", false)]
    {
        let mut pair_cfg = cfg.clone();
        pair_cfg.arena = arena;
        h.bench_with_throughput(id, Throughput::Elements(cfg.samples as u64), || {
            let mut session =
                ServingSession::with_artifacts(pair_cfg.clone(), artifacts.clone())
                    .expect("assemble session");
            black_box(session.run_to_completion().expect("session run"))
        });
    }

    // Steady-state allocation count: replay-ring traffic through the
    // arena path, measured across the back half of the budget once the
    // windows, alert engine and quarantine reservation have settled.
    // The record is a count, not a duration; the bench_check baseline
    // gate keeps it pinned at zero.
    let mut alloc_cfg = cfg.clone();
    alloc_cfg.samples = 900;
    alloc_cfg.replay = 256;
    alloc_cfg.burst = None;
    alloc_cfg.batch = 8;
    par::set_thread_override(Some(1));
    let mut session = ServingSession::with_artifacts(alloc_cfg, artifacts.clone())
        .expect("assemble replay session");
    let warmup = 500;
    while session.outcome().processed < warmup {
        session.step_batch().expect("warmup step");
    }
    let measured_from = session.outcome().processed;
    let before = ALLOC.allocations();
    while session.step_batch().expect("steady-state step") > 0 {}
    let delta = ALLOC.allocations() - before;
    par::set_thread_override(None);
    #[allow(clippy::cast_precision_loss)]
    {
        let windows = (session.outcome().processed - measured_from) as f64;
        h.record_value("serve/steady_state_allocs_per_window", delta as f64 / windows);
    }
}

fn bench_corpus(h: &mut Harness) {
    // `CorpusConfig::threads` feeds the substrate directly, so the
    // 1-vs-all pair comes from the config rather than the override.
    let mut config = CorpusConfig::quick(31);
    config.threads = 1;
    h.bench("par/corpus_gen_48apps_1thread", || black_box(build_corpus(black_box(&config))));
    config.threads = 0;
    h.bench("par/corpus_gen_48apps_allthreads", || {
        black_box(build_corpus(black_box(&config)))
    });
}

fn main() {
    let mut h = Harness::new("substrates").sample_size(20);
    bench_simulator(&mut h);
    bench_sha256(&mut h);
    bench_nn(&mut h);
    bench_matmul(&mut h);
    bench_parallel_models(&mut h);
    bench_telemetry(&mut h);
    bench_obs(&mut h);
    bench_serving(&mut h);
    bench_corpus(&mut h);
    h.finish();
}
