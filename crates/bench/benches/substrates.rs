//! Criterion benchmarks for the substrate layers: simulator window
//! throughput, SHA-256 hashing, and tensor/NN primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use hmd_integrity::Sha256;
use hmd_nn::{Dense, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_sim::machine::{Machine, MachineConfig, RunningWorkload};
use hmd_sim::workload::{WorkloadClass, WorkloadProfile};
use rand::prelude::*;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let config = MachineConfig { slice_instructions: 20_000, ..MachineConfig::default() };
    group.throughput(Throughput::Elements(config.slice_instructions));
    group.bench_function("run_window_20k_instructions", |b| {
        let mut machine = Machine::new(config);
        let mut workload =
            RunningWorkload::new(WorkloadProfile::canonical(WorkloadClass::Ransomware), 1);
        b.iter(|| black_box(machine.run_window(&mut workload, 10.0)));
    });
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1_024usize, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("hash_{size}B"), |b| {
            b.iter(|| {
                let mut h = Sha256::new();
                h.update(black_box(&data));
                black_box(h.finalize())
            });
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new()
        .with(Dense::he(4, 32, &mut rng))
        .with(Relu::new())
        .with(Dense::he(32, 16, &mut rng))
        .with(Relu::new())
        .with(Dense::xavier(16, 1, &mut rng));
    let x = Tensor::from_fn(32, 4, |_, _| rng.random_range(-1.0..1.0));
    let y = Tensor::from_fn(32, 1, |r, _| f64::from(r % 2 == 0));
    group.bench_function("mlp_infer_batch32", |b| {
        b.iter(|| black_box(net.infer(black_box(&x))));
    });
    let mut opt = Optimizer::adam(1e-3);
    group.bench_function("mlp_train_batch32", |b| {
        b.iter(|| black_box(net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_sha256, bench_nn
}
criterion_main!(benches);
