//! Benchmarks for the substrate layers: simulator window throughput,
//! SHA-256 hashing, and tensor/NN primitives. Emits
//! `BENCH_substrates.json`.

use std::hint::black_box;

use hmd_integrity::Sha256;
use hmd_nn::{Dense, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_sim::machine::{Machine, MachineConfig, RunningWorkload};
use hmd_sim::workload::{WorkloadClass, WorkloadProfile};
use hmd_util::bench::{Harness, Throughput};
use hmd_util::rng::prelude::*;

fn bench_simulator(h: &mut Harness) {
    let config = MachineConfig { slice_instructions: 20_000, ..MachineConfig::default() };
    let mut machine = Machine::new(config);
    let mut workload =
        RunningWorkload::new(WorkloadProfile::canonical(WorkloadClass::Ransomware), 1);
    h.bench_with_throughput(
        "simulator/run_window_20k_instructions",
        Throughput::Elements(config.slice_instructions),
        || black_box(machine.run_window(&mut workload, 10.0)),
    );
}

fn bench_sha256(h: &mut Harness) {
    for size in [1_024usize, 65_536] {
        let data = vec![0xABu8; size];
        h.bench_with_throughput(
            &format!("sha256/hash_{size}B"),
            Throughput::Bytes(size as u64),
            || {
                let mut hasher = Sha256::new();
                hasher.update(black_box(&data));
                black_box(hasher.finalize())
            },
        );
    }
}

fn bench_nn(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new()
        .with(Dense::he(4, 32, &mut rng))
        .with(Relu::new())
        .with(Dense::he(32, 16, &mut rng))
        .with(Relu::new())
        .with(Dense::xavier(16, 1, &mut rng));
    let x = Tensor::from_fn(32, 4, |_, _| rng.random_range(-1.0..1.0));
    let y = Tensor::from_fn(32, 1, |r, _| f64::from(r % 2 == 0));
    h.bench("nn/mlp_infer_batch32", || black_box(net.infer(black_box(&x))));
    let mut opt = Optimizer::adam(1e-3);
    h.bench("nn/mlp_train_batch32", || {
        black_box(net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt));
    });
}

fn main() {
    let mut h = Harness::new("substrates").sample_size(20);
    bench_simulator(&mut h);
    bench_sha256(&mut h);
    bench_nn(&mut h);
    h.finish();
}
