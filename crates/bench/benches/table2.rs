//! Benchmarks behind Table 2's model column: training and single-sample
//! inference cost of every detector on a fixed synthetic 4-feature task
//! (the same width the paper's detectors see). Emits
//! `BENCH_table2.json`.

use std::hint::black_box;

use hmd_ml::all_models;
use hmd_tabular::{Class, Dataset};
use hmd_util::bench::Harness;
use hmd_util::rng::prelude::*;

fn training_set(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    let mut d = Dataset::new(names).unwrap();
    for _ in 0..n {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-1.0..0.4)).collect();
        let attack: Vec<f64> = (0..4).map(|_| rng.random_range(0.2..1.6)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&attack, Class::Malware).unwrap();
    }
    let t = d.binary_targets(Class::is_attack);
    (d, t)
}

fn bench_training(h: &mut Harness) {
    let (data, targets) = training_set(400, 1);
    for template in all_models() {
        let name = template.name().to_owned();
        // Fitting mutates the model, so every iteration fits a fresh
        // instance; construction cost is negligible next to training.
        h.bench(&format!("train/{name}"), || {
            let mut model = all_models()
                .into_iter()
                .find(|m| m.name() == name)
                .expect("model present");
            model.fit(black_box(&data), black_box(&targets)).unwrap();
            black_box(model)
        });
    }
}

fn bench_inference(h: &mut Harness) {
    let (data, targets) = training_set(400, 2);
    let row = data.row(0).unwrap().to_vec();
    for mut model in all_models() {
        model.fit(&data, &targets).unwrap();
        let id = format!("infer_row/{}", model.name());
        h.bench(&id, || black_box(model.predict_proba_row(black_box(&row)).unwrap()));
    }
}

fn main() {
    let mut h = Harness::new("table2").sample_size(10);
    bench_training(&mut h);
    bench_inference(&mut h);
    h.finish();
}
