//! Criterion benchmarks behind Figure 4(a): the UCB controller's
//! decision and update cost — the "lightweight" property that justifies
//! choosing UCB for run-time scheduling — compared with one detector
//! inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hmd_ml::{Classifier, LogisticRegression};
use hmd_rl::Ucb;
use hmd_tabular::{Class, Dataset};
use rand::prelude::*;

fn bench_ucb(c: &mut Criterion) {
    let mut ucb = Ucb::new(5, 0.8);
    for arm in 0..5 {
        ucb.update(arm, 0.5);
    }
    c.bench_function("ucb_select", |b| {
        b.iter(|| black_box(ucb.select()));
    });
    c.bench_function("ucb_update", |b| {
        let mut u = ucb.clone();
        b.iter(|| {
            u.update(black_box(2), black_box(0.7));
        });
    });
}

fn bench_detector_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    let mut d = Dataset::new(names).unwrap();
    for _ in 0..200 {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-1.0..0.3)).collect();
        let attack: Vec<f64> = (0..4).map(|_| rng.random_range(0.3..1.5)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&attack, Class::Malware).unwrap();
    }
    let targets = d.binary_targets(Class::is_attack);
    let mut lr = LogisticRegression::new();
    lr.fit(&d, &targets).unwrap();
    let row = d.row(0).unwrap().to_vec();
    c.bench_function("lr_infer_row", |b| {
        b.iter(|| black_box(lr.predict_proba_row(black_box(&row)).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ucb, bench_detector_inference
}
criterion_main!(benches);
