//! Benchmarks behind Figure 4(a): the UCB controller's decision and
//! update cost — the "lightweight" property that justifies choosing UCB
//! for run-time scheduling — compared with one detector inference.
//! Emits `BENCH_figure4.json`.

use std::hint::black_box;

use hmd_ml::{Classifier, LogisticRegression};
use hmd_rl::Ucb;
use hmd_tabular::{Class, Dataset};
use hmd_util::bench::Harness;
use hmd_util::rng::prelude::*;

fn bench_ucb(h: &mut Harness) {
    let mut ucb = Ucb::new(5, 0.8);
    for arm in 0..5 {
        ucb.update(arm, 0.5);
    }
    h.bench("ucb_select", || black_box(ucb.select()));
    let mut u = ucb.clone();
    h.bench("ucb_update", || {
        u.update(black_box(2), black_box(0.7));
    });
}

fn bench_detector_inference(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(1);
    let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    let mut d = Dataset::new(names).unwrap();
    for _ in 0..200 {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-1.0..0.3)).collect();
        let attack: Vec<f64> = (0..4).map(|_| rng.random_range(0.3..1.5)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&attack, Class::Malware).unwrap();
    }
    let targets = d.binary_targets(Class::is_attack);
    let mut lr = LogisticRegression::new();
    lr.fit(&d, &targets).unwrap();
    let row = d.row(0).unwrap().to_vec();
    h.bench("lr_infer_row", || black_box(lr.predict_proba_row(black_box(&row)).unwrap()));
}

fn main() {
    let mut h = Harness::new("figure4");
    bench_ucb(&mut h);
    bench_detector_inference(&mut h);
    h.finish();
}
