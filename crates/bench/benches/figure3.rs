//! Criterion benchmarks behind Figure 3: LowProFool per-sample attack
//! generation cost and the A2C predictor's per-sample step/inference
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hmd_adversarial::{Attack, LowProFool};
use hmd_rl::{A2cAgent, A2cConfig, Environment, PredictorEnv};
use hmd_tabular::{Class, Dataset};
use rand::prelude::*;

fn merged(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    let mut d = Dataset::new(names).unwrap();
    for _ in 0..n {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-2.0..-0.2)).collect();
        let malware: Vec<f64> = (0..4).map(|_| rng.random_range(0.2..2.0)).collect();
        let adv: Vec<f64> = (0..4).map(|_| rng.random_range(-0.4..0.1)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&malware, Class::Malware).unwrap();
        d.push(&adv, Class::Adversarial).unwrap();
    }
    d
}

fn bench_lowprofool(c: &mut Criterion) {
    let data = merged(200, 1);
    let attack = LowProFool::fit(&data).unwrap();
    let malware = data.filter(Class::is_attack);
    let row = malware.row(0).unwrap().to_vec();
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("lowprofool_perturb_row", |b| {
        b.iter(|| black_box(attack.perturb_row(black_box(&row), &mut rng).unwrap()));
    });
}

fn bench_a2c(c: &mut Criterion) {
    let data = merged(100, 3);
    let mut env = PredictorEnv::new(&data, 4).unwrap();
    let mut agent = A2cAgent::new(env.state_dim(), env.n_actions(), A2cConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("a2c_train_episode", |b| {
        b.iter(|| black_box(agent.train_episode(&mut env, &mut rng, 1)));
    });
    let row = data.row(0).unwrap().to_vec();
    c.bench_function("a2c_feedback_reward", |b| {
        b.iter(|| black_box(agent.value(black_box(&row))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lowprofool, bench_a2c
}
criterion_main!(benches);
