//! Benchmarks behind Figure 3: LowProFool per-sample attack generation
//! cost and the A2C predictor's per-sample step/inference cost. Emits
//! `BENCH_figure3.json`.

use std::hint::black_box;

use hmd_adversarial::{Attack, LowProFool};
use hmd_rl::{A2cAgent, A2cConfig, Environment, PredictorEnv};
use hmd_tabular::{Class, Dataset};
use hmd_util::bench::Harness;
use hmd_util::rng::prelude::*;

fn merged(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    let mut d = Dataset::new(names).unwrap();
    for _ in 0..n {
        let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-2.0..-0.2)).collect();
        let malware: Vec<f64> = (0..4).map(|_| rng.random_range(0.2..2.0)).collect();
        let adv: Vec<f64> = (0..4).map(|_| rng.random_range(-0.4..0.1)).collect();
        d.push(&benign, Class::Benign).unwrap();
        d.push(&malware, Class::Malware).unwrap();
        d.push(&adv, Class::Adversarial).unwrap();
    }
    d
}

fn bench_lowprofool(h: &mut Harness) {
    let data = merged(200, 1);
    let attack = LowProFool::fit(&data).unwrap();
    let malware = data.filter(Class::is_attack);
    let row = malware.row(0).unwrap().to_vec();
    let mut rng = StdRng::seed_from_u64(2);
    h.bench("lowprofool_perturb_row", || {
        black_box(attack.perturb_row(black_box(&row), &mut rng).unwrap())
    });
}

fn bench_a2c(h: &mut Harness) {
    let data = merged(100, 3);
    let mut env = PredictorEnv::new(&data, 4).unwrap();
    let mut agent = A2cAgent::new(env.state_dim(), env.n_actions(), A2cConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    h.bench("a2c_train_episode", || black_box(agent.train_episode(&mut env, &mut rng, 1)));
    let row = data.row(0).unwrap().to_vec();
    h.bench("a2c_feedback_reward", || black_box(agent.value(black_box(&row))));
}

fn main() {
    let mut h = Harness::new("figure3").sample_size(30);
    bench_lowprofool(&mut h);
    bench_a2c(&mut h);
    h.finish();
}
