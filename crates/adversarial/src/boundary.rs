//! A decision-based (black-box) boundary attack.
//!
//! LowProFool needs gradient access to a surrogate; the boundary attack
//! needs only the defender's *hard decisions* — the strongest-realism
//! variant of the paper's threat model, where the attacker can merely
//! observe whether a crafted HPC vector passes the anti-malware check.
//!
//! The algorithm (a simplified Brendel–Rauber boundary walk): start from
//! a known-benign sample, binary-search along the line toward the
//! malware sample until the decision flips, then alternate random
//! orthogonal perturbations with steps toward the target while staying
//! on the benign side.

use hmd_ml::Classifier;
use hmd_tabular::{Class, Dataset, MinMaxClipper};
use hmd_util::rng::prelude::*;

use crate::attack::{Attack, PerturbedSample};
use crate::AdvError;

/// Hyper-parameters for [`BoundaryAttack`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundaryAttackConfig {
    /// Boundary-walk iterations per sample.
    pub steps: usize,
    /// Initial orthogonal-perturbation scale (relative to the current
    /// distance).
    pub initial_delta: f64,
    /// Step size toward the original sample (relative).
    pub epsilon: f64,
    /// Binary-search refinements of the initial boundary crossing.
    pub binary_search_steps: usize,
}

impl Default for BoundaryAttackConfig {
    fn default() -> Self {
        Self { steps: 120, initial_delta: 0.3, epsilon: 0.2, binary_search_steps: 12 }
    }
}

/// The fitted decision-based attack. It holds a pool of benign starting
/// points and the target model's decision function is supplied per call
/// (the attack never sees probabilities or gradients).
#[derive(Debug)]
pub struct BoundaryAttack<'a> {
    victim: &'a dyn Classifier,
    benign_pool: Dataset,
    clipper: MinMaxClipper,
    config: BoundaryAttackConfig,
}

impl<'a> BoundaryAttack<'a> {
    /// Prepares the attack against `victim`, using `data`'s benign rows
    /// as starting points; outputs are clipped to the overall observed
    /// feature range (the walk interpolates between benign and malware
    /// territory, so the malware-only box of LowProFool would cut off
    /// its own starting points).
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] when no benign rows exist or
    /// the configuration is degenerate.
    pub fn new(
        victim: &'a dyn Classifier,
        data: &Dataset,
        config: BoundaryAttackConfig,
    ) -> Result<Self, AdvError> {
        if config.steps == 0 || config.epsilon <= 0.0 || config.initial_delta <= 0.0 {
            return Err(AdvError::InvalidConfig("steps/epsilon/delta must be positive"));
        }
        let benign_pool = data.filter(|c| c == Class::Benign);
        if benign_pool.is_empty() {
            return Err(AdvError::InvalidConfig("need benign starting points"));
        }
        let clipper = MinMaxClipper::fit(data)?;
        Ok(Self { victim, benign_pool, clipper, config })
    }

    /// The victim's hard decision (`true` = flagged as attack).
    fn flagged(&self, row: &[f64]) -> Result<bool, AdvError> {
        Ok(self.victim.predict_row(row)?)
    }

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }
}

impl Attack for BoundaryAttack<'_> {
    fn name(&self) -> &'static str {
        "Boundary"
    }

    fn perturb_row(&self, row: &[f64], rng: &mut StdRng) -> Result<PerturbedSample, AdvError> {
        let d = row.len();
        // starting point: a benign sample the victim actually passes
        let mut start: Option<Vec<f64>> = None;
        for _ in 0..self.benign_pool.len().min(32) {
            let i = rng.random_range(0..self.benign_pool.len());
            let candidate = self.benign_pool.row(i)?;
            if !self.flagged(candidate)? {
                start = Some(candidate.to_vec());
                break;
            }
        }
        let Some(mut current) = start else {
            // victim flags everything; no evasion possible
            return Ok(PerturbedSample {
                features: row.to_vec(),
                evades: false,
                weighted_norm: 0.0,
                iterations: 0,
            });
        };

        // binary-search the crossing point on the segment current→row
        let mut lo = 0.0f64; // fraction toward `row` that is still benign
        let mut hi = 1.0f64;
        for _ in 0..self.config.binary_search_steps {
            let mid = (lo + hi) / 2.0;
            let probe: Vec<f64> =
                current.iter().zip(row).map(|(s, t)| s + mid * (t - s)).collect();
            if self.flagged(&probe)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        current = current.iter().zip(row).map(|(s, t)| s + lo * (t - s)).collect();

        // boundary walk: orthogonal jitter + step toward the target
        let mut iterations = self.config.binary_search_steps;
        let mut delta = self.config.initial_delta;
        for _ in 0..self.config.steps {
            iterations += 1;
            let dist = Self::distance(&current, row);
            if dist < 1e-9 {
                break;
            }
            // random direction scaled to delta·dist, projected to keep
            // roughly the same distance from the target
            let noise: Vec<f64> = (0..d)
                .map(|_| {
                    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.random();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                })
                .collect();
            let noise_norm = noise.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            let mut candidate: Vec<f64> = current
                .iter()
                .zip(&noise)
                .map(|(c, n)| c + delta * dist * n / noise_norm)
                .collect();
            // contraction toward the target
            for (c, &t) in candidate.iter_mut().zip(row) {
                *c += self.config.epsilon * (t - *c);
            }
            self.clipper.clip_row(&mut candidate)?;
            if !self.flagged(&candidate)? && Self::distance(&candidate, row) < dist {
                current = candidate;
                delta = (delta * 1.1).min(0.5);
            } else {
                delta = (delta * 0.85).max(1e-3);
            }
        }

        let evades = !self.flagged(&current)?;
        let weighted_norm = Self::distance(&current, row);
        Ok(PerturbedSample { features: current, evades, weighted_norm, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_ml::RandomForest;

    fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.4), rng.random_range(-1.0..0.4)];
            let attack = [rng.random_range(0.2..1.6), rng.random_range(0.2..1.6)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn evades_a_black_box_forest() {
        let (d, t) = blobs(150, 1);
        let mut rf = RandomForest::new();
        rf.fit(&d, &t).unwrap();
        let attack = BoundaryAttack::new(&rf, &d, BoundaryAttackConfig::default()).unwrap();
        let malware = d.filter(Class::is_attack);
        let subset = malware.subset(&(0..30).collect::<Vec<_>>()).unwrap();
        let result = attack.generate(&subset, 9).unwrap();
        assert!(
            result.success_rate() > 0.8,
            "boundary attack success {}",
            result.success_rate()
        );
        // every evading sample really passes the victim
        for o in result.outcomes.iter().filter(|o| o.evades) {
            assert!(!rf.predict_row(&o.features).unwrap());
        }
    }

    #[test]
    fn walk_shrinks_distance_from_start() {
        let (d, t) = blobs(120, 2);
        let mut rf = RandomForest::new();
        rf.fit(&d, &t).unwrap();
        let attack = BoundaryAttack::new(&rf, &d, BoundaryAttackConfig::default()).unwrap();
        let malware = d.filter(Class::is_attack);
        let mut rng = StdRng::seed_from_u64(3);
        let target = malware.row(0).unwrap();
        let out = attack.perturb_row(target, &mut rng).unwrap();
        // the crafted point is closer to the target than a typical benign
        // sample is (the walk made progress)
        let mean_benign_dist: f64 = {
            let benign = d.filter(|c| c == Class::Benign);
            let total: f64 = (0..benign.len())
                .map(|i| BoundaryAttack::<'_>::distance(benign.row(i).unwrap(), target))
                .sum();
            total / benign.len() as f64
        };
        assert!(out.weighted_norm < mean_benign_dist);
    }

    #[test]
    fn respects_clip_bounds() {
        let (d, t) = blobs(100, 4);
        let mut rf = RandomForest::new();
        rf.fit(&d, &t).unwrap();
        let attack = BoundaryAttack::new(&rf, &d, BoundaryAttackConfig::default()).unwrap();
        let malware = d.filter(Class::is_attack);
        let clipper = MinMaxClipper::fit(&d).unwrap();
        let subset = malware.subset(&(0..10).collect::<Vec<_>>()).unwrap();
        let result = attack.generate(&subset, 5).unwrap();
        for o in &result.outcomes {
            if o.iterations == 0 {
                continue; // untouched fallback
            }
            for (f, &v) in o.features.iter().enumerate() {
                assert!(v >= clipper.mins()[f] - 1e-9);
                assert!(v <= clipper.maxs()[f] + 1e-9);
            }
        }
    }

    #[test]
    fn validates_config_and_data() {
        let (d, t) = blobs(30, 6);
        let mut rf = RandomForest::new();
        rf.fit(&d, &t).unwrap();
        assert!(matches!(
            BoundaryAttack::new(
                &rf,
                &d,
                BoundaryAttackConfig { steps: 0, ..BoundaryAttackConfig::default() }
            ),
            Err(AdvError::InvalidConfig(_))
        ));
        let malware_only = d.filter(Class::is_attack);
        assert!(matches!(
            BoundaryAttack::new(&rf, &malware_only, BoundaryAttackConfig::default()),
            Err(AdvError::InvalidConfig(_))
        ));
    }
}
