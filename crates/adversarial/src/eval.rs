//! Transferability evaluation: how adversarial samples crafted against
//! the LR surrogate degrade *other* detectors (paper §3, "Hardware
//! Malware Detection under Adversarial Attacks").

use hmd_ml::{BinaryMetrics, Classifier, MlError};
use hmd_util::{impl_json, par};
use hmd_tabular::{Class, Dataset};

/// The before/after metric pair for one model under transfer attack.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferRecord {
    /// Model name.
    pub model: String,
    /// Metrics on the clean test set.
    pub clean: BinaryMetrics,
    /// Metrics on the test set with malware rows replaced by their
    /// adversarial versions.
    pub attacked: BinaryMetrics,
}

impl_json!(struct TransferRecord { model, clean, attacked });

impl TransferRecord {
    /// Absolute F1 drop caused by the attack.
    #[must_use]
    pub fn f1_drop(&self) -> f64 {
        self.clean.f1 - self.attacked.f1
    }
}

/// Builds the attacked test set: benign rows stay, malware rows are
/// replaced by adversarial counterparts (which keep label
/// [`Class::Malware`] for *evaluation* — they still are malware, the
/// attacker merely disguised their features).
///
/// # Errors
///
/// Returns an error when the datasets' schemas differ or `adversarial`
/// has fewer rows than `test` has malware rows.
pub fn attacked_test_set(
    test: &Dataset,
    adversarial: &Dataset,
) -> Result<Dataset, hmd_tabular::TabularError> {
    if test.feature_names() != adversarial.feature_names() {
        return Err(hmd_tabular::TabularError::SchemaMismatch);
    }
    let mut out = Dataset::new(test.feature_names().to_vec())?;
    let mut adv_iter = 0usize;
    for (row, label) in test {
        if label.is_attack() {
            if adv_iter >= adversarial.len() {
                return Err(hmd_tabular::TabularError::SampleIndexOutOfRange {
                    index: adv_iter,
                    n_samples: adversarial.len(),
                });
            }
            out.push(adversarial.row(adv_iter)?, Class::Malware)?;
            adv_iter += 1;
        } else {
            out.push(row, Class::Benign)?;
        }
    }
    Ok(out)
}

/// Evaluates every model on the clean and attacked test sets.
///
/// Models are scored in parallel (evaluation never mutates them, and
/// records come back in `models` order); any batch-level parallelism
/// inside a model's `predict_proba` runs sequentially on its worker
/// thanks to the nested-region guard in [`hmd_util::par`].
///
/// # Errors
///
/// Propagates prediction errors from the models.
pub fn transferability(
    models: &[Box<dyn Classifier>],
    clean_test: &Dataset,
    attacked_test: &Dataset,
) -> Result<Vec<TransferRecord>, MlError> {
    let clean_targets = clean_test.binary_targets(Class::is_attack);
    let attacked_targets = attacked_test.binary_targets(Class::is_attack);
    par::par_map(models, |m| {
        Ok(TransferRecord {
            model: m.name().to_owned(),
            clean: hmd_ml::evaluate(m.as_ref(), clean_test, &clean_targets)?,
            attacked: hmd_ml::evaluate(m.as_ref(), attacked_test, &attacked_targets)?,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_ml::LogisticRegression;
    use hmd_util::rng::prelude::*;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into()]).unwrap();
        for _ in 0..n {
            d.push(&[rng.random_range(-1.0..0.0)], Class::Benign).unwrap();
            d.push(&[rng.random_range(0.5..1.5)], Class::Malware).unwrap();
        }
        d
    }

    #[test]
    fn attacked_set_replaces_malware_rows() {
        let test = blobs(10, 1);
        let malware = test.filter(Class::is_attack);
        let mut adversarial = Dataset::new(test.feature_names().to_vec()).unwrap();
        for _ in 0..malware.len() {
            adversarial.push(&[-0.5], Class::Adversarial).unwrap();
        }
        let attacked = attacked_test_set(&test, &adversarial).unwrap();
        assert_eq!(attacked.len(), test.len());
        // all malware rows became -0.5 (benign-looking), still labeled malware
        for (row, label) in &attacked {
            if label.is_attack() {
                assert_eq!(row, &[-0.5]);
            }
        }
    }

    #[test]
    fn attacked_set_validates_counts_and_schema() {
        let test = blobs(5, 2);
        let too_few = Dataset::new(test.feature_names().to_vec()).unwrap();
        assert!(attacked_test_set(&test, &too_few).is_err());
        let wrong = Dataset::new(vec!["other".into()]).unwrap();
        assert!(matches!(
            attacked_test_set(&test, &wrong),
            Err(hmd_tabular::TabularError::SchemaMismatch)
        ));
    }

    #[test]
    fn transfer_records_show_f1_drop() {
        let train = blobs(100, 3);
        let test = blobs(50, 4);
        let targets = train.binary_targets(Class::is_attack);
        let mut lr = LogisticRegression::new();
        lr.fit(&train, &targets).unwrap();
        let models: Vec<Box<dyn Classifier>> = vec![Box::new(lr)];

        // perfect disguise: all malware moved into the benign cluster
        let malware = test.filter(Class::is_attack);
        let mut adversarial = Dataset::new(test.feature_names().to_vec()).unwrap();
        for _ in 0..malware.len() {
            adversarial.push(&[-0.5], Class::Adversarial).unwrap();
        }
        let attacked = attacked_test_set(&test, &adversarial).unwrap();
        let records = transferability(&models, &test, &attacked).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].clean.f1 > 0.95);
        assert!(records[0].attacked.f1 < 0.1);
        assert!(records[0].f1_drop() > 0.85);
    }
}
