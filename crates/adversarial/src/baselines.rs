//! Baseline attacks LowProFool is compared against: targeted FGSM and
//! unguided random noise.

use hmd_ml::{Classifier, LogisticRegression};
use hmd_tabular::{Class, Dataset, MinMaxClipper};
use hmd_util::rng::prelude::*;

use crate::attack::{Attack, PerturbedSample};
use crate::AdvError;

/// Targeted Fast Gradient Sign Method: one step of size ε along
/// `−sign(∇ₓ L(x, benign))`, clipped to the malware feature range.
///
/// # Example
///
/// ```
/// use hmd_adversarial::{Attack, Fgsm};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_adversarial::AdvError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..25 { d.push(&[i as f64 / 10.0], Class::Benign)?; }
/// for i in 15..40 { d.push(&[i as f64 / 10.0], Class::Malware)?; }
/// let attack = Fgsm::fit(&d, 1.5)?;
/// let result = attack.generate(&d.filter(Class::is_attack), 1)?;
/// assert!(result.success_rate() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Fgsm {
    epsilon: f64,
    surrogate: LogisticRegression,
    clipper: MinMaxClipper,
}

impl Fgsm {
    /// Fits the LR surrogate and bounds, with step size `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] for non-positive ε; propagates
    /// surrogate-training errors.
    pub fn fit(data: &Dataset, epsilon: f64) -> Result<Self, AdvError> {
        if epsilon <= 0.0 {
            return Err(AdvError::InvalidConfig("epsilon must be positive"));
        }
        let targets = data.binary_targets(Class::is_attack);
        let mut surrogate = LogisticRegression::new();
        surrogate.fit(data, &targets)?;
        let clipper = MinMaxClipper::fit(&data.filter(Class::is_attack))?;
        Ok(Self { epsilon, surrogate, clipper })
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "FGSM"
    }

    fn perturb_row(&self, row: &[f64], _rng: &mut StdRng) -> Result<PerturbedSample, AdvError> {
        let grad = self.surrogate.input_gradient(row, 0.0)?;
        let mut x: Vec<f64> = row
            .iter()
            .zip(&grad)
            .map(|(xi, g)| xi - self.epsilon * g.signum())
            .collect();
        self.clipper.clip_row(&mut x)?;
        let evades = self.surrogate.predict_proba_row(&x)? < 0.5;
        let norm = x
            .iter()
            .zip(row)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        Ok(PerturbedSample { features: x, evades, weighted_norm: norm, iterations: 1 })
    }
}

/// Unguided Gaussian noise — the sanity baseline: perturbs every feature
/// with `N(0, σ²)` and hopes. Real attacks must beat this.
#[derive(Clone, Debug)]
pub struct RandomNoise {
    sigma: f64,
    evaluator: LogisticRegression,
    clipper: MinMaxClipper,
}

impl RandomNoise {
    /// Fits bounds and the evaluation LR, with noise scale `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] for non-positive σ; propagates
    /// training errors.
    pub fn fit(data: &Dataset, sigma: f64) -> Result<Self, AdvError> {
        if sigma <= 0.0 {
            return Err(AdvError::InvalidConfig("sigma must be positive"));
        }
        let targets = data.binary_targets(Class::is_attack);
        let mut evaluator = LogisticRegression::new();
        evaluator.fit(data, &targets)?;
        let clipper = MinMaxClipper::fit(&data.filter(Class::is_attack))?;
        Ok(Self { sigma, evaluator, clipper })
    }
}

impl Attack for RandomNoise {
    fn name(&self) -> &'static str {
        "RandomNoise"
    }

    fn perturb_row(&self, row: &[f64], rng: &mut StdRng) -> Result<PerturbedSample, AdvError> {
        // Box–Muller, sequential pairs
        let mut x = row.to_vec();
        for v in &mut x {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *v += self.sigma * z;
        }
        self.clipper.clip_row(&mut x)?;
        let evades = self.evaluator.predict_proba_row(&x)? < 0.5;
        let norm = x
            .iter()
            .zip(row)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        Ok(PerturbedSample { features: x, evades, weighted_norm: norm, iterations: 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.4), rng.random_range(-1.0..0.4)];
            let attack = [rng.random_range(0.2..1.5), rng.random_range(0.2..1.5)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        d
    }

    #[test]
    fn fgsm_with_large_epsilon_evades() {
        let data = blobs(120, 1);
        let attack = Fgsm::fit(&data, 2.0).unwrap();
        let result = attack.generate(&data.filter(Class::is_attack), 2).unwrap();
        assert!(result.success_rate() > 0.5, "fgsm success {}", result.success_rate());
    }

    #[test]
    fn fgsm_with_tiny_epsilon_fails() {
        let data = blobs(120, 2);
        let attack = Fgsm::fit(&data, 0.01).unwrap();
        let result = attack.generate(&data.filter(Class::is_attack), 2).unwrap();
        assert!(result.success_rate() < 0.3, "fgsm success {}", result.success_rate());
    }

    #[test]
    fn noise_rarely_evades() {
        let data = blobs(120, 3);
        let attack = RandomNoise::fit(&data, 0.1).unwrap();
        let result = attack.generate(&data.filter(Class::is_attack), 4).unwrap();
        assert!(result.success_rate() < 0.4, "noise success {}", result.success_rate());
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let data = blobs(60, 5);
        let attack = RandomNoise::fit(&data, 0.2).unwrap();
        let malware = data.filter(Class::is_attack);
        let a = attack.generate(&malware, 9).unwrap();
        let b = attack.generate(&malware, 9).unwrap();
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn configs_validate() {
        let data = blobs(40, 6);
        assert!(matches!(Fgsm::fit(&data, 0.0), Err(AdvError::InvalidConfig(_))));
        assert!(matches!(RandomNoise::fit(&data, -1.0), Err(AdvError::InvalidConfig(_))));
    }
}
