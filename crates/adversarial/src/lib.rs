//! Adversarial attack generation for tabular HPC data (paper §2.4).
//!
//! The paper's threat model: attackers profile malware the same way the
//! defenders do, then craft *imperceptible* perturbations of the HPC
//! feature vectors so detectors classify running malware as benign — the
//! executable itself is untouched; the counters the anti-malware system
//! reads are what gets manipulated (via malicious firmware or MITM on the
//! inference path).
//!
//! * [`LowProFool`] — the paper's customized attack (Eq. 1 +
//!   Algorithm 1): gradient descent on the LR surrogate's loss plus a
//!   feature-importance-weighted norm penalty, min/max clipping to the
//!   observed malware range, and an LR imperceptibility evaluator that
//!   keeps the smallest accepted perturbation. Reaches ~100% success.
//! * [`Fgsm`], [`RandomNoise`] — baselines for comparison.
//! * [`BoundaryAttack`] — a decision-based black-box attack needing only
//!   hard verdicts (the strongest-realism threat model).
//! * [`defense`] — the alternative defenses of the paper's Table 1:
//!   RHMD-style randomized ensembles and a moving-target defense, for
//!   head-to-head comparison with adversarial training.
//! * [`eval`] — transferability evaluation across the whole model zoo.
//!
//! # Example
//!
//! ```
//! use hmd_adversarial::{Attack, LowProFool};
//! use hmd_tabular::{Class, Dataset};
//!
//! # fn main() -> Result<(), hmd_adversarial::AdvError> {
//! # let mut data = Dataset::new(vec!["e".into()])?;
//! # for i in 0..40 {
//! #     let label = if i < 20 { Class::Benign } else { Class::Malware };
//! #     data.push(&[i as f64], label)?;
//! # }
//! let attack = LowProFool::fit(&data)?;
//! let result = attack.generate(&data.filter(Class::is_attack), 42)?;
//! println!("success rate: {:.0}%", result.success_rate() * 100.0);
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod baselines;
pub mod boundary;
pub mod defense;
pub mod eval;
pub mod lowprofool;

mod error;

pub use attack::{Attack, AttackResult, PerturbedSample};
pub use baselines::{Fgsm, RandomNoise};
pub use boundary::{BoundaryAttack, BoundaryAttackConfig};
pub use defense::{MovingTargetDefense, RandomizedEnsemble};
pub use error::AdvError;
pub use eval::{attacked_test_set, transferability, TransferRecord};
pub use lowprofool::{LowProFool, LowProFoolConfig};
