//! The [`Attack`] abstraction and its result types.

use hmd_tabular::{Class, Dataset, TabularError};
use hmd_util::impl_json;
use hmd_util::rng::prelude::*;

use crate::AdvError;

/// The outcome of perturbing one malware sample.
#[derive(Clone, Debug, PartialEq)]
pub struct PerturbedSample {
    /// The adversarial feature vector.
    pub features: Vec<f64>,
    /// Whether the imperceptibility evaluator classified it as benign.
    pub evades: bool,
    /// Weighted perturbation norm `‖r ⊙ v‖₂`.
    pub weighted_norm: f64,
    /// Optimization iterations spent.
    pub iterations: usize,
}

impl_json!(struct PerturbedSample { features, evades, weighted_norm, iterations });

/// The outcome of an attack campaign over a malware dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackResult {
    /// The adversarial samples, labeled [`Class::Adversarial`], in input
    /// row order.
    pub adversarial: Dataset,
    /// Per-sample outcomes aligned with `adversarial` rows.
    pub outcomes: Vec<PerturbedSample>,
}

impl_json!(struct AttackResult { adversarial, outcomes });

impl AttackResult {
    /// Fraction of samples that evade the imperceptibility evaluator —
    /// the paper's attack success rate (reported at 100% for LowProFool).
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let ok = self.outcomes.iter().filter(|o| o.evades).count();
        ok as f64 / self.outcomes.len() as f64
    }

    /// Mean weighted perturbation norm over successful samples.
    #[must_use]
    pub fn mean_perturbation(&self) -> f64 {
        let succ: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.evades)
            .map(|o| o.weighted_norm)
            .collect();
        if succ.is_empty() {
            return 0.0;
        }
        succ.iter().sum::<f64>() / succ.len() as f64
    }

    /// Only the evading samples, as a dataset (what an attacker deploys).
    ///
    /// # Errors
    ///
    /// Propagates dataset subsetting errors.
    pub fn evading_subset(&self) -> Result<Dataset, TabularError> {
        let idx: Vec<usize> = self
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.evades)
            .map(|(i, _)| i)
            .collect();
        self.adversarial.subset(&idx)
    }
}

/// An adversarial evasion attack on tabular HPC feature vectors.
///
/// Implementations perturb malware rows so an ML detector classifies them
/// as benign while keeping the perturbation imperceptible (small weighted
/// norm, within physical feature bounds).
pub trait Attack: Send + std::fmt::Debug {
    /// Attack name for reports.
    fn name(&self) -> &'static str;

    /// Perturbs one malware feature vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the attack was not fitted or `row` has the
    /// wrong width.
    fn perturb_row(&self, row: &[f64], rng: &mut StdRng) -> Result<PerturbedSample, AdvError>;

    /// Runs the attack over every row of `malware` (rows are expected to
    /// be legitimate malware samples).
    ///
    /// # Errors
    ///
    /// Propagates [`Attack::perturb_row`] errors.
    fn generate(&self, malware: &Dataset, seed: u64) -> Result<AttackResult, AdvError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adversarial = Dataset::new(malware.feature_names().to_vec())?;
        let mut outcomes = Vec::with_capacity(malware.len());
        for (row, _) in malware {
            let outcome = self.perturb_row(row, &mut rng)?;
            adversarial.push(&outcome.features, Class::Adversarial)?;
            outcomes.push(outcome);
        }
        Ok(AttackResult { adversarial, outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(evades: Vec<bool>) -> AttackResult {
        let mut adversarial = Dataset::new(vec!["x".into()]).unwrap();
        let outcomes = evades
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                adversarial.push(&[i as f64], Class::Adversarial).unwrap();
                PerturbedSample {
                    features: vec![i as f64],
                    evades: e,
                    weighted_norm: 0.5,
                    iterations: 3,
                }
            })
            .collect();
        AttackResult { adversarial, outcomes }
    }

    #[test]
    fn success_rate_counts_evaders() {
        let r = result_with(vec![true, false, true, true]);
        assert!((r.success_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_result_has_zero_rates() {
        let r = result_with(vec![]);
        assert_eq!(r.success_rate(), 0.0);
        assert_eq!(r.mean_perturbation(), 0.0);
    }

    #[test]
    fn evading_subset_filters() {
        let r = result_with(vec![true, false, true]);
        let e = r.evading_subset().unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.row(1).unwrap(), &[2.0]);
    }

    #[test]
    fn mean_perturbation_over_successes_only() {
        let r = result_with(vec![true, false]);
        assert!((r.mean_perturbation() - 0.5).abs() < 1e-12);
    }
}
