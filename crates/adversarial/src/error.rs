use std::error::Error;
use std::fmt;

use hmd_ml::MlError;
use hmd_tabular::TabularError;

/// Errors produced by adversarial attack generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdvError {
    /// The attack was used before fitting its surrogate/evaluator.
    NotFitted,
    /// An invalid attack hyper-parameter.
    InvalidConfig(&'static str),
    /// The underlying surrogate model failed.
    Ml(MlError),
    /// The underlying tabular operation failed.
    Tabular(TabularError),
}

impl fmt::Display for AdvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFitted => write!(f, "attack used before fitting"),
            Self::InvalidConfig(what) => write!(f, "invalid attack configuration: {what}"),
            Self::Ml(e) => write!(f, "surrogate model error: {e}"),
            Self::Tabular(e) => write!(f, "tabular error: {e}"),
        }
    }
}

impl Error for AdvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Ml(e) => Some(e),
            Self::Tabular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for AdvError {
    fn from(e: MlError) -> Self {
        Self::Ml(e)
    }
}

impl From<TabularError> for AdvError {
    fn from(e: TabularError) -> Self {
        Self::Tabular(e)
    }
}
