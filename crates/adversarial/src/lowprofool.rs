//! The customized LowProFool attack for tabular HPC data (paper §2.4,
//! Algorithm 1).
//!
//! LowProFool (Ballet et al. 2019) minimizes
//!
//! `g(r) = L(x + r, t) + λ‖r ⊙ v‖ₚ²`        (Eq. 1 of the paper)
//!
//! where `L` is the surrogate's loss toward the target label `t` (benign),
//! `v` is a per-feature importance vector, and λ trades evasion against
//! imperceptibility. The paper customizes it with (a) min/max clipping of
//! the perturbed vector to the observed malware feature range, and (b) a
//! Logistic-Regression *imperceptibility evaluator* that accepts a
//! candidate only when it crosses the benign decision boundary; the best
//! (smallest weighted-norm) accepted candidate over all steps wins.

use hmd_ml::{Classifier, LogisticRegression};
use hmd_tabular::stats::pearson;
use hmd_tabular::{Dataset, MinMaxClipper};
use hmd_util::impl_json;
use hmd_util::rng::prelude::*;

use hmd_util::par;

use crate::attack::{Attack, AttackResult, PerturbedSample};
use crate::AdvError;

/// Hyper-parameters for [`LowProFool`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LowProFoolConfig {
    /// Weight λ of the imperceptibility regularizer in Eq. 1.
    pub lambda: f64,
    /// Gradient-descent step size α.
    pub alpha: f64,
    /// Maximum optimization steps per sample.
    pub max_iters: usize,
    /// Extra margin pushed past the decision boundary: candidates are
    /// accepted when `P(attack) < 0.5 − margin`, making the adversarial
    /// samples robustly benign to the evaluator.
    pub margin: f64,
}

impl_json!(struct LowProFoolConfig { lambda, alpha, max_iters, margin });

impl Default for LowProFoolConfig {
    fn default() -> Self {
        Self { lambda: 1.0, alpha: 0.15, max_iters: 200, margin: 0.05 }
    }
}

/// The fitted LowProFool attack.
///
/// # Example
///
/// ```
/// use hmd_adversarial::{Attack, LowProFool};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_adversarial::AdvError> {
/// // overlapping classes: malware range reaches into benign territory
/// let mut d = Dataset::new(vec!["llc-misses".into()])?;
/// for i in 0..25 { d.push(&[i as f64 / 10.0], Class::Benign)?; }
/// for i in 15..40 { d.push(&[i as f64 / 10.0], Class::Malware)?; }
/// let attack = LowProFool::fit(&d)?;
/// let malware = d.filter(Class::is_attack);
/// let result = attack.generate(&malware, 7)?;
/// assert!(result.success_rate() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LowProFool {
    config: LowProFoolConfig,
    /// The surrogate + imperceptibility evaluator (paper: LR trained on
    /// legitimate malware and benign data).
    surrogate: LogisticRegression,
    /// Normalized per-feature importance `v` (absolute Pearson
    /// correlation with the label, as in the LowProFool paper).
    importance: Vec<f64>,
    /// Bounds fitted on the malware data (Algorithm 1, line 1).
    clipper: MinMaxClipper,
}

impl LowProFool {
    /// Fits the attack on labeled data: trains the LR surrogate /
    /// imperceptibility evaluator, computes the feature-importance vector,
    /// and records per-feature clipping bounds from the malware rows.
    ///
    /// # Errors
    ///
    /// Propagates surrogate-training and bound-fitting errors.
    pub fn fit(data: &Dataset) -> Result<Self, AdvError> {
        Self::fit_with_config(data, LowProFoolConfig::default())
    }

    /// [`Self::fit`] with explicit hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] for non-positive λ/α/iters and
    /// propagates surrogate-training errors.
    pub fn fit_with_config(data: &Dataset, config: LowProFoolConfig) -> Result<Self, AdvError> {
        if config.lambda < 0.0 || config.alpha <= 0.0 || config.max_iters == 0 {
            return Err(AdvError::InvalidConfig("lambda ≥ 0, alpha > 0, iters > 0 required"));
        }
        let targets = data.binary_targets(hmd_tabular::Class::is_attack);
        let mut surrogate = LogisticRegression::new();
        surrogate.fit(data, &targets)?;

        // importance v_i = |pearson(x_i, y)|, normalized to unit L2 norm
        let mut importance = Vec::with_capacity(data.n_features());
        for f in 0..data.n_features() {
            let col = data.column(f)?;
            importance.push(pearson(&col, &targets).abs());
        }
        let norm = importance.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > f64::EPSILON {
            for v in &mut importance {
                *v /= norm;
            }
        } else {
            let uniform = 1.0 / (importance.len() as f64).sqrt();
            importance.fill(uniform);
        }

        let malware = data.filter(hmd_tabular::Class::is_attack);
        let clipper = MinMaxClipper::fit(&malware)?;
        Ok(Self { config, surrogate, importance, clipper })
    }

    /// The fitted per-feature importance vector `v`.
    #[must_use]
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }

    /// The LR surrogate / imperceptibility evaluator.
    #[must_use]
    pub fn evaluator(&self) -> &LogisticRegression {
        &self.surrogate
    }

    /// Weighted norm `‖r ⊙ v‖₂`.
    fn weighted_norm(&self, r: &[f64]) -> f64 {
        r.iter()
            .zip(&self.importance)
            .map(|(ri, vi)| (ri * vi) * (ri * vi))
            .sum::<f64>()
            .sqrt()
    }
}

impl Attack for LowProFool {
    fn name(&self) -> &'static str {
        "LowProFool"
    }

    fn perturb_row(&self, row: &[f64], _rng: &mut StdRng) -> Result<PerturbedSample, AdvError> {
        let d = row.len();
        let accept_below = 0.5 - self.config.margin;
        let mut iterations = 0;
        let mut last_x = row.to_vec();

        // Adaptive λ back-off: samples deep inside the malware region stall
        // when the imperceptibility pull-back balances the loss gradient;
        // relaxing λ (eventually to 0 = pure loss descent) guarantees the
        // boundary is crossed whenever the clip box allows it, while
        // near-boundary samples keep the most imperceptible perturbation
        // from the strongest λ that succeeds.
        for lambda_scale in [1.0, 0.25, 0.0625, 0.0] {
            let lambda = self.config.lambda * lambda_scale;
            let mut x = row.to_vec();
            let mut best: Option<(Vec<f64>, f64)> = None;
            for _ in 0..self.config.max_iters {
                iterations += 1;
                // ∇ₓ L(x, benign) from the surrogate
                let grad_loss = self.surrogate.input_gradient(&x, 0.0)?;
                for i in 0..d {
                    // ∇ of λ‖r⊙v‖² = 2λ v² r, with r = x − x₀
                    let r_i = x[i] - row[i];
                    let grad_reg =
                        2.0 * lambda * self.importance[i] * self.importance[i] * r_i;
                    x[i] -= self.config.alpha * (grad_loss[i] + grad_reg);
                }
                // Algorithm 1: clip to the observed malware min/max
                self.clipper.clip_row(&mut x)?;

                // evaluate imperceptibility: must cross the benign boundary
                let p = self.surrogate.predict_proba_row(&x)?;
                if p < accept_below {
                    let r: Vec<f64> =
                        x.iter().zip(row).map(|(xi, x0)| xi - x0).collect();
                    let norm = self.weighted_norm(&r);
                    if best.as_ref().is_none_or(|(_, b)| norm < *b) {
                        best = Some((x.clone(), norm));
                    }
                }
            }
            if let Some((features, weighted_norm)) = best {
                return Ok(PerturbedSample {
                    features,
                    evades: true,
                    weighted_norm,
                    iterations,
                });
            }
            last_x = x;
        }

        // No λ level crossed the boundary (infeasible within clip bounds).
        let r: Vec<f64> = last_x.iter().zip(row).map(|(xi, x0)| xi - x0).collect();
        let weighted_norm = self.weighted_norm(&r);
        let evades = self.surrogate.predict_proba_row(&last_x)? < 0.5;
        Ok(PerturbedSample { features: last_x, evades, weighted_norm, iterations })
    }

    /// Corpus-scale attack generation parallelized over samples.
    ///
    /// The gradient descent in [`Self::perturb_row`] is deterministic (it
    /// never draws from the RNG), so each row can be optimized on its own
    /// worker with a per-row derived RNG and the result is byte-identical
    /// to the sequential default at any thread count.
    fn generate(&self, malware: &Dataset, seed: u64) -> Result<AttackResult, AdvError> {
        let _span = hmd_telemetry::span("attack.lowprofool.generate");
        let indices: Vec<usize> = (0..malware.len()).collect();
        let outcomes: Vec<PerturbedSample> = par::par_map(&indices, |&i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.perturb_row(malware.row(i)?, &mut rng)
        })
        .into_iter()
        .collect::<Result<_, AdvError>>()?;
        if hmd_telemetry::enabled() {
            let samples = hmd_telemetry::metrics::counter("attack.lowprofool.samples");
            let evasions = hmd_telemetry::metrics::counter("attack.lowprofool.evasions");
            let iterations = hmd_telemetry::metrics::counter("attack.lowprofool.iterations");
            let norms = hmd_telemetry::metrics::histogram("attack.lowprofool.norm_micro");
            for outcome in &outcomes {
                samples.inc();
                if outcome.evades {
                    evasions.inc();
                }
                iterations.add(outcome.iterations as u64);
                norms.record_scaled(outcome.weighted_norm, 1e6);
            }
        }
        let mut adversarial = Dataset::new(malware.feature_names().to_vec())?;
        for outcome in &outcomes {
            adversarial.push(&outcome.features, hmd_tabular::Class::Adversarial)?;
        }
        Ok(AttackResult { adversarial, outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_tabular::Class;

    /// Overlapping 2-D blobs: malware up-right, benign down-left.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.5), rng.random_range(-1.0..0.5)];
            let attack = [rng.random_range(0.0..1.5), rng.random_range(0.0..1.5)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        d
    }

    #[test]
    fn achieves_high_success_rate() {
        let data = blobs(150, 1);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let result = attack.generate(&malware, 3).unwrap();
        assert!(result.success_rate() >= 0.99, "success {}", result.success_rate());
    }

    #[test]
    fn adversarial_samples_fool_the_evaluator() {
        let data = blobs(100, 2);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let result = attack.generate(&malware, 3).unwrap();
        for (row, _) in &result.evading_subset().unwrap() {
            let p = attack.evaluator().predict_proba_row(row).unwrap();
            assert!(p < 0.5, "evader scored {p}");
        }
    }

    #[test]
    fn perturbations_are_small_relative_to_gap() {
        let data = blobs(100, 4);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let result = attack.generate(&malware, 5).unwrap();
        // mean weighted perturbation norm is far below the class-mean gap (~1.0)
        assert!(result.mean_perturbation() < 1.0, "norm {}", result.mean_perturbation());
        assert!(result.mean_perturbation() > 0.0);
    }

    #[test]
    fn respects_clipping_bounds() {
        let data = blobs(100, 6);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let result = attack.generate(&malware, 7).unwrap();
        let (mins, maxs) = (attack.clipper.mins().to_vec(), attack.clipper.maxs().to_vec());
        for (row, _) in &result.adversarial {
            for (i, &v) in row.iter().enumerate() {
                assert!(v >= mins[i] - 1e-9 && v <= maxs[i] + 1e-9);
            }
        }
    }

    #[test]
    fn importance_is_normalized() {
        let data = blobs(80, 8);
        let attack = LowProFool::fit(&data).unwrap();
        let norm: f64 = attack.importance().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_lambda_means_smaller_perturbations() {
        let data = blobs(100, 9);
        let malware = data.filter(Class::is_attack);
        let run = |lambda| {
            let attack = LowProFool::fit_with_config(
                &data,
                LowProFoolConfig { lambda, ..LowProFoolConfig::default() },
            )
            .unwrap();
            attack.generate(&malware, 1).unwrap().mean_perturbation()
        };
        assert!(run(8.0) <= run(0.0) + 1e-9);
    }

    #[test]
    fn rejects_bad_config() {
        let data = blobs(50, 10);
        assert!(matches!(
            LowProFool::fit_with_config(
                &data,
                LowProFoolConfig { alpha: 0.0, ..LowProFoolConfig::default() }
            ),
            Err(AdvError::InvalidConfig(_))
        ));
    }

    #[test]
    fn labels_output_as_adversarial() {
        let data = blobs(50, 11);
        let attack = LowProFool::fit(&data).unwrap();
        let malware = data.filter(Class::is_attack);
        let result = attack.generate(&malware, 1).unwrap();
        assert!(result
            .adversarial
            .labels()
            .iter()
            .all(|&l| l == Class::Adversarial));
        assert_eq!(result.adversarial.len(), malware.len());
    }
}
