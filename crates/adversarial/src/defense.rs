//! Alternative defenses from the paper's comparison table (Table 1):
//! the RHMD-style randomized classifier (Khasawneh et al., MICRO'17) and
//! a moving-target defense (Kuruvila et al., TCAD'21), implemented so the
//! paper's adversarial-training + RL approach can be compared against
//! them under the same attacks.

use hmd_ml::{Classifier, MlError};
use hmd_tabular::Dataset;
use hmd_util::rng::prelude::*;

use crate::AdvError;

/// RHMD-style randomized ensemble: a pool of diverse detectors, one of
/// which is selected per query by a keyed pseudo-random draw. The
/// attacker cannot predict which detector scores a given sample, so an
/// evasion must transfer to *every* member to evade reliably.
///
/// # Example
///
/// ```
/// use hmd_adversarial::defense::RandomizedEnsemble;
/// use hmd_ml::{Classifier, DecisionTree, LogisticRegression};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_adversarial::AdvError> {
/// # let mut d = Dataset::new(vec!["x".into()])?;
/// # for i in 0..30 { d.push(&[i as f64], if i < 15 { Class::Benign } else { Class::Malware })?; }
/// # let targets = d.binary_targets(Class::is_attack);
/// let mut members: Vec<Box<dyn Classifier>> =
///     vec![Box::new(LogisticRegression::new()), Box::new(DecisionTree::new())];
/// for m in &mut members { m.fit(&d, &targets)?; }
/// let defense = RandomizedEnsemble::new(members, 0x5EC2E7)?;
/// let verdict = defense.predict_row(&[20.0])?;
/// assert!(verdict);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RandomizedEnsemble {
    members: Vec<Box<dyn Classifier>>,
    secret: u64,
}

impl RandomizedEnsemble {
    /// Wraps fitted members with a secret selection key.
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] for an empty pool.
    pub fn new(members: Vec<Box<dyn Classifier>>, secret: u64) -> Result<Self, AdvError> {
        if members.is_empty() {
            return Err(AdvError::InvalidConfig("ensemble needs at least one member"));
        }
        Ok(Self { members, secret })
    }

    /// Number of pool members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member a given query routes to — keyed hash of the features
    /// with the secret, so the attacker cannot predict it without the
    /// key, yet decisions stay reproducible for the defender.
    #[must_use]
    pub fn member_for(&self, row: &[f64]) -> usize {
        let mut h = self.secret ^ 0x9E37_79B9_7F4A_7C15;
        for &v in row {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100_0000_01B3);
            h ^= h >> 29;
        }
        (h % self.members.len() as u64) as usize
    }

    /// P(attack) through the member selected for this query.
    ///
    /// # Errors
    ///
    /// Propagates member prediction failures.
    pub fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        self.members[self.member_for(row)].predict_proba_row(row)
    }

    /// Hard decision through the selected member.
    ///
    /// # Errors
    ///
    /// Propagates member prediction failures.
    pub fn predict_row(&self, row: &[f64]) -> Result<bool, MlError> {
        Ok(self.predict_proba_row(row)? >= 0.5)
    }

    /// Evaluates the randomized defense on a labeled set.
    ///
    /// # Errors
    ///
    /// Propagates member prediction failures.
    pub fn evaluate(
        &self,
        data: &Dataset,
        targets: &[f64],
    ) -> Result<hmd_ml::BinaryMetrics, MlError> {
        let scores: Result<Vec<f64>, MlError> =
            (0..data.len()).map(|i| self.predict_proba_row(data.row(i)?)).collect();
        let truth: Vec<bool> = targets.iter().map(|&t| t == 1.0).collect();
        Ok(hmd_ml::BinaryMetrics::from_scores(&scores?, &truth))
    }
}

/// Moving-target defense: a rotation of detectors retrained on distinct
/// bootstrap resamples; the active model changes every `period` queries,
/// so a surrogate fitted against yesterday's boundary degrades against
/// today's.
#[derive(Debug)]
pub struct MovingTargetDefense {
    generations: Vec<Box<dyn Classifier>>,
    period: u64,
    queries: std::sync::atomic::AtomicU64,
}

impl MovingTargetDefense {
    /// Trains `n_generations` fresh models (built by `factory`) on
    /// bootstrap resamples of `(data, targets)`, rotating every `period`
    /// queries.
    ///
    /// # Errors
    ///
    /// Returns [`AdvError::InvalidConfig`] for zero generations/period;
    /// propagates training failures.
    pub fn train<F>(
        factory: F,
        n_generations: usize,
        period: u64,
        data: &Dataset,
        targets: &[f64],
        seed: u64,
    ) -> Result<Self, AdvError>
    where
        F: Fn() -> Box<dyn Classifier>,
    {
        if n_generations == 0 || period == 0 {
            return Err(AdvError::InvalidConfig("generations and period must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = data.len();
        let mut generations = Vec::with_capacity(n_generations);
        for _ in 0..n_generations {
            // bootstrap resample, redrawn until both classes are present
            let (subset, sub_targets) = loop {
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let sub_targets: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
                let pos = sub_targets.iter().filter(|&&t| t == 1.0).count();
                if pos > 0 && pos < sub_targets.len() {
                    break (data.subset(&idx)?, sub_targets);
                }
            };
            let mut model = factory();
            model.fit(&subset, &sub_targets)?;
            generations.push(model);
        }
        Ok(Self { generations, period, queries: std::sync::atomic::AtomicU64::new(0) })
    }

    /// Number of model generations in the rotation.
    #[must_use]
    pub fn generation_count(&self) -> usize {
        self.generations.len()
    }

    /// The generation currently active.
    #[must_use]
    pub fn active_generation(&self) -> usize {
        let q = self.queries.load(std::sync::atomic::Ordering::Relaxed);
        ((q / self.period) % self.generations.len() as u64) as usize
    }

    /// Classifies one sample through the active generation, advancing the
    /// rotation clock.
    ///
    /// # Errors
    ///
    /// Propagates member prediction failures.
    pub fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        let active = self.active_generation();
        self.queries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.generations[active].predict_proba_row(row)
    }

    /// Evaluates the rotating defense over a labeled set (the rotation
    /// keeps advancing across rows, as it would in deployment).
    ///
    /// # Errors
    ///
    /// Propagates member prediction failures.
    pub fn evaluate(
        &self,
        data: &Dataset,
        targets: &[f64],
    ) -> Result<hmd_ml::BinaryMetrics, MlError> {
        let scores: Result<Vec<f64>, MlError> =
            (0..data.len()).map(|i| self.predict_proba_row(data.row(i)?)).collect();
        let truth: Vec<bool> = targets.iter().map(|&t| t == 1.0).collect();
        Ok(hmd_ml::BinaryMetrics::from_scores(&scores?, &truth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_ml::{DecisionTree, Gbdt, LogisticRegression, RandomForest};
    use hmd_tabular::Class;

    fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.4), rng.random_range(-1.0..0.4)];
            let attack = [rng.random_range(0.2..1.6), rng.random_range(0.2..1.6)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    fn fitted_pool(data: &Dataset, targets: &[f64]) -> Vec<Box<dyn Classifier>> {
        let mut pool: Vec<Box<dyn Classifier>> = vec![
            Box::new(LogisticRegression::new()),
            Box::new(DecisionTree::new()),
            Box::new(RandomForest::new()),
            Box::new(Gbdt::new()),
        ];
        for m in &mut pool {
            m.fit(data, targets).unwrap();
        }
        pool
    }

    #[test]
    fn randomized_ensemble_detects_and_distributes() {
        let (d, t) = blobs(150, 1);
        let defense = RandomizedEnsemble::new(fitted_pool(&d, &t), 42).unwrap();
        let m = defense.evaluate(&d, &t).unwrap();
        assert!(m.accuracy > 0.9, "accuracy {}", m.accuracy);
        // queries actually spread over members
        let mut used = vec![false; defense.len()];
        for i in 0..d.len() {
            used[defense.member_for(d.row(i).unwrap())] = true;
        }
        assert!(used.iter().all(|&u| u), "members unused: {used:?}");
    }

    #[test]
    fn member_selection_is_keyed() {
        let (d, t) = blobs(40, 2);
        let a = RandomizedEnsemble::new(fitted_pool(&d, &t), 1).unwrap();
        let b = RandomizedEnsemble::new(fitted_pool(&d, &t), 2).unwrap();
        let rows: Vec<Vec<f64>> = (0..d.len()).map(|i| d.row(i).unwrap().to_vec()).collect();
        let same = rows
            .iter()
            .filter(|r| a.member_for(r) == b.member_for(r))
            .count();
        assert!(same < rows.len(), "different keys should route differently");
        // but a fixed key routes deterministically
        for r in &rows {
            assert_eq!(a.member_for(r), a.member_for(r));
        }
    }

    #[test]
    fn ensemble_requires_members() {
        assert!(matches!(
            RandomizedEnsemble::new(Vec::new(), 0),
            Err(AdvError::InvalidConfig(_))
        ));
    }

    #[test]
    fn moving_target_rotates_generations() {
        let (d, t) = blobs(100, 3);
        let mtd = MovingTargetDefense::train(
            || Box::new(DecisionTree::new()),
            3,
            10,
            &d,
            &t,
            7,
        )
        .unwrap();
        assert_eq!(mtd.generation_count(), 3);
        assert_eq!(mtd.active_generation(), 0);
        for i in 0..10 {
            let _ = mtd.predict_proba_row(d.row(i).unwrap()).unwrap();
        }
        assert_eq!(mtd.active_generation(), 1);
        for i in 0..20 {
            let _ = mtd.predict_proba_row(d.row(i).unwrap()).unwrap();
        }
        assert_eq!(mtd.active_generation(), 0); // wrapped around
    }

    #[test]
    fn moving_target_still_detects() {
        let (d, t) = blobs(150, 4);
        let mtd = MovingTargetDefense::train(
            || Box::new(RandomForest::new()),
            4,
            25,
            &d,
            &t,
            9,
        )
        .unwrap();
        let m = mtd.evaluate(&d, &t).unwrap();
        assert!(m.accuracy > 0.85, "accuracy {}", m.accuracy);
    }

    #[test]
    fn moving_target_validates_config() {
        let (d, t) = blobs(30, 5);
        assert!(matches!(
            MovingTargetDefense::train(|| Box::new(DecisionTree::new()), 0, 10, &d, &t, 1),
            Err(AdvError::InvalidConfig(_))
        ));
        assert!(matches!(
            MovingTargetDefense::train(|| Box::new(DecisionTree::new()), 2, 0, &d, &t, 1),
            Err(AdvError::InvalidConfig(_))
        ));
    }
}
