//! Reinforcement-learning substrate: the adversarial predictor and the
//! constraint-aware controller.
//!
//! Two RL techniques power the paper's defense framework:
//!
//! * **A2C adversarial predictor** (§2.5) — an Advantage Actor-Critic
//!   agent ([`A2cAgent`]) trained in a Gym-style environment
//!   ([`env::Environment`], [`PredictorEnv`]) where flagging a labeled
//!   adversarial sample earns reward 100 and everything else earns 0.
//!   At inference the critic's value estimate serves as the *feedback
//!   reward*: ≈100 for adversarial HPC patterns, ≈0 otherwise
//!   ([`AdversarialPredictor`]).
//! * **UCB constraint controller** (§2.6) — lightweight [`Ucb`] bandits
//!   ([`ConstraintController`]) that dynamically pick among the fitted ML
//!   models under one of three constraint specializations
//!   ([`ConstraintKind`]): fast inference, small memory footprint, or
//!   best detection.
//!
//! # Example
//!
//! ```
//! use hmd_rl::Ucb;
//!
//! let mut agent = Ucb::new(5, 1.0);
//! let arm = agent.select();
//! agent.update(arm, 1.0);
//! assert_eq!(agent.total_pulls(), 1);
//! ```

pub mod a2c;
pub mod bandit;
pub mod controller;
pub mod env;
pub mod predictor;
pub mod ucb;

mod error;

pub use a2c::{A2cAgent, A2cConfig};
pub use bandit::{BanditPolicy, EpsilonGreedy, ThompsonSampling};
pub use controller::{ConstraintController, ConstraintKind, ControllerConfig, ModelProfile};
pub use env::{Environment, Step};
pub use error::RlError;
pub use predictor::{
    AdversarialPredictor, PredictorAction, PredictorConfig, PredictorEnv, ADVERSARIAL_REWARD,
};
pub use ucb::Ucb;
