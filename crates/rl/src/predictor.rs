//! The DRL-based adversarial attack predictor (paper §2.5).
//!
//! Training uses *unlabeled* data: the limited adversarial set is labeled
//! (reward 100 when the agent flags it), while legitimate malware and
//! benign samples carry a "None" label (reward 0 regardless of action).
//! Each incoming data point is an independent one-step episode. After
//! training, the *critic's* value estimate plays the role of the
//! "feedback reward": positive expected reward ⇒ adversarial, near zero ⇒
//! non-adversarial — exactly how the paper's predictor decides at
//! inference time (its detection relies "on feedback through the reward
//! value rather than predictions from the DRL agent").

use hmd_tabular::{Class, Dataset};
use hmd_util::rng::prelude::*;

use crate::a2c::{A2cAgent, A2cConfig};
use crate::env::{Environment, Step};
use crate::RlError;

/// Action indices of the predictor's two actions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PredictorAction {
    /// Flag the sample as an adversarial attack.
    Adversarial = 0,
    /// "nan" — the sample is not adversarial (legitimate malware or
    /// benign).
    Nan = 1,
}

/// Reward granted for flagging a labeled adversarial sample.
pub const ADVERSARIAL_REWARD: f64 = 100.0;

/// The training environment: presents one (shuffled) sample per episode;
/// flagging a labeled adversarial sample earns [`ADVERSARIAL_REWARD`],
/// everything else earns zero.
#[derive(Debug)]
pub struct PredictorEnv {
    features: Vec<Vec<f64>>,
    is_adversarial: Vec<bool>,
    order: Vec<usize>,
    cursor: usize,
    rng: StdRng,
}

impl PredictorEnv {
    /// Builds the environment from a merged dataset whose
    /// [`Class::Adversarial`] rows are the labeled set and the rest are
    /// treated as unlabeled.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDataset`] for an empty dataset.
    pub fn new(data: &Dataset, seed: u64) -> Result<Self, RlError> {
        if data.is_empty() {
            return Err(RlError::EmptyDataset);
        }
        let features: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.row(i).expect("in range").to_vec())
            .collect();
        let is_adversarial: Vec<bool> =
            data.labels().iter().map(|&l| l == Class::Adversarial).collect();
        let order: Vec<usize> = (0..data.len()).collect();
        Ok(Self {
            features,
            is_adversarial,
            order,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn current(&self) -> usize {
        self.order[self.cursor % self.order.len()]
    }
}

impl Environment for PredictorEnv {
    fn state_dim(&self) -> usize {
        self.features[0].len()
    }

    fn n_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f64> {
        if self.cursor.is_multiple_of(self.order.len()) {
            self.order.shuffle(&mut self.rng);
        }
        self.features[self.current()].clone()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(action < 2, "predictor has two actions");
        let idx = self.current();
        let reward = if self.is_adversarial[idx]
            && action == PredictorAction::Adversarial as usize
        {
            ADVERSARIAL_REWARD
        } else {
            0.0
        };
        self.cursor += 1;
        Step { state: self.features[idx].clone(), reward, done: true }
    }
}

/// Configuration of [`AdversarialPredictor`] training.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictorConfig {
    /// A2C hyper-parameters.
    pub a2c: A2cConfig,
    /// Training episodes (one sample each).
    pub episodes: usize,
    /// Decision threshold on the feedback reward (V(s)). `None`
    /// auto-calibrates after training: the threshold that best separates
    /// the labeled adversarial rewards from the unlabeled ones on the
    /// training set. The paper flags inputs whose feedback reward is
    /// positive; auto-calibration generalizes that to noisy critics.
    pub reward_threshold: Option<f64>,
    /// Environment shuffling seed.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            a2c: A2cConfig::default(),
            episodes: 30_000,
            reward_threshold: None,
            seed: 2024,
        }
    }
}

/// The trained adversarial predictor: the framework's first line of
/// defense.
///
/// # Example
///
/// ```no_run
/// use hmd_rl::{AdversarialPredictor, PredictorConfig};
/// use hmd_tabular::Dataset;
///
/// # fn main() -> Result<(), hmd_rl::RlError> {
/// # let merged: Dataset = unimplemented!();
/// let predictor = AdversarialPredictor::train(&merged, PredictorConfig::default())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdversarialPredictor {
    agent: A2cAgent,
    threshold: f64,
}

impl AdversarialPredictor {
    /// Trains the predictor on a merged dataset where adversarial rows
    /// carry [`Class::Adversarial`] and all others are unlabeled.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDataset`] / [`RlError::MissingClass`] when
    /// the dataset is empty or holds no adversarial rows.
    pub fn train(data: &Dataset, config: PredictorConfig) -> Result<Self, RlError> {
        if data.is_empty() {
            return Err(RlError::EmptyDataset);
        }
        if !data.labels().contains(&Class::Adversarial) {
            return Err(RlError::MissingClass("no labeled adversarial samples"));
        }
        let _span = hmd_telemetry::span("rl.predictor.train");
        let mut env = PredictorEnv::new(data, config.seed)?;
        let mut agent = A2cAgent::new(env.state_dim(), env.n_actions(), config.a2c);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA2C);
        let traced = hmd_telemetry::enabled();
        let mut reward_ma = 0.0;
        for episode in 0..config.episodes {
            let reward = agent.train_episode(&mut env, &mut rng, 1);
            if traced {
                // exponential moving average of the episode reward — the
                // convergence signal Figure 3(a) plots
                reward_ma = if episode == 0 {
                    reward
                } else {
                    0.99 * reward_ma + 0.01 * reward
                };
            }
        }
        if traced {
            hmd_telemetry::metrics::counter("rl.predictor.episodes")
                .add(config.episodes as u64);
            hmd_telemetry::metrics::gauge("rl.predictor.reward_ma").set(reward_ma);
        }
        let threshold = match config.reward_threshold {
            Some(t) => t,
            None => calibrate_threshold(&agent, data),
        };
        Ok(Self { agent, threshold })
    }

    /// The feedback-reward estimate for one sample (the critic value;
    /// ≈ 100 for adversarial patterns, ≈ 0 otherwise). This is the trace
    /// Figure 3(b) plots over a sample stream.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width.
    #[must_use]
    pub fn feedback_reward(&self, row: &[f64]) -> f64 {
        self.agent.value(row)
    }

    /// Whether the sample is predicted adversarial (feedback reward above
    /// the threshold).
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width.
    #[must_use]
    pub fn is_adversarial(&self, row: &[f64]) -> bool {
        let flagged = self.feedback_reward(row) > self.threshold;
        if hmd_telemetry::enabled() {
            hmd_telemetry::metrics::counter("rl.predictor.decisions").inc();
            if flagged {
                hmd_telemetry::metrics::counter("rl.predictor.flags").inc();
            }
        }
        flagged
    }

    /// Batched [`is_adversarial`](Self::is_adversarial): one critic
    /// forward pass over a flat row-major batch. Decisions (and the
    /// telemetry decision/flag counters) are identical to calling the
    /// scalar path on each row in order.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the training width.
    #[must_use]
    pub fn is_adversarial_batch(&self, rows: &[f64]) -> Vec<bool> {
        let flags: Vec<bool> =
            self.agent.values(rows).into_iter().map(|v| v > self.threshold).collect();
        if hmd_telemetry::enabled() && !flags.is_empty() {
            hmd_telemetry::metrics::counter("rl.predictor.decisions").add(flags.len() as u64);
            let flagged = flags.iter().filter(|&&f| f).count() as u64;
            if flagged > 0 {
                hmd_telemetry::metrics::counter("rl.predictor.flags").add(flagged);
            }
        }
        flags
    }

    /// Activation scratch sized for the critic at batches of up to
    /// `max_rows` rows — warmup-time companion to the `_with`/`_into`
    /// decision paths below.
    #[must_use]
    pub fn infer_scratch(&self, max_rows: usize) -> hmd_nn::InferScratch {
        self.agent.infer_scratch(max_rows)
    }

    /// [`feedback_reward`](Self::feedback_reward) through caller-owned
    /// scratch: bit-identical critic value, zero heap allocations. The
    /// flight recorder reads the raw score per served window, so this
    /// path must stay off the heap like the decision paths.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width or `scratch` is too small.
    #[must_use]
    pub fn feedback_reward_with(&self, row: &[f64], scratch: &mut hmd_nn::InferScratch) -> f64 {
        self.agent.value_with(row, scratch)
    }

    /// [`is_adversarial`](Self::is_adversarial) through caller-owned
    /// scratch: identical decision and telemetry, zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width or `scratch` is too small.
    #[must_use]
    pub fn is_adversarial_with(&self, row: &[f64], scratch: &mut hmd_nn::InferScratch) -> bool {
        let flagged = self.agent.value_with(row, scratch) > self.threshold;
        if hmd_telemetry::enabled() {
            hmd_telemetry::metrics::counter("rl.predictor.decisions").inc();
            if flagged {
                hmd_telemetry::metrics::counter("rl.predictor.flags").inc();
            }
        }
        flagged
    }

    /// [`is_adversarial_batch`](Self::is_adversarial_batch) written into
    /// `flags` (cleared first), with `values` as the critic-value buffer:
    /// identical decisions and telemetry, zero heap allocations when both
    /// buffers have capacity for one entry per row.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the training width or
    /// `scratch` is too small for the batch.
    pub fn is_adversarial_batch_into(
        &self,
        rows: &[f64],
        scratch: &mut hmd_nn::InferScratch,
        values: &mut Vec<f64>,
        flags: &mut Vec<bool>,
    ) {
        self.agent.values_into(rows, scratch, values);
        flags.clear();
        flags.extend(values.iter().map(|&v| v > self.threshold));
        if hmd_telemetry::enabled() && !flags.is_empty() {
            hmd_telemetry::metrics::counter("rl.predictor.decisions").add(flags.len() as u64);
            let flagged = flags.iter().filter(|&&f| f).count() as u64;
            if flagged > 0 {
                hmd_telemetry::metrics::counter("rl.predictor.flags").add(flagged);
            }
        }
    }

    /// The decision threshold in use.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying A2C agent.
    #[must_use]
    pub fn agent(&self) -> &A2cAgent {
        &self.agent
    }

    /// Splits an uncertain stream into predicted-adversarial and
    /// predicted-clean row indices.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s width differs from the training width.
    #[must_use]
    pub fn partition(&self, data: &Dataset) -> (Vec<usize>, Vec<usize>) {
        let mut adversarial = Vec::new();
        let mut clean = Vec::new();
        for i in 0..data.len() {
            let row = data.row(i).expect("in range");
            if self.is_adversarial(row) {
                adversarial.push(i);
            } else {
                clean.push(i);
            }
        }
        (adversarial, clean)
    }
}

/// Sweeps candidate thresholds over the training-set feedback rewards and
/// returns the one maximizing adversarial/non-adversarial accuracy.
fn calibrate_threshold(agent: &A2cAgent, data: &Dataset) -> f64 {
    let mut scored: Vec<(f64, bool)> = (0..data.len())
        .map(|i| {
            let row = data.row(i).expect("in range");
            (agent.value(row), data.labels()[i] == Class::Adversarial)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_adv = scored.iter().filter(|(_, a)| *a).count();
    let total_clean = scored.len() - total_adv;
    // Scanning left to right: threshold after index i classifies
    // everything above as adversarial.
    let mut clean_below = 0usize;
    let mut adv_below = 0usize;
    let mut best = (f64::MIN, ADVERSARIAL_REWARD / 2.0);
    for i in 0..scored.len().saturating_sub(1) {
        if scored[i].1 {
            adv_below += 1;
        } else {
            clean_below += 1;
        }
        let correct = clean_below + (total_adv - adv_below);
        let acc = correct as f64 / scored.len() as f64;
        if acc > best.0 {
            best = (acc, (scored[i].0 + scored[i + 1].0) / 2.0);
        }
    }
    let _ = total_clean;
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial samples concentrate in a thin shell near the decision
    /// boundary (how LowProFool outputs look); benign spreads low,
    /// malware spreads high.
    fn merged(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-2.0..-0.5), rng.random_range(-2.0..-0.5)];
            let malware = [rng.random_range(0.5..2.0), rng.random_range(0.5..2.0)];
            let adv = [rng.random_range(-0.4..0.1), rng.random_range(-0.4..0.1)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&malware, Class::Malware).unwrap();
            d.push(&adv, Class::Adversarial).unwrap();
        }
        d
    }

    fn quick_config(seed: u64) -> PredictorConfig {
        PredictorConfig {
            a2c: A2cConfig {
                hidden: vec![16, 16],
                actor_lr: 2e-3,
                critic_lr: 5e-3,
                seed,
                ..A2cConfig::default()
            },
            episodes: 4000,
            seed,
            ..PredictorConfig::default()
        }
    }

    #[test]
    fn threshold_is_auto_calibrated() {
        let d = merged(120, 11);
        let predictor = AdversarialPredictor::train(&d, quick_config(12)).unwrap();
        // calibrated threshold sits between the two reward clusters
        assert!(predictor.threshold() > 5.0 && predictor.threshold() < 95.0,
            "threshold {}", predictor.threshold());
    }

    #[test]
    fn explicit_threshold_is_respected() {
        let d = merged(60, 13);
        let cfg = PredictorConfig { reward_threshold: Some(42.0), ..quick_config(14) };
        let predictor = AdversarialPredictor::train(&d, cfg).unwrap();
        assert_eq!(predictor.threshold(), 42.0);
    }

    #[test]
    fn env_rewards_only_flagged_adversarial() {
        let d = merged(10, 1);
        let mut env = PredictorEnv::new(&d, 2).unwrap();
        let mut saw_reward = false;
        for _ in 0..30 {
            let _s = env.reset();
            let idx = env.current();
            let truth = env.is_adversarial[idx];
            let step = env.step(PredictorAction::Adversarial as usize);
            assert!(step.done);
            if truth {
                assert_eq!(step.reward, ADVERSARIAL_REWARD);
                saw_reward = true;
            } else {
                assert_eq!(step.reward, 0.0);
            }
        }
        assert!(saw_reward);
    }

    #[test]
    fn env_nan_action_never_rewards() {
        let d = merged(10, 3);
        let mut env = PredictorEnv::new(&d, 4).unwrap();
        for _ in 0..30 {
            let _ = env.reset();
            let step = env.step(PredictorAction::Nan as usize);
            assert_eq!(step.reward, 0.0);
        }
    }

    #[test]
    fn predictor_separates_adversarial_rewards() {
        let d = merged(120, 5);
        let predictor = AdversarialPredictor::train(&d, quick_config(6)).unwrap();
        let mut adv_rewards = Vec::new();
        let mut clean_rewards = Vec::new();
        for (row, label) in &d {
            let r = predictor.feedback_reward(row);
            if label == Class::Adversarial {
                adv_rewards.push(r);
            } else {
                clean_rewards.push(r);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&adv_rewards) > 60.0,
            "adversarial mean reward {}",
            mean(&adv_rewards)
        );
        assert!(
            mean(&clean_rewards) < 30.0,
            "clean mean reward {}",
            mean(&clean_rewards)
        );
    }

    #[test]
    fn predictor_partitions_stream_accurately() {
        let d = merged(120, 7);
        let predictor = AdversarialPredictor::train(&d, quick_config(8)).unwrap();
        let (flagged, clean) = predictor.partition(&d);
        let mut correct = 0usize;
        for &i in &flagged {
            if d.labels()[i] == Class::Adversarial {
                correct += 1;
            }
        }
        for &i in &clean {
            if d.labels()[i] != Class::Adversarial {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.95, "predictor accuracy {acc}");
    }

    #[test]
    fn training_requires_adversarial_rows() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(&[0.0], Class::Benign).unwrap();
        d.push(&[1.0], Class::Malware).unwrap();
        assert!(matches!(
            AdversarialPredictor::train(&d, quick_config(9)),
            Err(RlError::MissingClass(_))
        ));
    }

    #[test]
    fn training_requires_rows() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(matches!(
            AdversarialPredictor::train(&d, quick_config(10)),
            Err(RlError::EmptyDataset)
        ));
    }
}
