//! Alternative bandit algorithms to UCB1 — ε-greedy and Thompson
//! sampling — behind one [`BanditPolicy`] trait, so the constraint
//! controller's algorithm choice (the paper picks UCB for its
//! lightweight footprint) can be ablated.

use hmd_util::rng::prelude::*;

use crate::ucb::Ucb;

/// A multi-armed bandit policy over a fixed arm set.
pub trait BanditPolicy: Send + std::fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Number of arms.
    fn n_arms(&self) -> usize;

    /// Selects the next arm to pull.
    fn select(&mut self, rng: &mut StdRng) -> usize;

    /// Records the observed reward for a pulled arm.
    ///
    /// # Panics
    ///
    /// Implementations panic for an out-of-range arm.
    fn update(&mut self, arm: usize, reward: f64);

    /// The arm with the best posterior/empirical mean.
    fn best_arm(&self) -> usize;
}

impl BanditPolicy for Ucb {
    fn name(&self) -> &'static str {
        "UCB1"
    }

    fn n_arms(&self) -> usize {
        self.n_arms()
    }

    fn select(&mut self, _rng: &mut StdRng) -> usize {
        Ucb::select(self)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        Ucb::update(self, arm, reward);
    }

    fn best_arm(&self) -> usize {
        Ucb::best_arm(self)
    }
}

/// ε-greedy: explore a uniform arm with probability ε, otherwise exploit
/// the best empirical mean.
#[derive(Clone, Debug, PartialEq)]
pub struct EpsilonGreedy {
    counts: Vec<u64>,
    means: Vec<f64>,
    epsilon: f64,
}

impl EpsilonGreedy {
    /// A policy with exploration rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics for zero arms or ε outside [0, 1].
    #[must_use]
    pub fn new(n_arms: usize, epsilon: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self { counts: vec![0; n_arms], means: vec![0.0; n_arms], epsilon }
    }

    /// Empirical mean per arm.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }

    fn n_arms(&self) -> usize {
        self.counts.len()
    }

    fn select(&mut self, rng: &mut StdRng) -> usize {
        if let Some(untried) = self.counts.iter().position(|&c| c == 0) {
            return untried;
        }
        if rng.random_bool(self.epsilon) {
            rng.random_range(0..self.counts.len())
        } else {
            self.best_arm()
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.counts.len(), "arm out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    fn best_arm(&self) -> usize {
        (0..self.means.len())
            .max_by(|&a, &b| self.means[a].total_cmp(&self.means[b]))
            .expect("non-empty arms")
    }
}

/// Thompson sampling with Beta posteriors over Bernoulli-like rewards
/// (rewards are clamped to [0, 1] and treated as success probabilities).
#[derive(Clone, Debug, PartialEq)]
pub struct ThompsonSampling {
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl ThompsonSampling {
    /// A policy with uniform Beta(1, 1) priors.
    ///
    /// # Panics
    ///
    /// Panics for zero arms.
    #[must_use]
    pub fn new(n_arms: usize) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        Self { alpha: vec![1.0; n_arms], beta: vec![1.0; n_arms] }
    }

    /// Posterior mean per arm.
    #[must_use]
    pub fn posterior_means(&self) -> Vec<f64> {
        self.alpha
            .iter()
            .zip(&self.beta)
            .map(|(a, b)| a / (a + b))
            .collect()
    }

    /// Draws one Beta(α, β) sample via the ratio-of-gammas method
    /// (gamma via Marsaglia–Tsang for shape ≥ 1, boosted below 1).
    fn sample_beta(alpha: f64, beta: f64, rng: &mut StdRng) -> f64 {
        let x = Self::sample_gamma(alpha, rng);
        let y = Self::sample_gamma(beta, rng);
        x / (x + y)
    }

    fn sample_gamma(shape: f64, rng: &mut StdRng) -> f64 {
        if shape < 1.0 {
            // boost: Gamma(a) = Gamma(a+1) · U^(1/a)
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            return Self::sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // standard normal via Box–Muller
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl BanditPolicy for ThompsonSampling {
    fn name(&self) -> &'static str {
        "thompson"
    }

    fn n_arms(&self) -> usize {
        self.alpha.len()
    }

    fn select(&mut self, rng: &mut StdRng) -> usize {
        (0..self.alpha.len())
            .map(|a| (a, Self::sample_beta(self.alpha[a], self.beta[a], rng)))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(a, _)| a)
            .expect("non-empty arms")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.alpha.len(), "arm out of range");
        let r = reward.clamp(0.0, 1.0);
        self.alpha[arm] += r;
        self.beta[arm] += 1.0 - r;
    }

    fn best_arm(&self) -> usize {
        let means = self.posterior_means();
        (0..means.len())
            .max_by(|&a, &b| means[a].total_cmp(&means[b]))
            .expect("non-empty arms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_bandit(policy: &mut dyn BanditPolicy, true_means: &[f64], pulls: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..pulls {
            let arm = policy.select(&mut rng);
            let reward = f64::from(rng.random_bool(true_means[arm]));
            policy.update(arm, reward);
        }
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut eg = EpsilonGreedy::new(3, 0.1);
        run_bandit(&mut eg, &[0.2, 0.8, 0.5], 3000, 1);
        assert_eq!(eg.best_arm(), 1);
        assert!((eg.means()[1] - 0.8).abs() < 0.05);
    }

    #[test]
    fn thompson_finds_best_arm() {
        let mut ts = ThompsonSampling::new(3);
        run_bandit(&mut ts, &[0.2, 0.8, 0.5], 3000, 2);
        assert_eq!(ts.best_arm(), 1);
        let m = ts.posterior_means();
        assert!((m[1] - 0.8).abs() < 0.05, "posterior {m:?}");
    }

    #[test]
    fn ucb_via_trait_finds_best_arm() {
        let mut ucb = Ucb::new(3, 1.0);
        run_bandit(&mut ucb, &[0.2, 0.8, 0.5], 3000, 3);
        assert_eq!(BanditPolicy::best_arm(&ucb), 1);
    }

    #[test]
    fn thompson_explores_before_committing() {
        let mut ts = ThompsonSampling::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let arm = ts.select(&mut rng);
            seen[arm] = true;
            ts.update(arm, 0.5);
        }
        assert!(seen.iter().all(|&s| s), "arms unexplored: {seen:?}");
    }

    #[test]
    fn beta_samples_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for (a, b) in [(0.5, 0.5), (1.0, 3.0), (10.0, 2.0)] {
            for _ in 0..200 {
                let x = ThompsonSampling::sample_beta(a, b, &mut rng);
                assert!((0.0..=1.0).contains(&x), "beta({a},{b}) sample {x}");
            }
        }
    }

    #[test]
    fn beta_mean_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> =
            (0..20_000).map(|_| ThompsonSampling::sample_beta(2.0, 6.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.25).abs() < 0.01, "beta(2,6) mean {mean}");
    }

    #[test]
    fn policies_validate_arms() {
        let mut eg = EpsilonGreedy::new(2, 0.1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eg.update(5, 1.0);
        }));
        assert!(result.is_err());
    }
}
