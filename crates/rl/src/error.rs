use std::error::Error;
use std::fmt;

/// Errors produced by the RL substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RlError {
    /// An environment or trainer received an empty dataset.
    EmptyDataset,
    /// A required class was absent from the training data.
    MissingClass(&'static str),
    /// Aligned inputs (models/profiles/targets) disagreed in shape.
    Mismatch(&'static str),
    /// An underlying ML model failed during controller training.
    Model(String),
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "training requires a non-empty dataset"),
            Self::MissingClass(what) => write!(f, "missing class: {what}"),
            Self::Mismatch(what) => write!(f, "shape mismatch: {what}"),
            Self::Model(what) => write!(f, "model failure: {what}"),
        }
    }
}

impl Error for RlError {}
