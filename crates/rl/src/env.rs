//! A Gym-style environment abstraction (paper §2.5.2 customizes OpenAI
//! Gym's baseline class; this trait is its Rust equivalent).

/// The result of one environment step.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// Observation after the action.
    pub state: Vec<f64>,
    /// Reward for the action just taken.
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// A discrete-action reinforcement-learning environment.
///
/// States are dense `f64` vectors of fixed width; actions are indices in
/// `0..n_actions()`.
pub trait Environment: Send {
    /// Width of the observation vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn n_actions(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f64>;

    /// Applies `action`, returning the next observation, reward and
    /// termination flag.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= n_actions()` or if called
    /// after `done` without an intervening [`Environment::reset`].
    fn step(&mut self, action: usize) -> Step;
}

#[cfg(test)]
pub(crate) mod test_envs {
    use super::*;

    /// A two-state corridor: action 1 moves right (+1 reward at the end),
    /// action 0 ends the episode with no reward. Optimal return = 1.
    #[derive(Debug, Default)]
    pub struct Corridor {
        pos: usize,
    }

    impl Environment for Corridor {
        fn state_dim(&self) -> usize {
            1
        }

        fn n_actions(&self) -> usize {
            2
        }

        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }

        fn step(&mut self, action: usize) -> Step {
            assert!(action < 2, "bad action");
            if action == 0 {
                return Step { state: vec![self.pos as f64], reward: 0.0, done: true };
            }
            self.pos += 1;
            if self.pos >= 3 {
                Step { state: vec![self.pos as f64], reward: 1.0, done: true }
            } else {
                Step { state: vec![self.pos as f64], reward: 0.0, done: false }
            }
        }
    }

    #[test]
    fn corridor_rewards_persistence() {
        let mut env = Corridor::default();
        let s0 = env.reset();
        assert_eq!(s0, vec![0.0]);
        assert!(!env.step(1).done);
        assert!(!env.step(1).done);
        let last = env.step(1);
        assert!(last.done);
        assert_eq!(last.reward, 1.0);
    }

    #[test]
    fn corridor_quit_ends_without_reward() {
        let mut env = Corridor::default();
        let _ = env.reset();
        let s = env.step(0);
        assert!(s.done);
        assert_eq!(s.reward, 0.0);
    }
}
