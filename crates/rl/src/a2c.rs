//! Advantage Actor-Critic (A2C) with MLP actor and critic networks
//! (paper §2.5.2: both 4-hidden-layer MLPs, actor lr 5e-4, critic lr
//! 1e-3, γ = 0.99, softmax policy, MSE critic loss).

use hmd_nn::{softmax_rows, Dense, InferScratch, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_util::rng::prelude::*;

use crate::env::Environment;

/// Hyper-parameters for [`A2cAgent`].
#[derive(Clone, Debug, PartialEq)]
pub struct A2cConfig {
    /// Hidden widths of both networks (paper: four hidden layers).
    pub hidden: Vec<usize>,
    /// Actor (policy) learning rate.
    pub actor_lr: f64,
    /// Critic (value) learning rate.
    pub critic_lr: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Entropy bonus coefficient (exploration regularizer).
    pub entropy_coef: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for A2cConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64, 64, 64],
            actor_lr: 5e-4,
            critic_lr: 3e-3,
            gamma: 0.99,
            entropy_coef: 0.002,
            seed: 97,
        }
    }
}

/// An A2C agent: a softmax policy network and a state-value network.
///
/// # Example
///
/// ```no_run
/// use hmd_rl::{A2cAgent, A2cConfig};
///
/// let agent = A2cAgent::new(4, 2, A2cConfig::default());
/// assert_eq!(agent.n_actions(), 2);
/// ```
#[derive(Debug)]
pub struct A2cAgent {
    actor: Sequential,
    critic: Sequential,
    actor_opt: Optimizer,
    critic_opt: Optimizer,
    config: A2cConfig,
    state_dim: usize,
    n_actions: usize,
}

impl A2cAgent {
    /// Builds an agent for the given observation width and action count.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim`, `n_actions` or any hidden width is zero.
    #[must_use]
    pub fn new(state_dim: usize, n_actions: usize, config: A2cConfig) -> Self {
        assert!(state_dim > 0 && n_actions > 0, "dimensions must be positive");
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let build = |out_dim: usize, rng: &mut StdRng| {
            let mut net = Sequential::new();
            let mut width = state_dim;
            for &h in &config.hidden {
                net.push(Box::new(Dense::he(width, h, rng)));
                net.push(Box::new(Relu::new()));
                width = h;
            }
            net.push(Box::new(Dense::xavier(width, out_dim, rng)));
            net
        };
        let actor = build(n_actions, &mut rng);
        let critic = build(1, &mut rng);
        Self {
            actor_opt: Optimizer::adam(config.actor_lr),
            critic_opt: Optimizer::adam(config.critic_lr),
            actor,
            critic,
            config,
            state_dim,
            n_actions,
        }
    }

    /// Number of actions.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Observation width.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Action probabilities for one state (softmax over actor logits).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width.
    #[must_use]
    pub fn policy(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim, "state width mismatch");
        let logits = self.actor.infer(&Tensor::row_vector(state));
        softmax_rows(&logits).row(0).to_vec()
    }

    /// Samples an action from the current policy.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width.
    pub fn act<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> usize {
        let probs = self.policy(state);
        let mut draw: f64 = rng.random();
        for (a, p) in probs.iter().enumerate() {
            draw -= p;
            if draw <= 0.0 {
                return a;
            }
        }
        probs.len() - 1
    }

    /// Greedy action (argmax of the policy).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width.
    #[must_use]
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        let probs = self.policy(state);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty policy")
    }

    /// The critic's state-value estimate `V(s)` — the "feedback reward"
    /// the adversarial predictor thresholds at inference time.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width.
    #[must_use]
    pub fn value(&self, state: &[f64]) -> f64 {
        assert_eq!(state.len(), self.state_dim, "state width mismatch");
        self.critic.infer(&Tensor::row_vector(state)).get(0, 0)
    }

    /// Critic values for a flat row-major batch of states, in one
    /// forward pass: every Dense layer becomes a single blocked matmul
    /// over the whole batch. The blocked kernel's per-element
    /// accumulation order is row-count-invariant, so each returned value
    /// is bit-identical to [`value`](Self::value) on that row — the
    /// batched serving path relies on this equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` is not a multiple of the state width.
    #[must_use]
    pub fn values(&self, states: &[f64]) -> Vec<f64> {
        assert!(
            states.len().is_multiple_of(self.state_dim),
            "state batch width mismatch: {} not a multiple of {}",
            states.len(),
            self.state_dim
        );
        if states.is_empty() {
            return Vec::new();
        }
        let n = states.len() / self.state_dim;
        let out = self.critic.infer(&Tensor::from_vec(n, self.state_dim, states.to_vec()));
        (0..n).map(|r| out.get(r, 0)).collect()
    }

    /// Activation scratch sized for the critic at batches of up to
    /// `max_rows` rows — warmup-time companion to
    /// [`value_with`](Self::value_with) and
    /// [`values_into`](Self::values_into).
    #[must_use]
    pub fn infer_scratch(&self, max_rows: usize) -> InferScratch {
        InferScratch::for_net(&self.critic, self.state_dim, max_rows.max(1))
    }

    /// [`value`](Self::value) through caller-owned scratch: bit-identical
    /// result, zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong width or `scratch` is too small.
    #[must_use]
    pub fn value_with(&self, state: &[f64], scratch: &mut InferScratch) -> f64 {
        assert_eq!(state.len(), self.state_dim, "state width mismatch");
        self.critic.infer_into(state, 1, self.state_dim, scratch)[0]
    }

    /// [`values`](Self::values) written into `out` (cleared first)
    /// through caller-owned scratch: bit-identical results, zero heap
    /// allocations when `out` has capacity for one value per state.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` is not a multiple of the state width or
    /// `scratch` is too small for the batch.
    pub fn values_into(&self, states: &[f64], scratch: &mut InferScratch, out: &mut Vec<f64>) {
        assert!(
            states.len().is_multiple_of(self.state_dim),
            "state batch width mismatch: {} not a multiple of {}",
            states.len(),
            self.state_dim
        );
        out.clear();
        if states.is_empty() {
            return;
        }
        let n = states.len() / self.state_dim;
        let vals = self.critic.infer_into(states, n, self.state_dim, scratch);
        out.extend_from_slice(vals);
    }

    /// One actor-critic update from a single transition.
    ///
    /// Advantage `A = r + γ(1−done)V(s′) − V(s)`; the critic regresses
    /// toward the TD target, the actor ascends `A·log π(a|s)` plus an
    /// entropy bonus.
    pub fn update(
        &mut self,
        state: &[f64],
        action: usize,
        reward: f64,
        next_state: &[f64],
        done: bool,
    ) {
        let v_s = self.value(state);
        let v_next = if done { 0.0 } else { self.value(next_state) };
        let target = reward + self.config.gamma * v_next;
        let advantage = target - v_s;

        if hmd_telemetry::enabled() {
            // the critic's squared TD error — its per-update MSE loss
            hmd_telemetry::metrics::gauge("rl.a2c.critic_loss").set(advantage * advantage);
            hmd_telemetry::metrics::counter("rl.a2c.updates").inc();
        }

        // critic: MSE toward the TD target
        let x = Tensor::row_vector(state);
        let y = Tensor::from_rows(&[&[target]]);
        self.critic.train_batch(&x, &y, Loss::Mse, &mut self.critic_opt);

        // actor: policy gradient through the softmax logits.
        // dL/dz = (π − onehot(a))·A  − entropy-bonus gradient
        let logits = self.actor.forward(&x);
        let probs = softmax_rows(&logits);
        let mut grad = Tensor::zeros(1, self.n_actions);
        for j in 0..self.n_actions {
            let p = probs.get(0, j);
            let indicator = f64::from(j == action);
            let pg = (p - indicator) * advantage;
            // entropy H = −Σ p ln p; dH/dz_j = −p_j (ln p_j + 1 − Σ p ln p ... )
            // use the simple form: d(−H)/dz_j = p_j (ln p_j − Σ_k p_k ln p_k)
            let ln_p = p.max(1e-12).ln();
            let mean_ln: f64 = (0..self.n_actions)
                .map(|k| {
                    let pk = probs.get(0, k);
                    pk * pk.max(1e-12).ln()
                })
                .sum();
            let ent_grad = p * (ln_p - mean_ln);
            grad.set(0, j, pg + self.config.entropy_coef * ent_grad);
        }
        self.actor.backward(&grad);
        let mut blocks = self.actor.param_blocks_mut();
        self.actor_opt.step(&mut blocks);
    }

    /// Runs one episode in `env` with sampled actions and per-step
    /// updates, returning the episode's total reward.
    pub fn train_episode<E: Environment, R: Rng + ?Sized>(
        &mut self,
        env: &mut E,
        rng: &mut R,
        max_steps: usize,
    ) -> f64 {
        let mut state = env.reset();
        let mut total = 0.0;
        for _ in 0..max_steps {
            let action = self.act(&state, rng);
            let step = env.step(action);
            total += step.reward;
            self.update(&state, action, step.reward, &step.state, step.done);
            state = step.state;
            if step.done {
                break;
            }
        }
        total
    }

    /// Total parameter count over both networks.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.actor.param_count() + self.critic.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::Corridor;

    fn small_config(seed: u64) -> A2cConfig {
        A2cConfig {
            hidden: vec![16, 16],
            actor_lr: 5e-3,
            critic_lr: 1e-2,
            entropy_coef: 0.01,
            seed,
            ..A2cConfig::default()
        }
    }

    #[test]
    fn policy_is_a_distribution() {
        let agent = A2cAgent::new(3, 4, A2cConfig::default());
        let p = agent.policy(&[0.1, -0.2, 0.3]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn learns_corridor_policy() {
        let mut env = Corridor::default();
        let mut agent = A2cAgent::new(1, 2, small_config(1));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..400 {
            agent.train_episode(&mut env, &mut rng, 10);
        }
        // greedy policy should walk right from the start state
        assert_eq!(agent.act_greedy(&[0.0]), 1);
        // and the critic should value the start state near the return 1·γ³
        let v = agent.value(&[0.0]);
        assert!(v > 0.5, "V(start) = {v}");
    }

    #[test]
    fn critic_tracks_reward_magnitude() {
        // single-state env with constant reward 100 for action 0
        struct Bandit;
        impl Environment for Bandit {
            fn state_dim(&self) -> usize {
                1
            }
            fn n_actions(&self) -> usize {
                2
            }
            fn reset(&mut self) -> Vec<f64> {
                vec![1.0]
            }
            fn step(&mut self, action: usize) -> crate::env::Step {
                crate::env::Step {
                    state: vec![1.0],
                    reward: if action == 0 { 100.0 } else { 0.0 },
                    done: true,
                }
            }
        }
        let mut agent = A2cAgent::new(1, 2, small_config(3));
        let mut rng = StdRng::seed_from_u64(4);
        let mut env = Bandit;
        for _ in 0..600 {
            agent.train_episode(&mut env, &mut rng, 1);
        }
        assert!(agent.value(&[1.0]) > 50.0, "V = {}", agent.value(&[1.0]));
        assert_eq!(agent.act_greedy(&[1.0]), 0);
    }

    #[test]
    fn act_is_seed_deterministic() {
        let agent = A2cAgent::new(2, 3, A2cConfig::default());
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| agent.act(&[0.5, -0.5], &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| agent.act(&[0.5, -0.5], &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn rejects_wrong_state_width() {
        let agent = A2cAgent::new(3, 2, A2cConfig::default());
        let _ = agent.policy(&[1.0]);
    }
}
