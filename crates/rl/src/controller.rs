//! The constraint-aware controller (paper §2.6): UCB agents that pick the
//! best ML model at run time under latency / memory / detection-rate
//! constraints.

use hmd_ml::Classifier;
use hmd_tabular::Dataset;
use hmd_util::rng::prelude::*;

use crate::ucb::Ucb;
use crate::RlError;

/// The specialization of a controller agent (paper §2.6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Agent 1: fastest inference while keeping accuracy high.
    FastInference,
    /// Agent 2: smallest memory footprint while keeping accuracy high.
    SmallFootprint,
    /// Agent 3: best detection of adversarial and malware attacks.
    BestDetection,
}

impl ConstraintKind {
    /// All three specializations in paper order.
    pub const ALL: [ConstraintKind; 3] = [
        ConstraintKind::FastInference,
        ConstraintKind::SmallFootprint,
        ConstraintKind::BestDetection,
    ];

    /// The agent label used in Figure 4(a).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConstraintKind::FastInference => "Agent 1 (fast inference)",
            ConstraintKind::SmallFootprint => "Agent 2 (small footprint)",
            ConstraintKind::BestDetection => "Agent 3 (best detection)",
        }
    }

    /// A machine-friendly identifier (telemetry metric names, file
    /// stems): no spaces, lowercase.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            ConstraintKind::FastInference => "fast_inference",
            ConstraintKind::SmallFootprint => "small_footprint",
            ConstraintKind::BestDetection => "best_detection",
        }
    }

    /// Shapes the reward for one decision (the "Metric Monitor" values
    /// feed this, paper §2.6.1): a correct prediction earns a base
    /// reward, discounted by the constrained resource.
    #[must_use]
    pub fn reward(self, correct: bool, norm_latency: f64, norm_size: f64) -> f64 {
        if !correct {
            return 0.0;
        }
        match self {
            ConstraintKind::FastInference => 0.2 + 0.8 * (1.0 - norm_latency),
            ConstraintKind::SmallFootprint => 0.2 + 0.8 * (1.0 - norm_size),
            ConstraintKind::BestDetection => 1.0,
        }
    }
}

/// Per-model measurements recorded by the Metric Monitor.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Mean single-sample inference latency in milliseconds.
    pub latency_ms: f64,
    /// Model size in bytes.
    pub size_bytes: usize,
}

/// Controller training configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// UCB exploration constant.
    pub exploration: f64,
    /// Passes over the training stream.
    pub epochs: usize,
    /// Stream shuffling seed.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self { exploration: 0.8, epochs: 3, seed: 31 }
    }
}

/// A trained constraint-aware controller: one UCB agent whose arms are
/// the available ML models.
#[derive(Clone, Debug)]
pub struct ConstraintController {
    kind: ConstraintKind,
    ucb: Ucb,
    profiles: Vec<ModelProfile>,
    norm_latency: Vec<f64>,
    norm_size: Vec<f64>,
}

fn normalize(values: &[f64]) -> Vec<f64> {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < f64::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

impl ConstraintController {
    /// Trains a controller of the given kind over fitted `models`.
    ///
    /// For every training sample the UCB agent picks a model, observes
    /// whether that model classifies the sample correctly, and receives
    /// the constraint-shaped reward.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDataset`] / [`RlError::Mismatch`] for bad
    /// inputs and propagates model prediction failures.
    pub fn train(
        kind: ConstraintKind,
        models: &[Box<dyn Classifier>],
        profiles: Vec<ModelProfile>,
        data: &Dataset,
        targets: &[f64],
        config: ControllerConfig,
    ) -> Result<Self, RlError> {
        if data.is_empty() {
            return Err(RlError::EmptyDataset);
        }
        if models.is_empty() || models.len() != profiles.len() {
            return Err(RlError::Mismatch("models and profiles must align, non-empty"));
        }
        if targets.len() != data.len() {
            return Err(RlError::Mismatch("targets must align with data rows"));
        }
        let norm_latency = normalize(
            &profiles.iter().map(|p| p.latency_ms).collect::<Vec<_>>(),
        );
        let norm_size = normalize(
            &profiles.iter().map(|p| p.size_bytes as f64).collect::<Vec<_>>(),
        );
        let _span = hmd_telemetry::span(&format!("rl.controller.train.{}", kind.key()));
        // Arm-selection counters and the constraint-violation counter,
        // hoisted out of the decision loop (registry lookups are
        // name-hashed; one lookup per metric, not per decision).
        let trace = hmd_telemetry::enabled().then(|| {
            let pulls: Vec<&'static hmd_telemetry::metrics::Counter> = (0..models.len())
                .map(|arm| {
                    hmd_telemetry::metrics::counter(&format!(
                        "rl.ucb.{}.arm{arm}.pulls",
                        kind.key()
                    ))
                })
                .collect();
            let violations = hmd_telemetry::metrics::counter(&format!(
                "rl.ucb.{}.violations",
                kind.key()
            ));
            (pulls, violations)
        });
        let mut ucb = Ucb::new(models.len(), config.exploration);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..config.epochs.max(1) {
            order.shuffle(&mut rng);
            for &i in &order {
                let arm = ucb.select();
                let row = data.row(i).expect("in range");
                let predicted = models[arm]
                    .predict_row(row)
                    .map_err(|e| RlError::Model(e.to_string()))?;
                let correct = predicted == (targets[i] == 1.0);
                if let Some((pulls, violations)) = &trace {
                    pulls[arm].inc();
                    if !correct {
                        violations.inc();
                    }
                }
                ucb.update(arm, kind.reward(correct, norm_latency[arm], norm_size[arm]));
            }
        }
        Ok(Self { kind, ucb, profiles, norm_latency, norm_size })
    }

    /// The specialization of this controller.
    #[must_use]
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Index of the model the controller has converged on.
    #[must_use]
    pub fn selected_model(&self) -> usize {
        self.ucb.best_arm()
    }

    /// The profile of the selected model.
    #[must_use]
    pub fn selected_profile(&self) -> &ModelProfile {
        &self.profiles[self.selected_model()]
    }

    /// The underlying bandit (for inspection / ablation).
    #[must_use]
    pub fn ucb(&self) -> &Ucb {
        &self.ucb
    }

    /// Classifies one sample through the selected model.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors from the selected model.
    pub fn predict_row(
        &self,
        models: &[Box<dyn Classifier>],
        row: &[f64],
    ) -> Result<bool, RlError> {
        models[self.selected_model()]
            .predict_row(row)
            .map_err(|e| RlError::Model(e.to_string()))
    }

    /// Classifies a flat row-major batch of `width`-wide samples through
    /// the selected model in one call — the batched serving path's entry
    /// into the model tier. Verdicts are identical to
    /// [`predict_row`](Self::predict_row) on each row in order.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors from the selected model.
    pub fn predict_batch(
        &self,
        models: &[Box<dyn Classifier>],
        rows: &[f64],
        width: usize,
    ) -> Result<Vec<bool>, RlError> {
        let probas = models[self.selected_model()]
            .predict_proba_batch(rows, width)
            .map_err(|e| RlError::Model(e.to_string()))?;
        Ok(probas.into_iter().map(|p| p >= 0.5).collect())
    }

    /// [`predict_row`](Self::predict_row) through caller-owned scratch
    /// for the selected model — identical verdict, zero heap allocations
    /// once `scratch` came from that model's
    /// [`make_scratch`](Classifier::make_scratch).
    ///
    /// # Errors
    ///
    /// Propagates prediction errors from the selected model.
    pub fn predict_row_with(
        &self,
        models: &[Box<dyn Classifier>],
        row: &[f64],
        scratch: &mut hmd_ml::PredictScratch,
    ) -> Result<bool, RlError> {
        let p = models[self.selected_model()]
            .predict_proba_row_with(row, scratch)
            .map_err(|e| RlError::Model(e.to_string()))?;
        Ok(p >= 0.5)
    }

    /// [`predict_batch`](Self::predict_batch) written into `out`
    /// (cleared first), with `probs` as the probability buffer —
    /// identical verdicts, zero heap allocations when both buffers have
    /// capacity for one entry per row.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors from the selected model.
    pub fn predict_batch_into(
        &self,
        models: &[Box<dyn Classifier>],
        rows: &[f64],
        width: usize,
        scratch: &mut hmd_ml::PredictScratch,
        probs: &mut Vec<f64>,
        out: &mut Vec<bool>,
    ) -> Result<(), RlError> {
        models[self.selected_model()]
            .predict_proba_into(rows, width, scratch, probs)
            .map_err(|e| RlError::Model(e.to_string()))?;
        out.clear();
        out.extend(probs.iter().map(|&p| p >= 0.5));
        Ok(())
    }

    /// Builds the paper's 14-tuple MDP state for one sample: the 4 HPC
    /// features, the five model votes, and the five per-model constraint
    /// scores (the run-time variables the reward policy conditions on).
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn state_tuple(
        &self,
        models: &[Box<dyn Classifier>],
        row: &[f64],
    ) -> Result<Vec<f64>, RlError> {
        let mut state = Vec::with_capacity(row.len() + 2 * models.len());
        state.extend_from_slice(row);
        for m in models {
            let vote = m
                .predict_row(row)
                .map_err(|e| RlError::Model(e.to_string()))?;
            state.push(f64::from(vote));
        }
        for arm in 0..models.len() {
            let constraint = match self.kind {
                ConstraintKind::FastInference => 1.0 - self.norm_latency[arm],
                ConstraintKind::SmallFootprint => 1.0 - self.norm_size[arm],
                ConstraintKind::BestDetection => 1.0,
            };
            state.push(constraint);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_ml::{Classifier, DecisionTree, LogisticRegression};
    use hmd_tabular::Class;

    fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into()]).unwrap();
        for _ in 0..n {
            d.push(&[rng.random_range(-1.0..0.2)], Class::Benign).unwrap();
            d.push(&[rng.random_range(-0.2..1.0)], Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    fn fitted_models(data: &Dataset, targets: &[f64]) -> Vec<Box<dyn Classifier>> {
        let mut lr = LogisticRegression::new();
        lr.fit(data, targets).unwrap();
        let mut dt = DecisionTree::new();
        dt.fit(data, targets).unwrap();
        vec![Box::new(lr), Box::new(dt)]
    }

    fn profiles(latencies: &[f64], sizes: &[usize]) -> Vec<ModelProfile> {
        latencies
            .iter()
            .zip(sizes)
            .enumerate()
            .map(|(i, (&l, &s))| ModelProfile {
                name: format!("m{i}"),
                latency_ms: l,
                size_bytes: s,
            })
            .collect()
    }

    #[test]
    fn fast_agent_prefers_the_fast_model_when_accuracy_ties() {
        let (d, t) = blobs(150, 1);
        let models = fitted_models(&d, &t);
        // model 0 is 100× faster
        let p = profiles(&[0.001, 0.1], &[1000, 1000]);
        let c = ConstraintController::train(
            ConstraintKind::FastInference,
            &models,
            p,
            &d,
            &t,
            ControllerConfig::default(),
        )
        .unwrap();
        assert_eq!(c.selected_model(), 0);
    }

    #[test]
    fn footprint_agent_prefers_the_small_model() {
        let (d, t) = blobs(150, 2);
        let models = fitted_models(&d, &t);
        let p = profiles(&[0.01, 0.01], &[100_000, 50]);
        let c = ConstraintController::train(
            ConstraintKind::SmallFootprint,
            &models,
            p,
            &d,
            &t,
            ControllerConfig::default(),
        )
        .unwrap();
        assert_eq!(c.selected_model(), 1);
    }

    #[test]
    fn detection_agent_ignores_cost() {
        let (d, t) = blobs(150, 3);
        let models = fitted_models(&d, &t);
        // the heavy model is not penalized under BestDetection
        let p = profiles(&[10.0, 0.0001], &[10_000_000, 10]);
        let c = ConstraintController::train(
            ConstraintKind::BestDetection,
            &models,
            p,
            &d,
            &t,
            ControllerConfig::default(),
        )
        .unwrap();
        // whichever wins, the reward must not depend on cost: compare means
        let means = c.ucb().means();
        // both models are decent → both means near their accuracy, no cost discount
        assert!(means.iter().all(|&m| m > 0.5), "means {means:?}");
    }

    #[test]
    fn reward_shaping_matches_spec() {
        assert_eq!(ConstraintKind::BestDetection.reward(true, 0.9, 0.9), 1.0);
        assert_eq!(ConstraintKind::BestDetection.reward(false, 0.0, 0.0), 0.0);
        assert!(
            ConstraintKind::FastInference.reward(true, 0.0, 0.5)
                > ConstraintKind::FastInference.reward(true, 1.0, 0.5)
        );
        assert!(
            ConstraintKind::SmallFootprint.reward(true, 0.5, 0.0)
                > ConstraintKind::SmallFootprint.reward(true, 0.5, 1.0)
        );
    }

    #[test]
    fn state_tuple_has_paper_shape() {
        let (d, t) = blobs(60, 4);
        let models = fitted_models(&d, &t);
        let p = profiles(&[0.01, 0.02], &[100, 200]);
        let c = ConstraintController::train(
            ConstraintKind::FastInference,
            &models,
            p,
            &d,
            &t,
            ControllerConfig::default(),
        )
        .unwrap();
        // with 4 HPC features and 5 models the paper's tuple is 14-wide;
        // here: 1 feature + 2 votes + 2 constraints = 5
        let s = c.state_tuple(&models, d.row(0).unwrap()).unwrap();
        assert_eq!(s.len(), 1 + 2 + 2);
    }

    #[test]
    fn validates_inputs() {
        let (d, t) = blobs(30, 5);
        let models = fitted_models(&d, &t);
        let p = profiles(&[0.01], &[100]); // wrong length
        assert!(matches!(
            ConstraintController::train(
                ConstraintKind::FastInference,
                &models,
                p,
                &d,
                &t,
                ControllerConfig::default()
            ),
            Err(RlError::Mismatch(_))
        ));
        let empty = Dataset::new(vec!["a".into()]).unwrap();
        let p = profiles(&[0.01, 0.02], &[100, 200]);
        assert!(matches!(
            ConstraintController::train(
                ConstraintKind::FastInference,
                &models,
                p,
                &empty,
                &[],
                ControllerConfig::default()
            ),
            Err(RlError::EmptyDataset)
        ));
    }
}
