//! The Upper Confidence Bound (UCB1) bandit used by the constraint-aware
//! controller (paper §2.6: chosen "due to its lightweight nature,
//! imposing minimal overhead in terms of parameter size and inference
//! latency").


/// A UCB1 agent over `n` arms.
///
/// Arm selection maximizes `mean(arm) + c·√(ln t / n(arm))`; untried arms
/// are always selected first.
///
/// # Example
///
/// ```
/// use hmd_rl::Ucb;
///
/// let mut ucb = Ucb::new(3, 1.0);
/// for _ in 0..300 {
///     let arm = ucb.select();
///     // arm 2 pays best
///     let reward = if arm == 2 { 1.0 } else { 0.2 };
///     ucb.update(arm, reward);
/// }
/// assert_eq!(ucb.best_arm(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Ucb {
    counts: Vec<u64>,
    means: Vec<f64>,
    total: u64,
    exploration: f64,
}

impl Ucb {
    /// A UCB1 agent with `n_arms` arms and exploration constant `c`.
    ///
    /// # Panics
    ///
    /// Panics for zero arms or negative `c`.
    #[must_use]
    pub fn new(n_arms: usize, exploration: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(exploration >= 0.0, "exploration constant must be non-negative");
        Self { counts: vec![0; n_arms], means: vec![0.0; n_arms], total: 0, exploration }
    }

    /// Number of arms.
    #[must_use]
    pub fn n_arms(&self) -> usize {
        self.counts.len()
    }

    /// Selects the next arm to pull (UCB1 rule; untried arms first).
    #[must_use]
    pub fn select(&self) -> usize {
        if let Some(untried) = self.counts.iter().position(|&c| c == 0) {
            return untried;
        }
        let ln_t = (self.total as f64).ln();
        (0..self.counts.len())
            .max_by(|&a, &b| self.ucb_score(a, ln_t).total_cmp(&self.ucb_score(b, ln_t)))
            .expect("non-empty arms")
    }

    fn ucb_score(&self, arm: usize, ln_t: f64) -> f64 {
        self.means[arm] + self.exploration * (ln_t / self.counts[arm] as f64).sqrt()
    }

    /// Records the observed reward for a pulled arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.counts.len(), "arm out of range");
        self.counts[arm] += 1;
        self.total += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    /// The arm with the best empirical mean (pure exploitation).
    #[must_use]
    pub fn best_arm(&self) -> usize {
        (0..self.means.len())
            .max_by(|&a, &b| self.means[a].total_cmp(&self.means[b]))
            .expect("non-empty arms")
    }

    /// Empirical mean reward per arm.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Pull count per arm.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total pulls so far.
    #[must_use]
    pub fn total_pulls(&self) -> u64 {
        self.total
    }

    /// In-memory size of the agent state in bytes — the "lightweight"
    /// property the paper highlights (a handful of floats per arm).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * (8 + 8) + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_util::rng::prelude::*;

    #[test]
    fn tries_every_arm_first() {
        let mut ucb = Ucb::new(4, 1.0);
        let mut seen = [false; 4];
        for _ in 0..4 {
            let arm = ucb.select();
            assert!(!seen[arm], "arm {arm} selected twice before others tried");
            seen[arm] = true;
            ucb.update(arm, 0.0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn converges_to_best_arm_under_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ucb = Ucb::new(3, 1.2);
        let true_means = [0.3, 0.7, 0.5];
        for _ in 0..3000 {
            let arm = ucb.select();
            let reward = f64::from(rng.random_bool(true_means[arm]));
            ucb.update(arm, reward);
        }
        assert_eq!(ucb.best_arm(), 1);
        // UCB spends most pulls on the best arm
        assert!(ucb.counts()[1] > 2000, "pulls {:?}", ucb.counts());
    }

    #[test]
    fn empirical_means_track_truth() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ucb = Ucb::new(2, 0.8);
        for _ in 0..5000 {
            let arm = ucb.select();
            let reward = if arm == 0 {
                rng.random_range(0.0..0.4)
            } else {
                rng.random_range(0.5..1.0)
            };
            ucb.update(arm, reward);
        }
        assert!((ucb.means()[1] - 0.75).abs() < 0.05);
    }

    #[test]
    fn zero_exploration_exploits_greedily() {
        let mut ucb = Ucb::new(2, 0.0);
        ucb.update(0, 1.0);
        ucb.update(1, 0.0);
        for _ in 0..10 {
            assert_eq!(ucb.select(), 0);
            ucb.update(0, 1.0);
        }
    }

    #[test]
    fn size_is_tiny() {
        let ucb = Ucb::new(5, 1.0);
        assert!(ucb.size_bytes() < 128);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn rejects_zero_arms() {
        let _ = Ucb::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "arm out of range")]
    fn rejects_bad_arm_update() {
        let mut ucb = Ucb::new(2, 1.0);
        ucb.update(5, 1.0);
    }
}
