//! Framework configuration.

use hmd_adversarial::LowProFoolConfig;
use hmd_rl::{ControllerConfig, PredictorConfig};
use hmd_sim::CorpusConfig;

/// How the framework selects its HPC feature subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeatureSelection {
    /// Pin the four features the paper reports as its MI winners:
    /// `LLC-load-misses`, `LLC-loads`, `cache-misses`,
    /// `cpu/cache-misses/`.
    PaperTop4,
    /// Rank by mutual information on this corpus and keep the top `k`.
    MutualInfo {
        /// Number of features to keep.
        k: usize,
        /// Histogram bins for the MI estimator.
        bins: usize,
    },
}

/// End-to-end configuration of the multi-phased framework.
#[derive(Clone, Debug)]
pub struct FrameworkConfig {
    /// Corpus-collection campaign (simulated Perf + LXC).
    pub corpus: CorpusConfig,
    /// Feature-selection strategy (paper: top-4 by MI).
    pub features: FeatureSelection,
    /// Test fraction of the train/test split (paper: 80:20).
    pub test_fraction: f64,
    /// LowProFool attack settings.
    pub attack: LowProFoolConfig,
    /// A2C adversarial-predictor settings.
    pub predictor: PredictorConfig,
    /// UCB constraint-controller settings.
    pub controller: ControllerConfig,
    /// Master seed for splits and attack generation.
    pub seed: u64,
    /// Inference repeats when measuring per-model latency.
    pub latency_repeats: usize,
    /// Absolute metric-drift tolerance of the integrity monitor
    /// (paper §2.7): scenario-(b)/(c) metrics deviating more than this
    /// from the scenario-(a) baseline are flagged as drift.
    pub integrity_tolerance: f64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            corpus: CorpusConfig::default(),
            features: FeatureSelection::PaperTop4,
            test_fraction: 0.2,
            attack: LowProFoolConfig::default(),
            predictor: PredictorConfig::default(),
            controller: ControllerConfig::default(),
            seed: 0x4441_4332, // "DAC2"
            latency_repeats: 5,
            integrity_tolerance: 0.05,
        }
    }
}

impl FrameworkConfig {
    /// The full paper-scale configuration (3,000 applications).
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self { corpus: CorpusConfig { seed, ..CorpusConfig::default() }, seed, ..Self::default() }
    }

    /// A small configuration for unit tests and examples: tens of
    /// applications, short simulation slices, light predictor training.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        let mut corpus = CorpusConfig::quick(seed);
        corpus.benign_apps = 48;
        corpus.malware_apps = 48;
        corpus.windows_per_app = 3;
        corpus.warmup_windows = 1;
        Self {
            corpus,
            predictor: hmd_rl::PredictorConfig {
                a2c: hmd_rl::A2cConfig {
                    hidden: vec![16, 16],
                    actor_lr: 2e-3,
                    critic_lr: 5e-3,
                    seed,
                    ..hmd_rl::A2cConfig::default()
                },
                episodes: 3000,
                seed,
                ..hmd_rl::PredictorConfig::default()
            },
            seed,
            latency_repeats: 1,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = FrameworkConfig::default();
        assert_eq!(c.test_fraction, 0.2);
        assert_eq!(c.features, FeatureSelection::PaperTop4);
        assert_eq!(c.corpus.perf.sample_period_ms, 10.0);
        assert_eq!(c.corpus.perf.hardware_slots, 4);
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = FrameworkConfig::quick(1);
        let p = FrameworkConfig::paper(1);
        assert!(q.corpus.benign_apps < p.corpus.benign_apps);
        assert!(q.predictor.episodes < p.predictor.episodes);
    }
}
