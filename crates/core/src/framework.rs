//! The multi-phased adversarial learning and defense framework
//! (paper §2.3, Figure 1).
//!
//! Phases:
//!
//! 1. **Data acquisition & feature engineering** (§2.1) — simulated
//!    Perf/LXC corpus, standard scaling, top-4 feature selection;
//! 2. **Baseline detection** — six detectors on legitimate data
//!    (Table 2, scenario *a*);
//! 3. **Adversarial attack generation** (§2.4) — LowProFool on the
//!    malware samples (Table 2, scenario *b* via transfer);
//! 4. **Adversarial attack prediction** (§2.5) — the A2C predictor
//!    trained from unlabeled data + feedback rewards;
//! 5. **Adversarial training** — predictor-flagged samples labeled and
//!    merged, detectors retrained (Table 2, scenario *c*);
//! 6. **Constraint-aware control** (§2.6) — three UCB agents scheduling
//!    the five classical models at run time (Figure 4a).

use hmd_adversarial::{attacked_test_set, Attack, AttackResult, LowProFool};
use hmd_ml::{
    all_models, classical_models, evaluate, measure_latency_ms, BinaryMetrics, Classifier,
    ConfusionMatrix,
};
use hmd_rl::{
    AdversarialPredictor, ConstraintController, ConstraintKind, ModelProfile, PredictorConfig,
};
use hmd_integrity::MetricMonitor;
use hmd_sim::build_corpus;
use hmd_tabular::split::stratified_split;
use hmd_tabular::{select_top_features, Class, Dataset, StandardScaler};
use hmd_util::rng::prelude::*;

use crate::config::{FeatureSelection, FrameworkConfig};
use crate::detector::AdaptiveDetector;
use crate::report::{ControllerReport, FrameworkReport, PredictorReport, ScenarioMetrics};
use crate::CoreError;

/// The four features the paper names as its MI winners.
pub const PAPER_TOP4: [&str; 4] =
    ["LLC-load-misses", "LLC-loads", "cache-misses", "cpu/cache-misses/"];

/// The engineered dataset every phase operates on.
#[derive(Clone, Debug)]
pub struct DataBundle {
    /// Standardized training split (selected features only).
    pub train: Dataset,
    /// Standardized test split.
    pub test: Dataset,
    /// The scaler fitted on the training split.
    pub scaler: StandardScaler,
    /// Names of the selected features.
    pub feature_names: Vec<String>,
}

/// Artifacts of the attack-generation phase. Cloneable so a retraining
/// round can carry the fitted attack and its pools into the next
/// serving-artifacts generation without regenerating them.
#[derive(Clone, Debug)]
pub struct AttackArtifacts {
    /// The fitted LowProFool attack (owns the imperceptibility
    /// evaluator).
    pub attack: LowProFool,
    /// Adversarial versions of the *training* malware (the pool the
    /// defender later learns from).
    pub train_result: AttackResult,
    /// Adversarial versions of the *test* malware (what the attacker
    /// deploys at inference time).
    pub test_result: AttackResult,
}

/// The framework orchestrator.
#[derive(Clone, Debug)]
pub struct Framework {
    config: FrameworkConfig,
}

impl Framework {
    /// A framework with the given configuration.
    #[must_use]
    pub fn new(config: FrameworkConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// Phase 1: corpus collection, feature selection, split, scaling.
    ///
    /// # Errors
    ///
    /// Propagates corpus/selection/split errors.
    pub fn prepare_data(&self) -> Result<DataBundle, CoreError> {
        let _span = hmd_telemetry::span("framework.prepare_data");
        let corpus = build_corpus(&self.config.corpus);
        let selected = match &self.config.features {
            FeatureSelection::PaperTop4 => {
                let names = corpus.dataset.feature_names();
                let idx: Option<Vec<usize>> = PAPER_TOP4
                    .iter()
                    .map(|want| names.iter().position(|n| n == want))
                    .collect();
                let idx = idx.ok_or(CoreError::MissingFeature)?;
                corpus.dataset.select_features(&idx)?
            }
            FeatureSelection::MutualInfo { k, bins } => {
                select_top_features(&corpus.dataset, *k, *bins)?.0
            }
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (train, test) = stratified_split(&selected, self.config.test_fraction, &mut rng)?;
        let scaler = StandardScaler::fit(&train)?;
        let train = scaler.transform(&train)?;
        let test = scaler.transform(&test)?;
        let feature_names = train.feature_names().to_vec();
        Ok(DataBundle { train, test, scaler, feature_names })
    }

    /// Fits the full model zoo on `(data, targets)`.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit_models(
        &self,
        data: &Dataset,
        targets: &[f64],
    ) -> Result<Vec<Box<dyn Classifier>>, CoreError> {
        let _span = hmd_telemetry::span("framework.fit_models");
        let mut models = all_models();
        for model in &mut models {
            let _fit = hmd_telemetry::span(&format!("ml.fit.{}", model.name()));
            model.fit(data, targets)?;
        }
        Ok(models)
    }

    /// Evaluates fitted models on a labeled set, producing Table-2 rows.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn evaluate_models(
        models: &[Box<dyn Classifier>],
        data: &Dataset,
        targets: &[f64],
    ) -> Result<Vec<ScenarioMetrics>, CoreError> {
        let _span = hmd_telemetry::span("framework.evaluate_models");
        models
            .iter()
            .map(|m| {
                Ok(ScenarioMetrics {
                    model: m.name().to_owned(),
                    metrics: evaluate(m.as_ref(), data, targets)?,
                })
            })
            .collect()
    }

    /// Phase 3: fits LowProFool on the training split and generates
    /// adversarial versions of the train and test malware.
    ///
    /// # Errors
    ///
    /// Propagates attack fitting/generation failures.
    pub fn generate_attacks(&self, bundle: &DataBundle) -> Result<AttackArtifacts, CoreError> {
        let _span = hmd_telemetry::span("framework.generate_attacks");
        let attack =
            LowProFool::fit_with_config(&bundle.train, self.config.attack)?;
        let train_malware = bundle.train.filter(Class::is_attack);
        let test_malware = bundle.test.filter(Class::is_attack);
        let train_result = attack.generate(&train_malware, self.config.seed ^ 0x7261)?;
        let test_result = attack.generate(&test_malware, self.config.seed ^ 0x7465)?;
        Ok(AttackArtifacts { attack, train_result, test_result })
    }

    /// The scenario-(b) test set: benign rows untouched, malware rows
    /// replaced by their adversarial disguises.
    ///
    /// # Errors
    ///
    /// Propagates dataset assembly errors.
    pub fn attacked_test(
        bundle: &DataBundle,
        attacks: &AttackArtifacts,
    ) -> Result<Dataset, CoreError> {
        Ok(attacked_test_set(&bundle.test, &attacks.test_result.adversarial)?)
    }

    /// The merged `[Malware, Benign, Adversarial]` training database of
    /// the defense module (Figure 1, bottom left).
    ///
    /// # Errors
    ///
    /// Propagates merge errors.
    pub fn merged_training_set(
        bundle: &DataBundle,
        attacks: &AttackArtifacts,
    ) -> Result<Dataset, CoreError> {
        let mut merged = bundle.train.clone();
        merged.merge(&attacks.train_result.adversarial)?;
        Ok(merged)
    }

    /// The scenario-(c) test set: benign + legitimate malware +
    /// adversarial malware, all labeled truthfully.
    ///
    /// # Errors
    ///
    /// Propagates merge errors.
    pub fn merged_test_set(
        bundle: &DataBundle,
        attacks: &AttackArtifacts,
    ) -> Result<Dataset, CoreError> {
        let mut merged = bundle.test.clone();
        merged.merge(&attacks.test_result.adversarial)?;
        Ok(merged)
    }

    /// Phase 4: trains the A2C adversarial predictor on the merged set
    /// (adversarial rows labeled, everything else unlabeled).
    ///
    /// # Errors
    ///
    /// Propagates predictor-training failures.
    pub fn train_predictor(
        &self,
        merged_train: &Dataset,
    ) -> Result<AdversarialPredictor, CoreError> {
        let _span = hmd_telemetry::span("framework.train_predictor");
        let config = PredictorConfig { ..self.config.predictor.clone() };
        Ok(AdversarialPredictor::train(merged_train, config)?)
    }

    /// Evaluates the predictor on an inference stream of adversarial
    /// samples followed by non-adversarial ones (Figure 3(b)'s layout).
    #[must_use]
    pub fn evaluate_predictor(
        predictor: &AdversarialPredictor,
        adversarial: &Dataset,
        clean: &Dataset,
    ) -> PredictorReport {
        let _span = hmd_telemetry::span("framework.evaluate_predictor");
        let mut reward_trace = Vec::with_capacity(adversarial.len() + clean.len());
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut tn = 0usize;
        let mut fn_ = 0usize;
        for (row, _) in adversarial {
            let reward = predictor.feedback_reward(row);
            reward_trace.push((true, reward));
            if reward > predictor.threshold() {
                tp += 1;
            } else {
                fn_ += 1;
            }
        }
        for (row, _) in clean {
            let reward = predictor.feedback_reward(row);
            reward_trace.push((false, reward));
            if reward > predictor.threshold() {
                fp += 1;
            } else {
                tn += 1;
            }
        }
        let total = (tp + fp + tn + fn_) as f64;
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PredictorReport {
            accuracy: if total == 0.0 { 0.0 } else { (tp + tn) as f64 / total },
            f1,
            precision,
            recall,
            reward_trace,
        }
    }

    /// Phase 6: trains the three constraint agents over the five
    /// classical models (the paper excludes the NN here) and evaluates
    /// each agent's deployed model on the merged test set.
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation failures.
    pub fn train_controllers(
        &self,
        merged_train: &Dataset,
        merged_test: &Dataset,
    ) -> Result<Vec<(ConstraintController, ControllerReport)>, CoreError> {
        let _span = hmd_telemetry::span("framework.train_controllers");
        let train_targets = merged_train.binary_targets(Class::is_attack);
        let test_targets = merged_test.binary_targets(Class::is_attack);
        let mut models = classical_models();
        for model in &mut models {
            model.fit(merged_train, &train_targets)?;
        }
        // Metric Monitor: measure latency and size per model
        let probe = merged_test.subset(&(0..merged_test.len().min(64)).collect::<Vec<_>>())?;
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| {
                Ok(ModelProfile {
                    name: m.name().to_owned(),
                    latency_ms: measure_latency_ms(
                        m.as_ref(),
                        &probe,
                        self.config.latency_repeats,
                    )?,
                    size_bytes: m.size_bytes(),
                })
            })
            .collect::<Result<_, CoreError>>()?;

        let mut out = Vec::with_capacity(ConstraintKind::ALL.len());
        for kind in ConstraintKind::ALL {
            let controller = ConstraintController::train(
                kind,
                &models,
                profiles.clone(),
                merged_train,
                &train_targets,
                self.config.controller,
            )?;
            let selected = controller.selected_model();
            let metrics = evaluate(models[selected].as_ref(), merged_test, &test_targets)?;
            let report = ControllerReport {
                agent: kind.label().to_owned(),
                selected_model: profiles[selected].name.clone(),
                metrics,
                latency_ms: profiles[selected].latency_ms,
                size_bytes: profiles[selected].size_bytes,
            };
            out.push((controller, report));
        }
        Ok(out)
    }

    /// Runs every phase and assembles the complete report.
    ///
    /// The whole run executes under a `framework.run` telemetry span;
    /// when tracing was requested through `HMD_TRACE`, the artifacts
    /// `TELEMETRY_pipeline.{json,folded}` are written once the root span
    /// closes. Telemetry observes but never feeds back: the report is
    /// byte-identical (modulo measured latencies) with tracing on or off.
    ///
    /// # Errors
    ///
    /// Propagates failures from any phase.
    pub fn run(&self) -> Result<FrameworkReport, CoreError> {
        // Inner scope so the root span's guard drops (recording its end
        // time) before the export below reads the finished spans.
        let report = {
            let _root = hmd_telemetry::span("framework.run");
            self.run_phases()
        };
        hmd_telemetry::maybe_export("pipeline");
        report
    }

    fn run_phases(&self) -> Result<FrameworkReport, CoreError> {
        let bundle = self.prepare_data()?;

        // scenario (a): regular malware detection
        let attack_targets = bundle.train.binary_targets(Class::is_attack);
        let baseline_models = self.fit_models(&bundle.train, &attack_targets)?;
        let test_targets = bundle.test.binary_targets(Class::is_attack);
        let baseline = Self::evaluate_models(&baseline_models, &bundle.test, &test_targets)?;

        // §2.7 metric monitor: scenario (a) is the recorded baseline the
        // later scenarios are assessed against.
        let monitor = MetricMonitor::new(self.config.integrity_tolerance);
        for row in &baseline {
            monitor.record_baseline(&row.model, row.metrics);
        }

        // scenario (b): under adversarial attack
        let attacks = self.generate_attacks(&bundle)?;
        let attacked_test = Self::attacked_test(&bundle, &attacks)?;
        let attacked_targets = attacked_test.binary_targets(Class::is_attack);
        let attacked =
            Self::evaluate_models(&baseline_models, &attacked_test, &attacked_targets)?;
        for row in &attacked {
            let _ = monitor.assess(&row.model, &row.metrics);
        }

        // phase 4: the predictor learns to flag adversarial inputs
        let merged_train = Self::merged_training_set(&bundle, &attacks)?;
        let predictor = self.train_predictor(&merged_train)?;
        let clean_test = bundle.test.clone();
        let predictor_report = Self::evaluate_predictor(
            &predictor,
            &attacks.test_result.adversarial,
            &clean_test,
        );

        // scenario (c): adversarial training
        let merged_targets = merged_train.binary_targets(Class::is_attack);
        let defended_models = self.fit_models(&merged_train, &merged_targets)?;
        let merged_test = Self::merged_test_set(&bundle, &attacks)?;
        let merged_test_targets = merged_test.binary_targets(Class::is_attack);
        let defended =
            Self::evaluate_models(&defended_models, &merged_test, &merged_test_targets)?;
        for row in &defended {
            let _ = monitor.assess(&row.model, &row.metrics);
        }

        // phase 6: constraint-aware controllers
        let controllers = self
            .train_controllers(&merged_train, &merged_test)?
            .into_iter()
            .map(|(_, report)| report)
            .collect();

        Ok(FrameworkReport {
            baseline,
            attacked,
            defended,
            attack_success_rate: attacks.test_result.success_rate(),
            mean_perturbation: attacks.test_result.mean_perturbation(),
            predictor: predictor_report,
            controllers,
            selected_features: bundle.feature_names,
        })
    }
}

/// Everything a long-running serving process needs, trained once up
/// front: the engineered-data recipe (selector + scaler), the deployed
/// [`AdaptiveDetector`], the adversarial pool the traffic generator can
/// replay attacks from, and a [`MetricMonitor`] whose `"serving"`
/// baseline records the detector's own composite confusion on the
/// merged test set.
#[derive(Debug)]
pub struct ServingArtifacts {
    /// The engineered dataset and its scaler/feature recipe.
    pub bundle: DataBundle,
    /// The fitted attack and its generated adversarial pools.
    pub attacks: AttackArtifacts,
    /// The deployed predictor + controller + model composition.
    pub detector: AdaptiveDetector,
    /// Metric monitor with the `"serving"` composite baseline recorded.
    pub monitor: MetricMonitor,
    /// The constraint the controller was trained under.
    pub kind: ConstraintKind,
    /// The merged `[Malware, Benign, Adversarial]` training database the
    /// detector's models were fitted on — the set retraining rounds
    /// extend with drained quarantine samples.
    pub training: Dataset,
}

/// The baseline name [`Framework::prepare_serving`] records the
/// composite detector under.
pub const SERVING_BASELINE: &str = "serving";

impl Framework {
    /// Trains every runtime component and assembles the deployable
    /// serving artifacts: phases 1–5 as in [`run`](Self::run), then the
    /// constraint controller for `kind`, an [`AdaptiveDetector`], and a
    /// metric monitor holding the detector's composite baseline.
    ///
    /// # Errors
    ///
    /// Propagates failures from any phase.
    pub fn prepare_serving(&self, kind: ConstraintKind) -> Result<ServingArtifacts, CoreError> {
        let _span = hmd_telemetry::span("framework.prepare_serving");
        let bundle = self.prepare_data()?;
        let attacks = self.generate_attacks(&bundle)?;
        let merged_train = Self::merged_training_set(&bundle, &attacks)?;
        let predictor = self.train_predictor(&merged_train)?;

        let train_targets = merged_train.binary_targets(Class::is_attack);
        let mut models = classical_models();
        for model in &mut models {
            model.fit(&merged_train, &train_targets)?;
        }
        let probe = merged_train.subset(&(0..merged_train.len().min(64)).collect::<Vec<_>>())?;
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| {
                Ok(ModelProfile {
                    name: m.name().to_owned(),
                    latency_ms: measure_latency_ms(
                        m.as_ref(),
                        &probe,
                        self.config.latency_repeats,
                    )?,
                    size_bytes: m.size_bytes(),
                })
            })
            .collect::<Result<_, CoreError>>()?;
        let controller = ConstraintController::train(
            kind,
            &models,
            profiles,
            &merged_train,
            &train_targets,
            self.config.controller,
        )?;
        let detector =
            AdaptiveDetector::new(predictor, controller, models, bundle.feature_names.clone())?;

        // Record the composite detector's own confusion as the
        // integrity baseline, on the *clean* test set — the paper's
        // monitor records its baseline on legitimate data (scenario a),
        // and serving-lull traffic is drawn from that distribution. The
        // serving loop assesses its windowed confusion against exactly
        // this record, so an adversarial campaign registers as drift.
        let mut matrix = ConfusionMatrix::default();
        for (row, class) in &bundle.test {
            let attack = detector.classify(row)?.is_attack();
            match (attack, Class::is_attack(class)) {
                (true, true) => matrix.tp += 1,
                (true, false) => matrix.fp += 1,
                (false, true) => matrix.fn_ += 1,
                (false, false) => matrix.tn += 1,
            }
        }
        // baseline probing quarantined the flagged test rows; discard
        // them so serving starts with an empty quarantine
        let _ = detector.take_quarantine();
        let monitor = MetricMonitor::new(self.config.integrity_tolerance);
        monitor.record_baseline(SERVING_BASELINE, BinaryMetrics::from_confusion(&matrix));

        Ok(ServingArtifacts { bundle, attacks, detector, monitor, kind, training: merged_train })
    }

    /// One round of the run-time feedback loop (Figure 1): merges a
    /// quarantine of predictor-flagged samples (labeled
    /// [`Class::Adversarial`]) into the training database and refits every
    /// model on the extended set. Returns the number of samples absorbed.
    ///
    /// # Errors
    ///
    /// Propagates merge and training failures; a schema mismatch between
    /// quarantine and training set is rejected.
    pub fn retraining_round(
        models: &mut [Box<dyn Classifier>],
        training: &mut Dataset,
        quarantine: &Dataset,
    ) -> Result<usize, CoreError> {
        let _span = hmd_telemetry::span("framework.retraining_round");
        if quarantine.is_empty() {
            return Ok(0);
        }
        training.merge(quarantine)?;
        let targets = training.binary_targets(Class::is_attack);
        for model in models.iter_mut() {
            model.fit(training, &targets)?;
        }
        Ok(quarantine.len())
    }
}

/// Convenience: the full metric suite of one fitted model on one set.
///
/// # Errors
///
/// Propagates prediction failures.
pub fn metrics_of(
    model: &dyn Classifier,
    data: &Dataset,
    targets: &[f64],
) -> Result<BinaryMetrics, CoreError> {
    Ok(evaluate(model, data, targets)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;

    fn quick() -> Framework {
        Framework::new(FrameworkConfig::quick(11))
    }

    #[test]
    fn prepare_data_selects_paper_features() {
        let bundle = quick().prepare_data().unwrap();
        assert_eq!(bundle.feature_names, PAPER_TOP4.map(String::from).to_vec());
        assert!(bundle.train.len() > bundle.test.len());
        // standardized: near-zero means
        for f in 0..bundle.train.n_features() {
            let col = bundle.train.column(f).unwrap();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 0.2, "feature {f} mean {mean}");
        }
    }

    #[test]
    fn mutual_info_selection_works_too() {
        let mut config = FrameworkConfig::quick(12);
        config.features = FeatureSelection::MutualInfo { k: 6, bins: 16 };
        let bundle = Framework::new(config).prepare_data().unwrap();
        assert_eq!(bundle.train.n_features(), 6);
    }

    #[test]
    fn attack_generation_succeeds_on_simulated_corpus() {
        let fw = quick();
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        assert!(attacks.test_result.success_rate() > 0.95);
        assert_eq!(
            attacks.test_result.adversarial.len(),
            bundle.test.filter(Class::is_attack).len()
        );
    }

    #[test]
    fn merged_sets_have_three_classes() {
        let fw = quick();
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        let merged = Framework::merged_training_set(&bundle, &attacks).unwrap();
        let counts = merged.class_counts();
        assert!(counts[&Class::Benign] > 0);
        assert!(counts[&Class::Malware] > 0);
        assert!(counts[&Class::Adversarial] > 0);
    }

    #[test]
    fn retraining_round_absorbs_quarantine() {
        let fw = quick();
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        let mut training = bundle.train.clone();
        let targets = training.binary_targets(Class::is_attack);
        let mut models: Vec<Box<dyn Classifier>> =
            vec![Box::new(hmd_ml::DecisionTree::new())];
        models[0].fit(&training, &targets).unwrap();
        let before = training.len();
        let quarantine = attacks.train_result.adversarial.clone();
        let absorbed =
            Framework::retraining_round(&mut models, &mut training, &quarantine).unwrap();
        assert_eq!(absorbed, quarantine.len());
        assert_eq!(training.len(), before + quarantine.len());
        // empty quarantine is a no-op
        let empty = Dataset::new(training.feature_names().to_vec()).unwrap();
        assert_eq!(
            Framework::retraining_round(&mut models, &mut training, &empty).unwrap(),
            0
        );
    }

    /// The serving retrainer's exact sequence: an *over-cap* quarantine
    /// (ring already evicted oldest rows) drains to exactly the cap and
    /// is absorbed in full; the immediately following round sees the
    /// just-drained (empty) ring and must be a no-op.
    #[test]
    fn retraining_round_handles_over_cap_and_just_drained_quarantine() {
        let artifacts = quick().prepare_serving(ConstraintKind::BestDetection).unwrap();
        let detector = &artifacts.detector;
        detector.set_quarantine_cap(8);
        let mut flagged = 0usize;
        for (row, _) in &artifacts.attacks.test_result.adversarial {
            if detector.classify(row).unwrap() == crate::Verdict::AdversarialAttack {
                flagged += 1;
            }
        }
        assert!(flagged > 8, "need an over-cap quarantine, flagged only {flagged}");
        assert_eq!(detector.quarantined(), 8, "ring must hold exactly the cap");
        assert_eq!(detector.quarantine_evicted(), (flagged - 8) as u64);

        let mut training = artifacts.training.clone();
        let mut models: Vec<Box<dyn Classifier>> =
            vec![Box::new(hmd_ml::DecisionTree::new())];
        let targets = training.binary_targets(Class::is_attack);
        models[0].fit(&training, &targets).unwrap();

        let before = training.len();
        let drained = detector.take_quarantine();
        assert_eq!(drained.len(), 8);
        let absorbed =
            Framework::retraining_round(&mut models, &mut training, &drained).unwrap();
        assert_eq!(absorbed, 8);
        assert_eq!(training.len(), before + 8);

        // a second round right after the drain sees an empty ring: no-op
        let empty = detector.take_quarantine();
        assert!(empty.is_empty());
        let absorbed =
            Framework::retraining_round(&mut models, &mut training, &empty).unwrap();
        assert_eq!(absorbed, 0);
        assert_eq!(training.len(), before + 8, "no-op round must not touch the set");
    }

    #[test]
    fn prepare_serving_records_composite_baseline() {
        let artifacts = quick().prepare_serving(ConstraintKind::BestDetection).unwrap();
        let baseline = artifacts.monitor.baseline(SERVING_BASELINE).expect("baseline recorded");
        assert!((0.0..=1.0).contains(&baseline.accuracy));
        assert!(baseline.accuracy > 0.5, "composite detector should beat chance");
        assert_eq!(artifacts.kind, ConstraintKind::BestDetection);
        // probing must not leave residue in the quarantine
        assert_eq!(artifacts.detector.quarantined(), 0);
        // the detector still classifies engineered rows
        let (row, _) = (&artifacts.bundle.test).into_iter().next().unwrap();
        let _ = artifacts.detector.classify(row).unwrap();
    }

    #[test]
    fn attacked_test_keeps_length_and_benign_rows() {
        let fw = quick();
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        let attacked = Framework::attacked_test(&bundle, &attacks).unwrap();
        assert_eq!(attacked.len(), bundle.test.len());
    }
}
