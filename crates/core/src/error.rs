use std::error::Error;
use std::fmt;

use hmd_adversarial::AdvError;
use hmd_ml::MlError;
use hmd_rl::RlError;
use hmd_tabular::TabularError;

/// Errors produced by the framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A feature named by the configuration is absent from the corpus.
    MissingFeature,
    /// An invalid detector/framework composition.
    Invalid(&'static str),
    /// Tabular-layer failure.
    Tabular(TabularError),
    /// ML-layer failure.
    Ml(MlError),
    /// Attack-layer failure.
    Adversarial(AdvError),
    /// RL-layer failure.
    Rl(RlError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingFeature => {
                write!(f, "a configured feature is missing from the corpus")
            }
            Self::Invalid(what) => write!(f, "invalid composition: {what}"),
            Self::Tabular(e) => write!(f, "tabular error: {e}"),
            Self::Ml(e) => write!(f, "ml error: {e}"),
            Self::Adversarial(e) => write!(f, "adversarial error: {e}"),
            Self::Rl(e) => write!(f, "rl error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Tabular(e) => Some(e),
            Self::Ml(e) => Some(e),
            Self::Adversarial(e) => Some(e),
            Self::Rl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TabularError> for CoreError {
    fn from(e: TabularError) -> Self {
        Self::Tabular(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        Self::Ml(e)
    }
}

impl From<AdvError> for CoreError {
    fn from(e: AdvError) -> Self {
        Self::Adversarial(e)
    }
}

impl From<RlError> for CoreError {
    fn from(e: RlError) -> Self {
        Self::Rl(e)
    }
}
