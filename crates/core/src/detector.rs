//! The run-time adaptive detector: the deployed composition of
//! adversarial predictor, constraint-selected ML models, and integrity
//! validation (Figure 1's inference path).

use hmd_ml::Classifier;
use hmd_rl::{AdversarialPredictor, ConstraintController};
use hmd_tabular::{Class, Dataset};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::CoreError;

/// The verdict for one incoming HPC sample.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The adversarial predictor flagged the sample; it is quarantined
    /// and queued for the next adversarial-training round.
    AdversarialAttack,
    /// The routed ML model classified the sample as (non-adversarial)
    /// malware.
    MalwareAttack,
    /// The routed ML model classified the sample as benign.
    Benign,
}

impl Verdict {
    /// Whether the sample should be blocked.
    #[must_use]
    pub fn is_attack(self) -> bool {
        !matches!(self, Verdict::Benign)
    }
}

/// The deployed detector.
///
/// Incoming samples flow through the adversarial predictor first; flagged
/// samples are labeled [`Class::Adversarial`] and buffered for retraining
/// (the paper's feedback loop), everything else is routed to the ML model
/// the constraint controller selected.
pub struct AdaptiveDetector {
    predictor: AdversarialPredictor,
    controller: ConstraintController,
    models: Vec<Box<dyn Classifier>>,
    /// Flagged samples awaiting the next adversarial-training round.
    quarantine: Mutex<Dataset>,
}

impl std::fmt::Debug for AdaptiveDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDetector")
            .field("models", &self.models.len())
            .field("selected_model", &self.controller.selected_model())
            .field("quarantined", &self.quarantine_guard().len())
            .finish()
    }
}

impl AdaptiveDetector {
    /// Locks the quarantine buffer, recovering from poisoning: a writer
    /// can only panic between samples (`Dataset::push` validates before
    /// mutating), so a poisoned buffer is still structurally valid and
    /// losing it would silently drop quarantined attacks.
    fn quarantine_guard(&self) -> MutexGuard<'_, Dataset> {
        self.quarantine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Assembles a detector from its trained parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if `models` is empty or
    /// `feature_names` is.
    pub fn new(
        predictor: AdversarialPredictor,
        controller: ConstraintController,
        models: Vec<Box<dyn Classifier>>,
        feature_names: Vec<String>,
    ) -> Result<Self, CoreError> {
        if models.is_empty() {
            return Err(CoreError::Invalid("detector needs at least one model"));
        }
        let quarantine =
            Dataset::new(feature_names).map_err(|_| CoreError::Invalid("feature names empty"))?;
        Ok(Self { predictor, controller, models, quarantine: Mutex::new(quarantine) })
    }

    /// Classifies one standardized HPC sample.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn classify(&self, row: &[f64]) -> Result<Verdict, CoreError> {
        if self.predictor.is_adversarial(row) {
            self.quarantine_guard()
                .push(row, Class::Adversarial)
                .map_err(CoreError::from)?;
            return Ok(Verdict::AdversarialAttack);
        }
        let is_malware = self
            .controller
            .predict_row(&self.models, row)
            .map_err(CoreError::from)?;
        Ok(if is_malware { Verdict::MalwareAttack } else { Verdict::Benign })
    }

    /// Drains the quarantined adversarial samples (labeled
    /// [`Class::Adversarial`]) for the next adversarial-training round.
    #[must_use]
    pub fn take_quarantine(&self) -> Dataset {
        let mut guard = self.quarantine_guard();
        let names = guard.feature_names().to_vec();
        std::mem::replace(&mut guard, Dataset::new(names).expect("non-empty schema"))
    }

    /// Number of currently quarantined samples.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.quarantine_guard().len()
    }

    /// The model the constraint controller routed inference to.
    #[must_use]
    pub fn active_model(&self) -> &dyn Classifier {
        self.models[self.controller.selected_model()].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use crate::framework::Framework;
    use hmd_rl::{ConstraintKind, ControllerConfig, ModelProfile};

    /// End-to-end smoke test on the quick corpus: build every component
    /// and drive the runtime path.
    #[test]
    fn detector_routes_samples() {
        let fw = Framework::new(FrameworkConfig::quick(7));
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        let merged = Framework::merged_training_set(&bundle, &attacks).unwrap();
        let predictor = fw.train_predictor(&merged).unwrap();

        let targets = merged.binary_targets(Class::is_attack);
        let mut models = hmd_ml::classical_models();
        for m in &mut models {
            m.fit(&merged, &targets).unwrap();
        }
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| ModelProfile {
                name: m.name().to_owned(),
                latency_ms: 0.01,
                size_bytes: m.size_bytes(),
            })
            .collect();
        let controller = hmd_rl::ConstraintController::train(
            ConstraintKind::BestDetection,
            &models,
            profiles,
            &merged,
            &targets,
            ControllerConfig::default(),
        )
        .unwrap();

        let detector = AdaptiveDetector::new(
            predictor,
            controller,
            models,
            bundle.feature_names.clone(),
        )
        .unwrap();

        // adversarial rows should mostly be flagged and quarantined
        let mut flagged = 0;
        for (row, _) in &attacks.test_result.adversarial {
            if detector.classify(row).unwrap() == Verdict::AdversarialAttack {
                flagged += 1;
            }
        }
        let total = attacks.test_result.adversarial.len();
        assert!(
            flagged * 2 > total,
            "only {flagged}/{total} adversarial rows flagged"
        );
        assert_eq!(detector.quarantined(), flagged);

        // quarantine drains with adversarial labels
        let q = detector.take_quarantine();
        assert_eq!(q.len(), flagged);
        assert!(q.labels().iter().all(|&l| l == Class::Adversarial));
        assert_eq!(detector.quarantined(), 0);

        // benign rows mostly pass
        let benign = bundle.test.filter(|c| c == Class::Benign);
        let mut benign_ok = 0;
        for (row, _) in &benign {
            if detector.classify(row).unwrap() == Verdict::Benign {
                benign_ok += 1;
            }
        }
        // quick-corpus models are weak; this is a routing smoke test, so
        // only require a clear majority of benign rows to pass through
        assert!(
            benign_ok * 2 > benign.len(),
            "only {benign_ok}/{} benign rows passed",
            benign.len()
        );
    }

    #[test]
    fn verdict_attack_classification() {
        assert!(Verdict::AdversarialAttack.is_attack());
        assert!(Verdict::MalwareAttack.is_attack());
        assert!(!Verdict::Benign.is_attack());
    }
}
