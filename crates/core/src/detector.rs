//! The run-time adaptive detector: the deployed composition of
//! adversarial predictor, constraint-selected ML models, and integrity
//! validation (Figure 1's inference path).

use hmd_ml::Classifier;
use hmd_rl::{AdversarialPredictor, ConstraintController};
use hmd_tabular::{Class, Dataset};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::CoreError;

/// Default bound on the quarantine buffer: oldest flagged samples are
/// evicted ring-style once the buffer would exceed this many rows.
pub const DEFAULT_QUARANTINE_CAP: usize = 512;

/// The verdict for one incoming HPC sample.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The adversarial predictor flagged the sample; it is quarantined
    /// and queued for the next adversarial-training round.
    AdversarialAttack,
    /// The routed ML model classified the sample as (non-adversarial)
    /// malware.
    MalwareAttack,
    /// The routed ML model classified the sample as benign.
    Benign,
}

impl Verdict {
    /// Whether the sample should be blocked.
    #[must_use]
    pub fn is_attack(self) -> bool {
        !matches!(self, Verdict::Benign)
    }
}

/// Preallocated per-shard inference arena: every buffer the detector's
/// hot path needs, sized once by [`AdaptiveDetector::warmup`] from the
/// feature width, the model zoo's topology, and the maximum batch size.
///
/// After warmup, [`AdaptiveDetector::classify_into`] and
/// [`AdaptiveDetector::classify_batch_into`] run entirely inside these
/// buffers — zero heap allocations per window — while producing verdicts
/// byte-identical to the allocating [`AdaptiveDetector::classify`] /
/// [`AdaptiveDetector::classify_batch`] paths.
#[derive(Debug)]
pub struct InferArena {
    /// Critic activation scratch for the adversarial predictor.
    critic: hmd_nn::InferScratch,
    /// One predict scratch per zoo model, indexed like the zoo.
    model_scratch: Vec<hmd_ml::PredictScratch>,
    /// Critic values per batch row.
    values: Vec<f64>,
    /// Adversarial flags per batch row.
    flags: Vec<bool>,
    /// Packed unflagged rows awaiting the routed model.
    clean: Vec<f64>,
    /// Routed-model probabilities for the clean rows.
    probs: Vec<f64>,
    /// Routed-model attack votes for the clean rows.
    routed: Vec<bool>,
    /// Final verdicts per batch row, in input order.
    verdicts: Vec<Verdict>,
    max_batch: usize,
}

impl InferArena {
    /// The verdicts of the last [`AdaptiveDetector::classify_batch_into`]
    /// call, in input order.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The largest batch this arena was warmed up for.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// Everything the detector consulted (or would have consulted) while
/// deciding one sample's verdict — the per-window forensic record
/// [`AdaptiveDetector::classify_explain`] produces for incident replay.
///
/// Unlike the serving paths the explanation runs *every* zoo model, so
/// an operator can read per-model disagreement on adversarially
/// perturbed windows — the rows where the routed model's verdict is
/// least trustworthy.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainTrace {
    /// The adversarial predictor's feedback reward (critic value).
    pub adv_score: f64,
    /// The predictor's decision threshold on that score.
    pub adv_threshold: f64,
    /// Whether the predictor flagged the row (`adv_score > threshold`).
    pub flagged: bool,
    /// Index of the model the constraint controller routes to.
    pub selected_model: usize,
    /// Attack probability from every zoo model, in zoo order.
    pub model_probs: Vec<f64>,
    /// The verdict the serving paths produce for this row.
    pub verdict: Verdict,
}

/// The deployed detector.
///
/// Incoming samples flow through the adversarial predictor first; flagged
/// samples are labeled [`Class::Adversarial`] and buffered for retraining
/// (the paper's feedback loop), everything else is routed to the ML model
/// the constraint controller selected.
pub struct AdaptiveDetector {
    /// Shared: retraining rounds refit the classical zoo but keep the
    /// deployed adversarial predictor, so successive detector
    /// generations hold the same predictor through an `Arc`.
    predictor: Arc<AdversarialPredictor>,
    controller: ConstraintController,
    models: Vec<Box<dyn Classifier>>,
    /// Flagged samples awaiting the next adversarial-training round.
    quarantine: Mutex<Dataset>,
    /// Ring bound on the quarantine; oldest rows are evicted past it.
    quarantine_cap: AtomicUsize,
    /// Lifetime count of rows evicted from the quarantine ring.
    evicted: AtomicU64,
}

impl std::fmt::Debug for AdaptiveDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDetector")
            .field("models", &self.models.len())
            .field("selected_model", &self.controller.selected_model())
            .field("quarantined", &self.quarantine_guard().len())
            .finish()
    }
}

impl AdaptiveDetector {
    /// Locks the quarantine buffer, recovering from poisoning: a writer
    /// can only panic between samples (`Dataset::push` validates before
    /// mutating), so a poisoned buffer is still structurally valid and
    /// losing it would silently drop quarantined attacks.
    fn quarantine_guard(&self) -> MutexGuard<'_, Dataset> {
        self.quarantine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Assembles a detector from its trained parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if `models` is empty or
    /// `feature_names` is.
    pub fn new(
        predictor: AdversarialPredictor,
        controller: ConstraintController,
        models: Vec<Box<dyn Classifier>>,
        feature_names: Vec<String>,
    ) -> Result<Self, CoreError> {
        Self::with_shared_predictor(Arc::new(predictor), controller, models, feature_names)
    }

    /// Like [`new`](Self::new), but sharing an already-deployed
    /// adversarial predictor — the retraining loop assembles each
    /// refreshed detector generation around the same predictor
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if `models` is empty or
    /// `feature_names` is.
    pub fn with_shared_predictor(
        predictor: Arc<AdversarialPredictor>,
        controller: ConstraintController,
        models: Vec<Box<dyn Classifier>>,
        feature_names: Vec<String>,
    ) -> Result<Self, CoreError> {
        if models.is_empty() {
            return Err(CoreError::Invalid("detector needs at least one model"));
        }
        let quarantine =
            Dataset::new(feature_names).map_err(|_| CoreError::Invalid("feature names empty"))?;
        Ok(Self {
            predictor,
            controller,
            models,
            quarantine: Mutex::new(quarantine),
            quarantine_cap: AtomicUsize::new(DEFAULT_QUARANTINE_CAP),
            evicted: AtomicU64::new(0),
        })
    }

    /// A handle to the deployed adversarial predictor, for assembling
    /// the next detector generation around it.
    #[must_use]
    pub fn predictor_handle(&self) -> Arc<AdversarialPredictor> {
        Arc::clone(&self.predictor)
    }

    /// The deployed adversarial predictor, for read-only scoring (the
    /// flight recorder reads the raw critic value per served window).
    #[must_use]
    pub fn predictor(&self) -> &AdversarialPredictor {
        &self.predictor
    }

    /// The trained constraint controller (cloneable; carries its model
    /// selection, so a refreshed generation keeps the same routing).
    #[must_use]
    pub fn controller(&self) -> &ConstraintController {
        &self.controller
    }

    /// The deployed model zoo, in controller routing order.
    #[must_use]
    pub fn models(&self) -> &[Box<dyn Classifier>] {
        &self.models
    }

    /// Rebounds the quarantine ring. A cap of 0 disables eviction
    /// (unbounded buffer); shrinking the cap below the current fill
    /// evicts the oldest excess rows immediately, counting them like
    /// any ring eviction.
    pub fn set_quarantine_cap(&self, cap: usize) {
        self.quarantine_cap.store(cap, Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let mut guard = self.quarantine_guard();
        Self::evict_over_cap(&mut guard, cap, &self.evicted);
    }

    /// The current quarantine ring bound (0 = unbounded).
    #[must_use]
    pub fn quarantine_cap(&self) -> usize {
        self.quarantine_cap.load(Ordering::Relaxed)
    }

    /// Evicts oldest-first down to `cap` rows, counting evictions.
    fn evict_over_cap(guard: &mut Dataset, cap: usize, evicted: &AtomicU64) {
        if guard.len() <= cap {
            return;
        }
        let excess = guard.len() - cap;
        guard.pop_front(excess);
        evicted.fetch_add(excess as u64, Ordering::Relaxed);
        if hmd_telemetry::enabled() {
            hmd_telemetry::metrics::counter("serving.quarantine_evicted").add(excess as u64);
        }
    }

    /// Lifetime count of quarantined rows evicted by the ring bound.
    #[must_use]
    pub fn quarantine_evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Quarantines one flagged row, evicting oldest-first past the cap
    /// so a flood of adversarial traffic ages out stale samples instead
    /// of dropping the whole buffer.
    fn quarantine_push(&self, row: &[f64]) -> Result<(), CoreError> {
        let mut guard = self.quarantine_guard();
        guard.push(row, Class::Adversarial).map_err(CoreError::from)?;
        let cap = self.quarantine_cap.load(Ordering::Relaxed);
        if cap > 0 {
            Self::evict_over_cap(&mut guard, cap, &self.evicted);
        }
        Ok(())
    }

    /// Classifies one standardized HPC sample.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn classify(&self, row: &[f64]) -> Result<Verdict, CoreError> {
        if self.predictor.is_adversarial(row) {
            self.quarantine_push(row)?;
            return Ok(Verdict::AdversarialAttack);
        }
        let is_malware = self
            .controller
            .predict_row(&self.models, row)
            .map_err(CoreError::from)?;
        Ok(if is_malware { Verdict::MalwareAttack } else { Verdict::Benign })
    }

    /// Explains one standardized HPC sample: the verdict the serving
    /// paths produce plus every signal behind it — the predictor's raw
    /// feedback reward against its threshold, the controller's routing
    /// choice, and the attack probability of *every* zoo model (the
    /// serving paths only consult the routed one).
    ///
    /// Read-only: unlike [`classify`](Self::classify) a flagged row is
    /// *not* quarantined, so replaying an incident bundle through the
    /// explanation path never feeds the forensic traffic back into the
    /// retraining loop.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn classify_explain(&self, row: &[f64]) -> Result<ExplainTrace, CoreError> {
        let adv_score = self.predictor.feedback_reward(row);
        let adv_threshold = self.predictor.threshold();
        let flagged = adv_score > adv_threshold;
        let mut model_probs = Vec::with_capacity(self.models.len());
        for model in &self.models {
            model_probs.push(model.predict_proba_row(row).map_err(CoreError::from)?);
        }
        let selected_model = self.controller.selected_model();
        let verdict = if flagged {
            Verdict::AdversarialAttack
        } else if model_probs[selected_model] >= 0.5 {
            Verdict::MalwareAttack
        } else {
            Verdict::Benign
        };
        Ok(ExplainTrace { adv_score, adv_threshold, flagged, selected_model, model_probs, verdict })
    }

    /// Classifies a flat row-major batch of `width`-wide samples.
    ///
    /// The adversarial predictor screens the whole batch in one critic
    /// forward pass, flagged rows are quarantined in input order, and
    /// the survivors go through the routed model as one packed matrix.
    /// Verdicts come back in input order and are identical to calling
    /// [`classify`](Self::classify) on each row — the blocked matmul's
    /// per-element accumulation order is row-count-invariant, so batching
    /// changes throughput, not results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a malformed batch shape and
    /// propagates model failures.
    pub fn classify_batch(&self, rows: &[f64], width: usize) -> Result<Vec<Verdict>, CoreError> {
        if width == 0 || !rows.len().is_multiple_of(width) {
            return Err(CoreError::Invalid("batch length is not a multiple of the row width"));
        }
        let n = rows.len() / width;
        if n == 0 {
            return Ok(Vec::new());
        }
        let flags = self.predictor.is_adversarial_batch(rows);
        let mut clean = Vec::with_capacity(rows.len());
        for (i, &flagged) in flags.iter().enumerate() {
            let row = &rows[i * width..(i + 1) * width];
            if flagged {
                self.quarantine_push(row)?;
            } else {
                clean.extend_from_slice(row);
            }
        }
        let routed = if clean.is_empty() {
            Vec::new()
        } else {
            self.controller
                .predict_batch(&self.models, &clean, width)
                .map_err(CoreError::from)?
        };
        let mut routed = routed.into_iter();
        Ok(flags
            .iter()
            .map(|&flagged| {
                if flagged {
                    Verdict::AdversarialAttack
                } else if routed.next().expect("one verdict per unflagged row") {
                    Verdict::MalwareAttack
                } else {
                    Verdict::Benign
                }
            })
            .collect())
    }

    /// Builds a per-shard [`InferArena`] sized for `width`-wide rows in
    /// batches of up to `max_batch`, and reserves quarantine headroom
    /// (ring cap + one batch) so steady-state pushes never reallocate.
    /// Call once at warmup; the returned arena makes
    /// [`classify_into`](Self::classify_into) and
    /// [`classify_batch_into`](Self::classify_batch_into)
    /// allocation-free.
    #[must_use]
    pub fn warmup(&self, width: usize, max_batch: usize) -> InferArena {
        let max_batch = max_batch.max(1);
        {
            let mut guard = self.quarantine_guard();
            let cap = self.quarantine_cap.load(Ordering::Relaxed);
            guard.reserve(cap + max_batch);
        }
        InferArena {
            critic: self.predictor.infer_scratch(max_batch),
            model_scratch: self.models.iter().map(|m| m.make_scratch(max_batch)).collect(),
            values: Vec::with_capacity(max_batch),
            flags: Vec::with_capacity(max_batch),
            clean: Vec::with_capacity(max_batch * width),
            probs: Vec::with_capacity(max_batch),
            routed: Vec::with_capacity(max_batch),
            verdicts: Vec::with_capacity(max_batch),
            max_batch,
        }
    }

    /// [`classify`](Self::classify) through a warmed-up arena: identical
    /// verdict, quarantine behavior and telemetry, zero heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn classify_into(&self, row: &[f64], arena: &mut InferArena) -> Result<Verdict, CoreError> {
        if self.predictor.is_adversarial_with(row, &mut arena.critic) {
            self.quarantine_push(row)?;
            return Ok(Verdict::AdversarialAttack);
        }
        let scratch = &mut arena.model_scratch[self.controller.selected_model()];
        let is_malware = self
            .controller
            .predict_row_with(&self.models, row, scratch)
            .map_err(CoreError::from)?;
        Ok(if is_malware { Verdict::MalwareAttack } else { Verdict::Benign })
    }

    /// [`classify_batch`](Self::classify_batch) through a warmed-up
    /// arena, leaving the verdicts in [`InferArena::verdicts`] (input
    /// order): identical verdicts, quarantine behavior and telemetry,
    /// zero heap allocations for batches within the arena's capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a malformed batch shape and
    /// propagates model failures.
    pub fn classify_batch_into(
        &self,
        rows: &[f64],
        width: usize,
        arena: &mut InferArena,
    ) -> Result<(), CoreError> {
        if width == 0 || !rows.len().is_multiple_of(width) {
            return Err(CoreError::Invalid("batch length is not a multiple of the row width"));
        }
        let n = rows.len() / width;
        arena.verdicts.clear();
        if n == 0 {
            return Ok(());
        }
        self.predictor.is_adversarial_batch_into(
            rows,
            &mut arena.critic,
            &mut arena.values,
            &mut arena.flags,
        );
        arena.clean.clear();
        for (i, &flagged) in arena.flags.iter().enumerate() {
            let row = &rows[i * width..(i + 1) * width];
            if flagged {
                self.quarantine_push(row)?;
            } else {
                arena.clean.extend_from_slice(row);
            }
        }
        arena.routed.clear();
        if !arena.clean.is_empty() {
            self.controller
                .predict_batch_into(
                    &self.models,
                    &arena.clean,
                    width,
                    &mut arena.model_scratch[self.controller.selected_model()],
                    &mut arena.probs,
                    &mut arena.routed,
                )
                .map_err(CoreError::from)?;
        }
        let mut routed = arena.routed.iter();
        for &flagged in &arena.flags {
            arena.verdicts.push(if flagged {
                Verdict::AdversarialAttack
            } else if *routed.next().expect("one verdict per unflagged row") {
                Verdict::MalwareAttack
            } else {
                Verdict::Benign
            });
        }
        Ok(())
    }

    /// Drains the quarantined adversarial samples (labeled
    /// [`Class::Adversarial`]) for the next adversarial-training round.
    #[must_use]
    pub fn take_quarantine(&self) -> Dataset {
        let mut guard = self.quarantine_guard();
        let names = guard.feature_names().to_vec();
        std::mem::replace(&mut guard, Dataset::new(names).expect("non-empty schema"))
    }

    /// Number of currently quarantined samples.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.quarantine_guard().len()
    }

    /// The model the constraint controller routed inference to.
    #[must_use]
    pub fn active_model(&self) -> &dyn Classifier {
        self.models[self.controller.selected_model()].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use crate::framework::Framework;
    use hmd_rl::{ConstraintKind, ControllerConfig, ModelProfile};

    /// End-to-end smoke test on the quick corpus: build every component
    /// and drive the runtime path.
    #[test]
    fn detector_routes_samples() {
        let fw = Framework::new(FrameworkConfig::quick(7));
        let bundle = fw.prepare_data().unwrap();
        let attacks = fw.generate_attacks(&bundle).unwrap();
        let merged = Framework::merged_training_set(&bundle, &attacks).unwrap();
        let predictor = fw.train_predictor(&merged).unwrap();

        let targets = merged.binary_targets(Class::is_attack);
        let mut models = hmd_ml::classical_models();
        for m in &mut models {
            m.fit(&merged, &targets).unwrap();
        }
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| ModelProfile {
                name: m.name().to_owned(),
                latency_ms: 0.01,
                size_bytes: m.size_bytes(),
            })
            .collect();
        let controller = hmd_rl::ConstraintController::train(
            ConstraintKind::BestDetection,
            &models,
            profiles,
            &merged,
            &targets,
            ControllerConfig::default(),
        )
        .unwrap();

        let detector = AdaptiveDetector::new(
            predictor,
            controller,
            models,
            bundle.feature_names.clone(),
        )
        .unwrap();

        // adversarial rows should mostly be flagged and quarantined
        let mut flagged = 0;
        for (row, _) in &attacks.test_result.adversarial {
            if detector.classify(row).unwrap() == Verdict::AdversarialAttack {
                flagged += 1;
            }
        }
        let total = attacks.test_result.adversarial.len();
        assert!(
            flagged * 2 > total,
            "only {flagged}/{total} adversarial rows flagged"
        );
        assert_eq!(detector.quarantined(), flagged);

        // quarantine drains with adversarial labels
        let q = detector.take_quarantine();
        assert_eq!(q.len(), flagged);
        assert!(q.labels().iter().all(|&l| l == Class::Adversarial));
        assert_eq!(detector.quarantined(), 0);

        // benign rows mostly pass
        let benign = bundle.test.filter(|c| c == Class::Benign);
        let mut benign_ok = 0;
        for (row, _) in &benign {
            if detector.classify(row).unwrap() == Verdict::Benign {
                benign_ok += 1;
            }
        }
        // quick-corpus models are weak; this is a routing smoke test, so
        // only require a clear majority of benign rows to pass through
        assert!(
            benign_ok * 2 > benign.len(),
            "only {benign_ok}/{} benign rows passed",
            benign.len()
        );

        // batched classification matches the scalar path row-for-row on
        // a mixed benign/adversarial batch
        let width = benign.n_features();
        let mut flat = Vec::new();
        let mut expect = Vec::new();
        for (row, _) in benign.iter().take(9) {
            flat.extend_from_slice(row);
            expect.push(detector.classify(row).unwrap());
        }
        for (row, _) in attacks.test_result.adversarial.iter().take(7) {
            flat.extend_from_slice(row);
            expect.push(detector.classify(row).unwrap());
        }
        assert_eq!(detector.classify_batch(&flat, width).unwrap(), expect);
        assert!(detector.classify_batch(&flat, 0).is_err());
        assert!(detector.classify_batch(&flat[..flat.len() - 1], width).is_err() || width == 1);

        // the arena paths reproduce the allocating paths verdict-for-verdict
        let mut arena = detector.warmup(width, 16);
        assert_eq!(arena.max_batch(), 16);
        detector.classify_batch_into(&flat, width, &mut arena).unwrap();
        assert_eq!(arena.verdicts(), expect.as_slice());
        for (row, _) in benign.iter().take(4) {
            assert_eq!(
                detector.classify_into(row, &mut arena).unwrap(),
                detector.classify(row).unwrap()
            );
        }
        for (row, _) in attacks.test_result.adversarial.iter().take(4) {
            assert_eq!(
                detector.classify_into(row, &mut arena).unwrap(),
                detector.classify(row).unwrap()
            );
        }
        assert!(detector.classify_batch_into(&flat, 0, &mut arena).is_err());

        // the explanation path scores every zoo model, reproduces the
        // serving verdict, and never touches the quarantine
        let n_models = detector.models().len();
        for (row, _) in benign.iter().take(4).chain(attacks.test_result.adversarial.iter().take(4))
        {
            let before = detector.quarantined();
            let trace = detector.classify_explain(row).unwrap();
            assert_eq!(detector.quarantined(), before, "explain must be read-only");
            assert_eq!(trace.verdict, detector.classify(row).unwrap());
            assert_eq!(trace.model_probs.len(), n_models);
            assert_eq!(trace.flagged, trace.adv_score > trace.adv_threshold);
            assert_eq!(trace.flagged, trace.verdict == Verdict::AdversarialAttack);
            assert!(trace.selected_model < n_models);
        }

        // ring eviction: past the cap the buffer keeps the newest rows
        // and counts evictions, instead of dropping wholesale
        let flagged_rows: Vec<&[f64]> = attacks
            .test_result
            .adversarial
            .iter()
            .map(|(row, _)| row)
            .filter(|row| detector.classify(row).unwrap() == Verdict::AdversarialAttack)
            .take(5)
            .collect();
        assert!(flagged_rows.len() >= 3, "need a few flagged rows to exercise eviction");
        let _ = detector.take_quarantine();
        detector.set_quarantine_cap(2);
        let evicted_before = detector.quarantine_evicted();
        for row in &flagged_rows {
            detector.classify(row).unwrap();
        }
        assert_eq!(detector.quarantined(), 2);
        assert_eq!(
            detector.quarantine_evicted() - evicted_before,
            flagged_rows.len() as u64 - 2
        );
        // the retained rows are the two newest, in insertion order
        let kept = detector.take_quarantine();
        assert_eq!(kept.row(0).unwrap(), flagged_rows[flagged_rows.len() - 2]);
        assert_eq!(kept.row(1).unwrap(), flagged_rows[flagged_rows.len() - 1]);

        // lowering the cap below the current fill evicts immediately —
        // the ring must never sit over-cap waiting for the next push
        detector.set_quarantine_cap(0);
        for row in &flagged_rows {
            detector.classify(row).unwrap();
        }
        assert_eq!(detector.quarantined(), flagged_rows.len());
        let evicted_before = detector.quarantine_evicted();
        detector.set_quarantine_cap(1);
        assert_eq!(detector.quarantined(), 1, "shrink must evict at once");
        assert_eq!(
            detector.quarantine_evicted() - evicted_before,
            flagged_rows.len() as u64 - 1
        );
        assert_eq!(detector.quarantine_cap(), 1);
        let kept = detector.take_quarantine();
        assert_eq!(kept.row(0).unwrap(), flagged_rows[flagged_rows.len() - 1]);

        // the refreshed-generation constructor shares the predictor and
        // reproduces the original verdicts
        let rebuilt = AdaptiveDetector::with_shared_predictor(
            detector.predictor_handle(),
            detector.controller().clone(),
            hmd_ml::classical_models(),
            bundle.feature_names.clone(),
        );
        assert!(rebuilt.is_ok(), "shared-predictor assembly failed");
    }

    #[test]
    fn verdict_attack_classification() {
        assert!(Verdict::AdversarialAttack.is_attack());
        assert!(Verdict::MalwareAttack.is_attack());
        assert!(!Verdict::Benign.is_attack());
    }
}
