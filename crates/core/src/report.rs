//! Report types produced by the framework phases — the raw material for
//! every table and figure of the paper.

use hmd_ml::BinaryMetrics;
use hmd_util::impl_to_json;

/// One model's metric row in one scenario (a row of Table 2).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioMetrics {
    /// Model name (RF, DT, LR, MLP, LightGBM, NN).
    pub model: String,
    /// The full metric suite.
    pub metrics: BinaryMetrics,
}

impl_to_json!(struct ScenarioMetrics { model, metrics });

/// The adversarial predictor's evaluation (paper §3, "Adversarial
/// Predictor's Performance" + Figure 3(b)).
#[derive(Clone, Debug, PartialEq)]
pub struct PredictorReport {
    /// Accuracy of the adversarial/non-adversarial decision.
    pub accuracy: f64,
    /// F1 of the adversarial class.
    pub f1: f64,
    /// Precision of the adversarial class.
    pub precision: f64,
    /// Recall of the adversarial class.
    pub recall: f64,
    /// Per-sample `(is_adversarial_truth, feedback_reward)` trace over
    /// the inference stream — Figure 3(b)'s series.
    pub reward_trace: Vec<(bool, f64)>,
}

impl_to_json!(struct PredictorReport { accuracy, f1, precision, recall, reward_trace });

/// One constraint agent's row in Figure 4(a).
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerReport {
    /// Agent label.
    pub agent: String,
    /// Name of the model the agent converged on.
    pub selected_model: String,
    /// Detection metrics of the deployed agent on the merged test set.
    pub metrics: BinaryMetrics,
    /// Measured single-sample latency of the selected model (ms).
    pub latency_ms: f64,
    /// Size of the selected model in bytes.
    pub size_bytes: usize,
}

impl_to_json!(struct ControllerReport {
    agent, selected_model, metrics, latency_ms, size_bytes
});

impl ControllerReport {
    /// The paper's "Overhead" proxy: latency × memory.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.latency_ms * self.size_bytes as f64
    }

    /// The paper's "Efficiency Metric": F1 / (latency × memory).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let o = self.overhead();
        if o <= 0.0 {
            0.0
        } else {
            self.metrics.f1 / o
        }
    }
}

/// The complete output of a framework run — everything Tables 1–2 and
/// Figures 2–4 need.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameworkReport {
    /// Scenario (a): regular malware detection.
    pub baseline: Vec<ScenarioMetrics>,
    /// Scenario (b): detection under adversarial attack.
    pub attacked: Vec<ScenarioMetrics>,
    /// Scenario (c): after adversarial training.
    pub defended: Vec<ScenarioMetrics>,
    /// LowProFool success rate against the imperceptibility evaluator.
    pub attack_success_rate: f64,
    /// Mean weighted perturbation of successful attacks.
    pub mean_perturbation: f64,
    /// Adversarial-predictor evaluation.
    pub predictor: PredictorReport,
    /// The three constraint agents.
    pub controllers: Vec<ControllerReport>,
    /// The feature names the pipeline selected.
    pub selected_features: Vec<String>,
}

impl_to_json!(struct FrameworkReport {
    baseline, attacked, defended, attack_success_rate, mean_perturbation,
    predictor, controllers, selected_features
});

impl FrameworkReport {
    /// Metrics of one model in one scenario, if present.
    #[must_use]
    pub fn metrics_for<'a>(
        scenario: &'a [ScenarioMetrics],
        model: &str,
    ) -> Option<&'a BinaryMetrics> {
        scenario.iter().find(|s| s.model == model).map(|s| &s.metrics)
    }

    /// The best defended F1 — the paper's headline "96.1% detection rate
    /// for the top-performing adaptive malware detector".
    #[must_use]
    pub fn best_defended_f1(&self) -> f64 {
        self.defended
            .iter()
            .map(|s| s.metrics.f1)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_and_overhead() {
        let r = ControllerReport {
            agent: "Agent 1".into(),
            selected_model: "LR".into(),
            metrics: BinaryMetrics { f1: 0.9, ..Default::default() },
            latency_ms: 0.002,
            size_bytes: 1000,
        };
        assert!((r.overhead() - 2.0).abs() < 1e-12);
        assert!((r.efficiency() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn efficiency_guards_zero_overhead() {
        let r = ControllerReport {
            agent: "a".into(),
            selected_model: "m".into(),
            metrics: BinaryMetrics::default(),
            latency_ms: 0.0,
            size_bytes: 0,
        };
        assert_eq!(r.efficiency(), 0.0);
    }

    #[test]
    fn metrics_lookup_by_model() {
        let rows = vec![
            ScenarioMetrics {
                model: "RF".into(),
                metrics: BinaryMetrics { f1: 0.5, ..Default::default() },
            },
            ScenarioMetrics {
                model: "MLP".into(),
                metrics: BinaryMetrics { f1: 0.9, ..Default::default() },
            },
        ];
        assert!((FrameworkReport::metrics_for(&rows, "MLP").unwrap().f1 - 0.9).abs() < 1e-12);
        assert!(FrameworkReport::metrics_for(&rows, "nope").is_none());
    }
}
