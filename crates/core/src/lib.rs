//! The proactive, adversarial-resilient hardware malware detection
//! framework — the paper's primary contribution, assembled from the
//! workspace substrates.
//!
//! [`Framework`] orchestrates the multi-phased pipeline of Figure 1:
//!
//! 1. simulated Perf/LXC corpus collection + MI feature engineering
//!    (`hmd-sim`, `hmd-tabular`);
//! 2. baseline detection with six ML models (`hmd-ml`);
//! 3. LowProFool adversarial attack generation (`hmd-adversarial`);
//! 4. A2C adversarial attack prediction from unlabeled data (`hmd-rl`);
//! 5. adversarial training on the merged `[Malware, Benign, Adversarial]`
//!    database;
//! 6. UCB constraint-aware model scheduling (`hmd-rl`);
//!
//! plus [`AdaptiveDetector`], the deployed run-time composition, and
//! report types carrying everything Tables 1–2 and Figures 2–4 need.
//!
//! # Example
//!
//! ```no_run
//! use hmd_core::{Framework, FrameworkConfig};
//!
//! # fn main() -> Result<(), hmd_core::CoreError> {
//! let framework = Framework::new(FrameworkConfig::quick(42));
//! let report = framework.run()?;
//! println!("attack success: {:.0}%", report.attack_success_rate * 100.0);
//! println!("best defended F1: {:.3}", report.best_defended_f1());
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod detector;
pub mod framework;
pub mod report;

mod error;

pub use config::{FeatureSelection, FrameworkConfig};
pub use detector::{AdaptiveDetector, ExplainTrace, InferArena, Verdict};
pub use error::CoreError;
pub use framework::{
    AttackArtifacts, DataBundle, Framework, ServingArtifacts, PAPER_TOP4, SERVING_BASELINE,
};
pub use report::{ControllerReport, FrameworkReport, PredictorReport, ScenarioMetrics};
