//! Mutual-information estimation and MI-based feature selection.
//!
//! The paper (§2.1) ranks the 30+ collected hardware events by the mutual
//! information `I(X; Y) = H(X) + H(Y) − H(X, Y)` between each feature `X`
//! and the class label `Y`, then keeps the top four (LLC-load-misses,
//! LLC-loads, cache-misses, cpu/cache-misses). Two estimators are
//! provided:
//!
//! * [`mutual_information`] — equal-width histogram estimator (fast, the
//!   pipeline default);
//! * [`mutual_information_knn`] — the Ross (2014) k-nearest-neighbour
//!   estimator for continuous features and discrete labels, the estimator
//!   behind scikit-learn's `mutual_info_classif` which the paper uses.

use hmd_util::par;

use crate::stats::entropy_from_counts;
use crate::{Dataset, TabularError};

/// Histogram-based MI (nats) between a continuous feature and discrete
/// labels.
///
/// The feature is discretized into `bins` equal-width cells over its
/// observed range; constant features yield `0.0`.
///
/// # Errors
///
/// Returns [`TabularError::InvalidArgument`] for `bins == 0` or mismatched
/// lengths, and [`TabularError::EmptyDataset`] for empty input.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// // Feature perfectly determines the label → MI = H(Y) = ln 2.
/// let x = [0.0, 0.1, 0.9, 1.0];
/// let y = [0, 0, 1, 1];
/// let mi = hmd_tabular::mutual_information(&x, &y, 2)?;
/// assert!((mi - (2.0f64).ln()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn mutual_information(x: &[f64], labels: &[usize], bins: usize) -> Result<f64, TabularError> {
    if bins == 0 {
        return Err(TabularError::InvalidArgument("bins must be positive"));
    }
    if x.len() != labels.len() {
        return Err(TabularError::InvalidArgument("feature and label lengths differ"));
    }
    if x.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    let (lo, hi) = crate::stats::min_max(x).ok_or(TabularError::EmptyDataset)?;
    if (hi - lo).abs() <= f64::EPSILON {
        return Ok(0.0);
    }
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let width = (hi - lo) / bins as f64;
    let mut joint = vec![0usize; bins * n_classes];
    let mut x_counts = vec![0usize; bins];
    let mut y_counts = vec![0usize; n_classes];
    for (&v, &c) in x.iter().zip(labels) {
        let mut b = ((v - lo) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        joint[b * n_classes + c] += 1;
        x_counts[b] += 1;
        y_counts[c] += 1;
    }
    let hx = entropy_from_counts(&x_counts);
    let hy = entropy_from_counts(&y_counts);
    let hxy = entropy_from_counts(&joint);
    Ok((hx + hy - hxy).max(0.0))
}

/// Digamma function ψ(x) for positive arguments, via the recurrence
/// ψ(x) = ψ(x+1) − 1/x and the asymptotic expansion for large x.
#[must_use]
fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0);
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

/// Ross (2014) k-NN MI estimator (nats) for a continuous feature and
/// discrete labels:
///
/// `I(X;Y) ≈ ψ(N) + ψ(k) − ⟨ψ(N_y)⟩ − ⟨ψ(m)⟩`
///
/// where `N_y` is the number of samples sharing sample *i*'s label and `m`
/// counts samples of *any* label within *i*'s distance to its k-th
/// same-label neighbour. Ties are broken by a deterministic half-open
/// interval count; estimates are clamped at zero.
///
/// # Errors
///
/// Returns [`TabularError::InvalidArgument`] for `k == 0`, mismatched
/// lengths, or when some class has ≤ `k` samples, and
/// [`TabularError::EmptyDataset`] for empty input.
pub fn mutual_information_knn(
    x: &[f64],
    labels: &[usize],
    k: usize,
) -> Result<f64, TabularError> {
    if k == 0 {
        return Err(TabularError::InvalidArgument("k must be positive"));
    }
    if x.len() != labels.len() {
        return Err(TabularError::InvalidArgument("feature and label lengths differ"));
    }
    if x.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    let n = x.len();
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut class_counts = vec![0usize; n_classes];
    for &c in labels {
        class_counts[c] += 1;
    }
    if class_counts.iter().any(|&c| c > 0 && c <= k) {
        return Err(TabularError::InvalidArgument("every present class needs more than k samples"));
    }

    // Sort all points once; per-class sorted views for neighbour queries.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let sorted_x: Vec<f64> = order.iter().map(|&i| x[i]).collect();
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); n_classes];
    for &i in &order {
        per_class[labels[i]].push(x[i]);
    }

    let mut psi_m_sum = 0.0;
    let mut psi_ny_sum = 0.0;
    for i in 0..n {
        let xi = x[i];
        let same = &per_class[labels[i]];
        // distance to the k-th nearest same-label neighbour (excluding self)
        let pos = same.partition_point(|&v| v < xi);
        let mut lo = pos;
        let mut hi = pos; // scan outward collecting k+1 closest incl. self
        let mut taken = 0usize;
        let mut radius = 0.0f64;
        while taken < k + 1 {
            let left = lo.checked_sub(1).map(|j| (xi - same[j]).abs());
            let right = if hi < same.len() { Some((same[hi] - xi).abs()) } else { None };
            match (left, right) {
                (Some(l), Some(r)) if l <= r => {
                    radius = l;
                    lo -= 1;
                }
                (Some(_), Some(r)) => {
                    radius = r;
                    hi += 1;
                }
                (Some(l), None) => {
                    radius = l;
                    lo -= 1;
                }
                (None, Some(r)) => {
                    radius = r;
                    hi += 1;
                }
                (None, None) => break,
            }
            taken += 1;
        }
        // m = number of points (any label) strictly within radius, plus
        // boundary points on one side (deterministic half-open rule).
        let lo_all = sorted_x.partition_point(|&v| v < xi - radius);
        let hi_all = sorted_x.partition_point(|&v| v <= xi + radius);
        let m = (hi_all - lo_all).saturating_sub(1).max(1); // exclude self
        psi_m_sum += digamma(m as f64);
        psi_ny_sum += digamma(class_counts[labels[i]] as f64);
    }
    let mi = digamma(n as f64) + digamma(k as f64)
        - psi_ny_sum / n as f64
        - psi_m_sum / n as f64;
    Ok(mi.max(0.0))
}

/// Ranks every feature of `data` by histogram MI with the class label,
/// highest first. Returns `(feature_index, mi)` pairs.
///
/// Per-feature estimates are independent, so they run in parallel on
/// [`hmd_util::par`] (the paper ranks 30+ hardware events over the full
/// corpus here); results are collected in feature order before the
/// final sort, so ranking is identical at any thread count.
///
/// # Errors
///
/// Propagates estimator errors ([`TabularError::EmptyDataset`], bad bins).
pub fn rank_features_by_mi(
    data: &Dataset,
    bins: usize,
) -> Result<Vec<(usize, f64)>, TabularError> {
    if data.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    let labels: Vec<usize> = data.labels().iter().map(|l| l.id()).collect();
    let features: Vec<usize> = (0..data.n_features()).collect();
    let mut ranked: Vec<(usize, f64)> = par::par_map(&features, |&f| {
        let col = data.column(f)?;
        Ok((f, mutual_information(&col, &labels, bins)?))
    })
    .into_iter()
    .collect::<Result<_, TabularError>>()?;
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(ranked)
}

/// Keeps the `k` features with the highest MI, returning the projected
/// dataset and the selected feature indices (in rank order).
///
/// This reproduces the paper's top-4 HPC selection.
///
/// # Errors
///
/// Propagates ranking errors; `k` is clamped to the number of features.
///
/// # Example
///
/// ```
/// use hmd_tabular::{Class, Dataset, select_top_features};
///
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// let mut d = Dataset::new(vec!["noise".into(), "signal".into()])?;
/// for i in 0..60 {
///     let label = if i % 2 == 0 { Class::Benign } else { Class::Malware };
///     let signal = if label == Class::Benign { 0.0 } else { 10.0 };
///     d.push(&[(i % 7) as f64, signal + (i % 3) as f64 * 0.1], label)?;
/// }
/// let (selected, idx) = select_top_features(&d, 1, 8)?;
/// assert_eq!(idx, vec![1]);
/// assert_eq!(selected.feature_names(), &["signal".to_string()]);
/// # Ok(())
/// # }
/// ```
pub fn select_top_features(
    data: &Dataset,
    k: usize,
    bins: usize,
) -> Result<(Dataset, Vec<usize>), TabularError> {
    let ranked = rank_features_by_mi(data, bins)?;
    let k = k.min(ranked.len()).max(1);
    let indices: Vec<usize> = ranked.iter().take(k).map(|&(f, _)| f).collect();
    let projected = data.select_features(&indices)?;
    Ok((projected, indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Class;
    use hmd_util::rng::prelude::*;

    #[test]
    fn digamma_matches_known_values() {
        // ψ(1) = -γ
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(2) = 1 - γ
        assert!((digamma(2.0) - (1.0 - 0.577_215_664_901_532_9)).abs() < 1e-10);
        // ψ(10) ≈ 2.251752589066721
        assert!((digamma(10.0) - 2.251_752_589_066_721).abs() < 1e-9);
    }

    #[test]
    fn mi_independent_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<f64> = (0..4000).map(|_| rng.random::<f64>()).collect();
        let y: Vec<usize> = (0..4000).map(|_| rng.random_range(0..2)).collect();
        let mi = mutual_information(&x, &y, 16).unwrap();
        assert!(mi < 0.02, "independent MI was {mi}");
    }

    #[test]
    fn mi_deterministic_equals_label_entropy() {
        let x: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let y: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        let mi = mutual_information(&x, &y, 4).unwrap();
        assert!((mi - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn mi_constant_feature_is_zero() {
        let x = vec![3.0; 50];
        let y: Vec<usize> = (0..50).map(|i| i % 2).collect();
        assert_eq!(mutual_information(&x, &y, 8).unwrap(), 0.0);
    }

    #[test]
    fn mi_rejects_bad_args() {
        assert!(mutual_information(&[1.0], &[0], 0).is_err());
        assert!(mutual_information(&[1.0], &[0, 1], 4).is_err());
        assert!(mutual_information(&[], &[], 4).is_err());
    }

    #[test]
    fn knn_mi_detects_dependence() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 600;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            y.push(c);
            x.push(c as f64 * 3.0 + rng.random::<f64>());
        }
        let mi = mutual_information_knn(&x, &y, 3).unwrap();
        assert!(mi > 0.5, "knn MI on separable data was {mi}");
    }

    #[test]
    fn knn_mi_independent_near_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 800;
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let y: Vec<usize> = (0..n).map(|_| rng.random_range(0..2)).collect();
        let mi = mutual_information_knn(&x, &y, 3).unwrap();
        assert!(mi < 0.08, "independent knn MI was {mi}");
    }

    #[test]
    fn knn_mi_validates() {
        assert!(mutual_information_knn(&[1.0, 2.0], &[0, 1], 0).is_err());
        assert!(mutual_information_knn(&[1.0, 2.0], &[0, 1], 1).is_err()); // class size ≤ k
    }

    #[test]
    fn ranking_prefers_informative_feature() {
        let mut d = Dataset::new(vec!["noise".into(), "signal".into()]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..400 {
            let label = if i % 2 == 0 { Class::Benign } else { Class::Malware };
            let signal = if label == Class::Benign { 0.0 } else { 5.0 };
            d.push(&[rng.random::<f64>(), signal + rng.random::<f64>()], label).unwrap();
        }
        let ranked = rank_features_by_mi(&d, 10).unwrap();
        assert_eq!(ranked[0].0, 1);
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn select_top_features_clamps_k() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for i in 0..20 {
            let label = if i % 2 == 0 { Class::Benign } else { Class::Malware };
            d.push(&[i as f64, -(i as f64)], label).unwrap();
        }
        let (sel, idx) = select_top_features(&d, 10, 4).unwrap();
        assert_eq!(sel.n_features(), 2);
        assert_eq!(idx.len(), 2);
    }
}
