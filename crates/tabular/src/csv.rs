//! Plain-text CSV persistence for datasets — lets an expensive corpus
//! campaign be collected once and reused across experiment runs, and
//! makes the data inspectable with standard tooling.
//!
//! Format: a header row of feature names plus a final `label` column;
//! one data row per sample; labels spelled `benign` / `malware` /
//! `adversarial`. Feature names containing commas or quotes are quoted
//! with doubled-quote escaping.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{Class, Dataset, TabularError};

/// Errors produced by CSV (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the CSV content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Dataset-level failure while assembling rows.
    Tabular(TabularError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Parse { line, reason } => write!(f, "csv parse error at line {line}: {reason}"),
            Self::Tabular(e) => write!(f, "tabular error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Tabular(e) => Some(e),
            Self::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<TabularError> for CsvError {
    fn from(e: TabularError) -> Self {
        Self::Tabular(e)
    }
}

fn quote_field(name: &str) -> String {
    if name.contains(',') || name.contains('"') || name.contains('\n') {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_owned()
    }
}

/// Splits one CSV line honoring quoted fields.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if quoted {
        return Err(CsvError::Parse { line: line_no, reason: "unterminated quote".into() });
    }
    fields.push(field);
    Ok(fields)
}

fn label_name(class: Class) -> &'static str {
    match class {
        Class::Benign => "benign",
        Class::Malware => "malware",
        Class::Adversarial => "adversarial",
    }
}

fn parse_label(s: &str, line: usize) -> Result<Class, CsvError> {
    match s {
        "benign" => Ok(Class::Benign),
        "malware" => Ok(Class::Malware),
        "adversarial" => Ok(Class::Adversarial),
        other => Err(CsvError::Parse { line, reason: format!("unknown label {other:?}") }),
    }
}

/// Writes `data` as CSV. A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Example
///
/// ```
/// use hmd_tabular::csv::{read_csv, write_csv};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Dataset::new(vec!["llc-misses".into()])?;
/// d.push(&[42.0], Class::Malware)?;
/// let mut buffer = Vec::new();
/// write_csv(&d, &mut buffer)?;
/// let restored = read_csv(buffer.as_slice())?;
/// assert_eq!(restored, d);
/// # Ok(())
/// # }
/// ```
pub fn write_csv<W: Write>(data: &Dataset, mut writer: W) -> Result<(), CsvError> {
    let header: Vec<String> = data
        .feature_names()
        .iter()
        .map(|n| quote_field(n))
        .chain(std::iter::once("label".to_owned()))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for (row, label) in data {
        let mut line = String::new();
        for v in row {
            // RFC-style shortest roundtrip formatting via Rust's default
            line.push_str(&format!("{v}"));
            line.push(',');
        }
        line.push_str(label_name(label));
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

/// Reads a dataset previously written by [`write_csv`]. A `&mut`
/// reference can be passed for `reader`.
///
/// # Errors
///
/// Returns parse errors with line numbers, and propagates I/O failures.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, CsvError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(CsvError::Parse { line: 1, reason: "empty input".into() });
    };
    let header = split_line(&header?, 1)?;
    if header.len() < 2 || header.last().map(String::as_str) != Some("label") {
        return Err(CsvError::Parse {
            line: 1,
            reason: "header must end with a `label` column".into(),
        });
    }
    let feature_names: Vec<String> = header[..header.len() - 1].to_vec();
    let n_features = feature_names.len();
    let mut data = Dataset::new(feature_names)?;
    let mut buf = vec![0.0; n_features];
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line, line_no)?;
        if fields.len() != n_features + 1 {
            return Err(CsvError::Parse {
                line: line_no,
                reason: format!("expected {} fields, found {}", n_features + 1, fields.len()),
            });
        }
        for (dst, field) in buf.iter_mut().zip(&fields) {
            *dst = field.parse().map_err(|e| CsvError::Parse {
                line: line_no,
                reason: format!("bad number {field:?}: {e}"),
            })?;
        }
        let label = parse_label(&fields[n_features], line_no)?;
        data.push(&buf, label)?;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "weird,name".into()]).unwrap();
        d.push(&[1.5, -2.25], Class::Benign).unwrap();
        d.push(&[0.0, 1e-9], Class::Malware).unwrap();
        d.push(&[123_456.75, 3.0], Class::Adversarial).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let restored = read_csv(buf.as_slice()).unwrap();
        assert_eq!(restored, d);
    }

    #[test]
    fn commas_in_names_are_quoted() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("a,\"weird,name\",label"));
    }

    #[test]
    fn rejects_missing_label_column() {
        let err = read_csv("a,b\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_numbers_with_line_numbers() {
        let err = read_csv("a,label\n1.0,benign\nxyz,malware\n".as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("xyz"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_labels() {
        let err = read_csv("a,label\n1.0,suspicious\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_field_count_mismatch() {
        let err = read_csv("a,b,label\n1.0,benign\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn skips_blank_lines() {
        let d = read_csv("a,label\n1.0,benign\n\n2.0,malware\n".as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn quoted_names_roundtrip_with_escapes() {
        let mut d = Dataset::new(vec!["say \"hi\"".into()]).unwrap();
        d.push(&[1.0], Class::Benign).unwrap();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let restored = read_csv(buf.as_slice()).unwrap();
        assert_eq!(restored.feature_names(), d.feature_names());
    }
}
