//! Tabular-data substrate for hardware malware detection.
//!
//! Hardware Performance Counter (HPC) readings form *tabular* data: each
//! sample is a short, fixed-length vector of event counts, and each sample
//! carries a class label ([`Class::Benign`], [`Class::Malware`], or — once
//! the adversarial predictor has flagged it — [`Class::Adversarial`]).
//!
//! This crate provides everything the rest of the pipeline needs to handle
//! such data, mirroring the feature-engineering stage of the paper
//! (Section 2.1):
//!
//! * [`Dataset`] — an owned, row-major feature matrix with labels and
//!   feature names;
//! * [`StandardScaler`] and [`MinMaxClipper`] — the standard-scaling and
//!   clipping steps of the paper's pre-processing;
//! * [`mi`] — mutual-information estimators and MI-based feature ranking
//!   (the paper selects the top-4 HPC events by MI);
//! * [`split`] — stratified train/test splitting (80:20 in the paper);
//! * [`stats`] — small statistics helpers (mean, variance, entropy,
//!   Pearson correlation) shared across crates.
//!
//! # Example
//!
//! ```
//! use hmd_tabular::{Class, Dataset, StandardScaler};
//! use hmd_tabular::split::stratified_split;
//! use hmd_util::rng::prelude::*;
//!
//! # fn main() -> Result<(), hmd_tabular::TabularError> {
//! let mut data = Dataset::new(vec!["llc-load-misses".into(), "llc-loads".into()])?;
//! for i in 0..100 {
//!     let x = i as f64;
//!     let class = if i % 2 == 0 { Class::Benign } else { Class::Malware };
//!     data.push(&[x, 2.0 * x], class)?;
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let (train, test) = stratified_split(&data, 0.2, &mut rng)?;
//! let scaler = StandardScaler::fit(&train)?;
//! let train = scaler.transform(&train)?;
//! assert_eq!(train.len() + test.len(), 100);
//! # Ok(())
//! # }
//! ```

pub mod csv;
pub mod dataset;
pub mod mi;
pub mod scaler;
pub mod split;
pub mod stats;

mod error;

pub use csv::{read_csv, write_csv, CsvError};
pub use dataset::{Class, Dataset};
pub use error::TabularError;
pub use mi::{mutual_information, rank_features_by_mi, select_top_features};
pub use scaler::{MinMaxClipper, StandardScaler};
