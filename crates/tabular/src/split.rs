//! Stratified train/test splitting.

use hmd_util::rng::prelude::*;

use crate::{Class, Dataset, TabularError};

/// Splits `data` into `(train, test)` with `test_fraction` of each class
/// going to the test side, after a seeded shuffle.
///
/// The paper uses an 80:20 train/test split (with the training side split
/// 80:20 again into train/validation) — call this twice to reproduce that.
///
/// # Errors
///
/// * [`TabularError::EmptyDataset`] for empty input;
/// * [`TabularError::InvalidFraction`] unless `0 < test_fraction < 1`;
/// * [`TabularError::DegenerateSplit`] if some class would end up with an
///   empty train or test side.
///
/// # Example
///
/// ```
/// use hmd_tabular::{Class, Dataset};
/// use hmd_tabular::split::stratified_split;
/// use hmd_util::rng::prelude::*;
///
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// let mut d = Dataset::new(vec!["f".into()])?;
/// for i in 0..50 {
///     d.push(&[i as f64], Class::Benign)?;
///     d.push(&[-(i as f64)], Class::Malware)?;
/// }
/// let mut rng = StdRng::seed_from_u64(1);
/// let (train, test) = stratified_split(&d, 0.2, &mut rng)?;
/// assert_eq!(train.len(), 80);
/// assert_eq!(test.len(), 20);
/// # Ok(())
/// # }
/// ```
pub fn stratified_split<R: Rng + ?Sized>(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Dataset, Dataset), TabularError> {
    if data.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(TabularError::InvalidFraction(test_fraction));
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in Class::ALL {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels()[i] == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        members.shuffle(rng);
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        if n_test == 0 || n_test == members.len() {
            return Err(TabularError::DegenerateSplit);
        }
        test_idx.extend_from_slice(&members[..n_test]);
        train_idx.extend_from_slice(&members[n_test..]);
    }
    train_idx.shuffle(rng);
    test_idx.shuffle(rng);
    Ok((data.subset(&train_idx)?, data.subset(&test_idx)?))
}

/// Splits `data` into `folds` stratified folds for cross-validation,
/// returning per-fold `(train, test)` pairs.
///
/// # Errors
///
/// * [`TabularError::InvalidArgument`] for fewer than two folds;
/// * [`TabularError::EmptyDataset`] for empty input;
/// * [`TabularError::DegenerateSplit`] if a class has fewer samples than
///   folds.
pub fn stratified_k_fold<R: Rng + ?Sized>(
    data: &Dataset,
    folds: usize,
    rng: &mut R,
) -> Result<Vec<(Dataset, Dataset)>, TabularError> {
    if folds < 2 {
        return Err(TabularError::InvalidArgument("need at least two folds"));
    }
    if data.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    let mut fold_members: Vec<Vec<usize>> = vec![Vec::new(); folds];
    for class in Class::ALL {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels()[i] == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        if members.len() < folds {
            return Err(TabularError::DegenerateSplit);
        }
        members.shuffle(rng);
        for (i, idx) in members.into_iter().enumerate() {
            fold_members[i % folds].push(idx);
        }
    }
    let mut out = Vec::with_capacity(folds);
    for test_fold in 0..folds {
        let test = data.subset(&fold_members[test_fold])?;
        let train_idx: Vec<usize> = fold_members
            .iter()
            .enumerate()
            .filter(|&(f, _)| f != test_fold)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        out.push((data.subset(&train_idx)?, test));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n_per_class: usize) -> Dataset {
        let mut d = Dataset::new(vec!["f".into()]).unwrap();
        for i in 0..n_per_class {
            d.push(&[i as f64], Class::Benign).unwrap();
            d.push(&[100.0 + i as f64], Class::Malware).unwrap();
        }
        d
    }

    #[test]
    fn split_preserves_class_ratio() {
        let d = data(50);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = stratified_split(&d, 0.2, &mut rng).unwrap();
        assert_eq!(test.class_counts()[&Class::Benign], 10);
        assert_eq!(test.class_counts()[&Class::Malware], 10);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = data(30);
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = stratified_split(&d, 0.25, &mut rng).unwrap();
        let mut all: Vec<f64> = train.column(0).unwrap();
        all.extend(test.column(0).unwrap());
        all.sort_by(f64::total_cmp);
        let mut expected = d.column(0).unwrap();
        expected.sort_by(f64::total_cmp);
        assert_eq!(all, expected);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = data(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            stratified_split(&d, 0.0, &mut rng),
            Err(TabularError::InvalidFraction(_))
        ));
        assert!(matches!(
            stratified_split(&d, 1.0, &mut rng),
            Err(TabularError::InvalidFraction(_))
        ));
    }

    #[test]
    fn split_rejects_degenerate() {
        let mut d = Dataset::new(vec!["f".into()]).unwrap();
        d.push(&[1.0], Class::Benign).unwrap();
        d.push(&[2.0], Class::Malware).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            stratified_split(&d, 0.2, &mut rng).unwrap_err(),
            TabularError::DegenerateSplit
        );
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let d = data(20);
        let mut rng = StdRng::seed_from_u64(4);
        let folds = stratified_k_fold(&d, 4, &mut rng).unwrap();
        assert_eq!(folds.len(), 4);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_test, d.len());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
        }
    }

    #[test]
    fn k_fold_validates_args() {
        let d = data(20);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(stratified_k_fold(&d, 1, &mut rng).is_err());
        let tiny = data(2);
        assert!(stratified_k_fold(&tiny, 4, &mut rng).is_err());
    }
}
