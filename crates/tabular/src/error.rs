use std::error::Error;
use std::fmt;

/// Errors produced by tabular-data operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TabularError {
    /// A row had a different number of features than the dataset expects.
    DimensionMismatch {
        /// Number of features the dataset was created with.
        expected: usize,
        /// Number of features in the offending row.
        actual: usize,
    },
    /// The operation requires a non-empty dataset.
    EmptyDataset,
    /// A dataset was created with no feature columns.
    NoFeatures,
    /// A feature index was out of range.
    FeatureIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of features available.
        n_features: usize,
    },
    /// A sample index was out of range.
    SampleIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of samples available.
        n_samples: usize,
    },
    /// A fraction parameter was outside the open interval (0, 1).
    InvalidFraction(f64),
    /// A split would leave one side without samples of some class.
    DegenerateSplit,
    /// Two datasets with incompatible schemas were combined.
    SchemaMismatch,
    /// A scaler or selector was applied before being fitted, or to data of
    /// the wrong width.
    NotFitted,
    /// A numeric argument was invalid (e.g. zero histogram bins).
    InvalidArgument(&'static str),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "row has {actual} features, dataset expects {expected}")
            }
            Self::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            Self::NoFeatures => write!(f, "dataset must have at least one feature column"),
            Self::FeatureIndexOutOfRange { index, n_features } => {
                write!(f, "feature index {index} out of range for {n_features} features")
            }
            Self::SampleIndexOutOfRange { index, n_samples } => {
                write!(f, "sample index {index} out of range for {n_samples} samples")
            }
            Self::InvalidFraction(v) => {
                write!(f, "fraction {v} must lie strictly between 0 and 1")
            }
            Self::DegenerateSplit => {
                write!(f, "split would leave a side without samples of some class")
            }
            Self::SchemaMismatch => write!(f, "datasets have incompatible feature schemas"),
            Self::NotFitted => write!(f, "transformer used before fitting or on wrong width"),
            Self::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for TabularError {}
