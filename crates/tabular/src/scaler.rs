//! Feature scaling and clipping transformers.

use hmd_util::impl_json;


use crate::stats;
use crate::{Dataset, TabularError};

/// Per-feature standardization: `x' = (x - mean) / std`.
///
/// Mirrors the "standard scaling" step of the paper's feature engineering
/// (§2.1). Features with zero variance pass through unchanged (divisor 1).
///
/// # Example
///
/// ```
/// use hmd_tabular::{Class, Dataset, StandardScaler};
///
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// let mut d = Dataset::new(vec!["e".into()])?;
/// d.push(&[10.0], Class::Benign)?;
/// d.push(&[20.0], Class::Malware)?;
/// let scaler = StandardScaler::fit(&d)?;
/// let t = scaler.transform(&d)?;
/// assert!((t.row(0)?[0] + 1.0).abs() < 1e-12);
/// assert!((t.row(1)?[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl_json!(struct StandardScaler { means, stds });

impl StandardScaler {
    /// Fits per-feature mean and standard deviation on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::EmptyDataset`] when `data` has no rows.
    pub fn fit(data: &Dataset) -> Result<Self, TabularError> {
        if data.is_empty() {
            return Err(TabularError::EmptyDataset);
        }
        let mut means = Vec::with_capacity(data.n_features());
        let mut stds = Vec::with_capacity(data.n_features());
        for f in 0..data.n_features() {
            let col = data.column(f)?;
            means.push(stats::mean(&col));
            let s = stats::std_dev(&col);
            stds.push(if s <= f64::EPSILON { 1.0 } else { s });
        }
        Ok(Self { means, stds })
    }

    /// Number of features this scaler was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one row in place.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::NotFitted`] if `row` has the wrong width.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<(), TabularError> {
        if row.len() != self.means.len() {
            return Err(TabularError::NotFitted);
        }
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
        Ok(())
    }

    /// Undoes [`Self::transform_row`] on one row in place.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::NotFitted`] if `row` has the wrong width.
    pub fn inverse_transform_row(&self, row: &mut [f64]) -> Result<(), TabularError> {
        if row.len() != self.means.len() {
            return Err(TabularError::NotFitted);
        }
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = *x * s + m;
        }
        Ok(())
    }

    /// Returns a standardized copy of a whole dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::NotFitted`] on a feature-width mismatch.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset, TabularError> {
        if data.n_features() != self.means.len() {
            return Err(TabularError::NotFitted);
        }
        let mut out = Dataset::new(data.feature_names().to_vec())?;
        let mut buf = vec![0.0; data.n_features()];
        for (row, label) in data {
            buf.copy_from_slice(row);
            self.transform_row(&mut buf)?;
            out.push(&buf, label)?;
        }
        Ok(out)
    }

    /// Fitted per-feature means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-feature standard deviations (zero-variance features are
    /// reported as `1.0`).
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Per-feature min/max clipping.
///
/// Algorithm 1 of the paper clips perturbed HPC vectors to the observed
/// min/max of the legitimate malware data, keeping adversarial samples
/// inside the physically plausible range of counter readings.
///
/// # Example
///
/// ```
/// use hmd_tabular::{Class, Dataset, MinMaxClipper};
///
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// let mut d = Dataset::new(vec!["e".into()])?;
/// d.push(&[1.0], Class::Malware)?;
/// d.push(&[5.0], Class::Malware)?;
/// let clipper = MinMaxClipper::fit(&d)?;
/// let mut row = [9.0];
/// clipper.clip_row(&mut row)?;
/// assert_eq!(row, [5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MinMaxClipper {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl_json!(struct MinMaxClipper { mins, maxs });

impl MinMaxClipper {
    /// Fits per-feature bounds on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::EmptyDataset`] when `data` has no rows.
    pub fn fit(data: &Dataset) -> Result<Self, TabularError> {
        if data.is_empty() {
            return Err(TabularError::EmptyDataset);
        }
        let mut mins = Vec::with_capacity(data.n_features());
        let mut maxs = Vec::with_capacity(data.n_features());
        for f in 0..data.n_features() {
            let col = data.column(f)?;
            let (lo, hi) = stats::min_max(&col).ok_or(TabularError::EmptyDataset)?;
            mins.push(lo);
            maxs.push(hi);
        }
        Ok(Self { mins, maxs })
    }

    /// Builds a clipper from explicit bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::InvalidArgument`] if lengths differ, are
    /// empty, or any `min > max`.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Result<Self, TabularError> {
        if mins.is_empty() || mins.len() != maxs.len() {
            return Err(TabularError::InvalidArgument("bounds must be equal-length, non-empty"));
        }
        if mins.iter().zip(&maxs).any(|(lo, hi)| lo > hi) {
            return Err(TabularError::InvalidArgument("min bound exceeds max bound"));
        }
        Ok(Self { mins, maxs })
    }

    /// Clips one row in place to the fitted bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::NotFitted`] if `row` has the wrong width.
    pub fn clip_row(&self, row: &mut [f64]) -> Result<(), TabularError> {
        if row.len() != self.mins.len() {
            return Err(TabularError::NotFitted);
        }
        for ((x, &lo), &hi) in row.iter_mut().zip(&self.mins).zip(&self.maxs) {
            *x = x.clamp(lo, hi);
        }
        Ok(())
    }

    /// Fitted per-feature minima.
    #[must_use]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted per-feature maxima.
    #[must_use]
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Class;

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push(&[0.0, 5.0], Class::Benign).unwrap();
        d.push(&[10.0, 5.0], Class::Malware).unwrap();
        d.push(&[20.0, 5.0], Class::Malware).unwrap();
        d
    }

    #[test]
    fn scaler_centers_and_scales() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let t = s.transform(&d).unwrap();
        let col = t.column(0).unwrap();
        assert!(stats::mean(&col).abs() < 1e-12);
        assert!((stats::std_dev(&col) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaler_constant_feature_passthrough() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let t = s.transform(&d).unwrap();
        // feature "b" is constant 5.0 → centered to 0, not divided by 0
        assert!(t.column(1).unwrap().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn scaler_roundtrip() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let mut row = [10.0, 5.0];
        s.transform_row(&mut row).unwrap();
        s.inverse_transform_row(&mut row).unwrap();
        assert!((row[0] - 10.0).abs() < 1e-12);
        assert!((row[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scaler_rejects_empty() {
        let d = Dataset::new(vec!["a".into()]).unwrap();
        assert_eq!(StandardScaler::fit(&d).unwrap_err(), TabularError::EmptyDataset);
    }

    #[test]
    fn scaler_rejects_wrong_width() {
        let s = StandardScaler::fit(&data()).unwrap();
        let mut row = [1.0];
        assert_eq!(s.transform_row(&mut row).unwrap_err(), TabularError::NotFitted);
    }

    #[test]
    fn clipper_clamps_rows() {
        let c = MinMaxClipper::fit(&data()).unwrap();
        let mut row = [-5.0, 100.0];
        c.clip_row(&mut row).unwrap();
        assert_eq!(row, [0.0, 5.0]);
    }

    #[test]
    fn clipper_from_bounds_validates() {
        assert!(MinMaxClipper::from_bounds(vec![0.0], vec![1.0]).is_ok());
        assert!(MinMaxClipper::from_bounds(vec![2.0], vec![1.0]).is_err());
        assert!(MinMaxClipper::from_bounds(vec![], vec![]).is_err());
        assert!(MinMaxClipper::from_bounds(vec![0.0], vec![1.0, 2.0]).is_err());
    }
}
