//! Small statistics helpers shared across the workspace.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(hmd_tabular::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Minimum and maximum of a slice, ignoring NaNs.
///
/// Returns `None` for an empty slice or a slice of only NaNs.
#[must_use]
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let mut it = values.iter().copied().filter(|v| !v.is_nan());
    let first = it.next()?;
    let (mut lo, mut hi) = (first, first);
    for v in it {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Used by LowProFool-style attacks as the per-feature importance vector
/// `v` (correlation of each feature with the target label). Returns `0.0`
/// when either slice is constant or the slices are empty/mismatched.
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((hmd_tabular::stats::pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.is_empty() {
        return 0.0;
    }
    let (mx, my) = (mean(x), mean(y));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Shannon entropy (nats) of a discrete distribution given by counts.
///
/// Zero-count cells contribute nothing.
#[must_use]
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Returns `None` for empty input.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignores_nan() {
        let v = [3.0, f64::NAN, -1.0, 8.0];
        assert_eq!(min_max(&v), Some((-1.0, 8.0)));
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[f64::NAN]), None);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_mismatched_lengths_is_zero() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn entropy_uniform_two_cells() {
        let h = entropy_from_counts(&[5, 5]);
        assert!((h - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        assert_eq!(entropy_from_counts(&[10, 0, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }

    #[test]
    fn quantile_median() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[1.0, 2.0], 0.5), Some(1.5));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
