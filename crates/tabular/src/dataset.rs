//! Labeled, row-major feature matrices.

use std::collections::BTreeMap;
use std::fmt;

use hmd_util::impl_json;
use hmd_util::rng::prelude::*;

use crate::TabularError;

/// Class label of one HPC sample.
///
/// The framework distinguishes three kinds of incoming data (paper §2.3):
/// legitimate benign applications, legitimate malware, and adversarially
/// perturbed malware. Adversarial samples only acquire their label once the
/// adversarial predictor has flagged them.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// A legitimate, benign application.
    Benign,
    /// Legitimate (unperturbed) malware.
    Malware,
    /// Malware whose HPC footprint was adversarially perturbed to appear
    /// benign.
    Adversarial,
}

impl_json!(enum Class { Benign, Malware, Adversarial });

impl Class {
    /// All classes, in stable order.
    pub const ALL: [Class; 3] = [Class::Benign, Class::Malware, Class::Adversarial];

    /// Whether this class represents a genuine attack the detector must
    /// flag (malware, adversarial or not).
    ///
    /// ```
    /// use hmd_tabular::Class;
    /// assert!(Class::Adversarial.is_attack());
    /// assert!(!Class::Benign.is_attack());
    /// ```
    #[must_use]
    pub fn is_attack(self) -> bool {
        !matches!(self, Class::Benign)
    }

    /// Stable small integer id (0 = benign, 1 = malware, 2 = adversarial).
    #[must_use]
    pub fn id(self) -> usize {
        match self {
            Class::Benign => 0,
            Class::Malware => 1,
            Class::Adversarial => 2,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Class::Benign => "benign",
            Class::Malware => "malware",
            Class::Adversarial => "adversarial",
        };
        f.write_str(name)
    }
}

/// An owned, labeled tabular dataset.
///
/// Rows are stored contiguously (row-major) for cache-friendly scans; every
/// row has the same width and a [`Class`] label. Feature names are carried
/// along so MI rankings and reports stay human-readable.
///
/// # Example
///
/// ```
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_tabular::TabularError> {
/// let mut d = Dataset::new(vec!["cache-misses".into()])?;
/// d.push(&[10.0], Class::Benign)?;
/// d.push(&[90.0], Class::Malware)?;
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.row(1)?, &[90.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    data: Vec<f64>,
    labels: Vec<Class>,
    n_features: usize,
}

impl_json!(struct Dataset { feature_names, data, labels, n_features });

impl Dataset {
    /// Creates an empty dataset with the given feature columns.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::NoFeatures`] if `feature_names` is empty.
    pub fn new(feature_names: Vec<String>) -> Result<Self, TabularError> {
        if feature_names.is_empty() {
            return Err(TabularError::NoFeatures);
        }
        let n_features = feature_names.len();
        Ok(Self { feature_names, data: Vec::new(), labels: Vec::new(), n_features })
    }

    /// Creates a dataset from pre-collected rows.
    ///
    /// # Errors
    ///
    /// Returns an error if `feature_names` is empty or any row has the
    /// wrong width.
    pub fn from_rows<'a, I>(feature_names: Vec<String>, rows: I) -> Result<Self, TabularError>
    where
        I: IntoIterator<Item = (&'a [f64], Class)>,
    {
        let mut out = Self::new(feature_names)?;
        for (row, label) in rows {
            out.push(row, label)?;
        }
        Ok(out)
    }

    /// Appends one labeled row.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::DimensionMismatch`] if `features` has the
    /// wrong width.
    pub fn push(&mut self, features: &[f64], label: Class) -> Result<(), TabularError> {
        if features.len() != self.n_features {
            return Err(TabularError::DimensionMismatch {
                expected: self.n_features,
                actual: features.len(),
            });
        }
        self.data.extend_from_slice(features);
        self.labels.push(label);
        Ok(())
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature (column) names.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Borrow one row.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::SampleIndexOutOfRange`] if `index >= len()`.
    pub fn row(&self, index: usize) -> Result<&[f64], TabularError> {
        if index >= self.len() {
            return Err(TabularError::SampleIndexOutOfRange { index, n_samples: self.len() });
        }
        let start = index * self.n_features;
        Ok(&self.data[start..start + self.n_features])
    }

    /// The label of one row.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::SampleIndexOutOfRange`] if `index >= len()`.
    pub fn label(&self, index: usize) -> Result<Class, TabularError> {
        self.labels
            .get(index)
            .copied()
            .ok_or(TabularError::SampleIndexOutOfRange { index, n_samples: self.len() })
    }

    /// All labels in row order.
    #[must_use]
    pub fn labels(&self) -> &[Class] {
        &self.labels
    }

    /// Iterates over `(row, label)` pairs.
    pub fn iter(&self) -> Iter<'_> {
        Iter { dataset: self, index: 0 }
    }

    /// One whole feature column, gathered into a vector.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::FeatureIndexOutOfRange`] for a bad column.
    pub fn column(&self, feature: usize) -> Result<Vec<f64>, TabularError> {
        if feature >= self.n_features {
            return Err(TabularError::FeatureIndexOutOfRange {
                index: feature,
                n_features: self.n_features,
            });
        }
        Ok((0..self.len()).map(|i| self.data[i * self.n_features + feature]).collect())
    }

    /// Appends all rows of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::SchemaMismatch`] if the feature names differ.
    pub fn merge(&mut self, other: &Dataset) -> Result<(), TabularError> {
        if self.feature_names != other.feature_names {
            return Err(TabularError::SchemaMismatch);
        }
        self.data.extend_from_slice(&other.data);
        self.labels.extend_from_slice(&other.labels);
        Ok(())
    }

    /// Reserves capacity for at least `additional_rows` more rows so a
    /// bounded buffer (e.g. the detector's quarantine) can absorb them
    /// without reallocating on the hot path.
    pub fn reserve(&mut self, additional_rows: usize) {
        self.data.reserve(additional_rows * self.n_features);
        self.labels.reserve(additional_rows);
    }

    /// Removes the `n` oldest rows (and their labels) in insertion
    /// order — the eviction primitive for bounded ring-style buffers
    /// such as the detector's quarantine. Removing more rows than exist
    /// empties the dataset.
    pub fn pop_front(&mut self, n: usize) {
        let n = n.min(self.len());
        self.data.drain(..n * self.n_features);
        self.labels.drain(..n);
    }

    /// A new dataset containing the rows at `indices`, in that order.
    ///
    /// # Errors
    ///
    /// Returns [`TabularError::SampleIndexOutOfRange`] for a bad index.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, TabularError> {
        let mut out = Dataset::new(self.feature_names.clone())?;
        for &i in indices {
            out.push(self.row(i)?, self.label(i)?)?;
        }
        Ok(out)
    }

    /// A new dataset with only the given feature columns (in the given
    /// order) — the output of MI-based feature selection.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty selection or a bad column index.
    pub fn select_features(&self, features: &[usize]) -> Result<Dataset, TabularError> {
        if features.is_empty() {
            return Err(TabularError::NoFeatures);
        }
        for &f in features {
            if f >= self.n_features {
                return Err(TabularError::FeatureIndexOutOfRange {
                    index: f,
                    n_features: self.n_features,
                });
            }
        }
        let names = features.iter().map(|&f| self.feature_names[f].clone()).collect();
        let mut out = Dataset::new(names)?;
        let mut buf = vec![0.0; features.len()];
        for i in 0..self.len() {
            let row = self.row(i)?;
            for (dst, &f) in buf.iter_mut().zip(features) {
                *dst = row[f];
            }
            out.push(&buf, self.labels[i])?;
        }
        Ok(out)
    }

    /// A new dataset with only rows whose label satisfies `keep`.
    pub fn filter<F: FnMut(Class) -> bool>(&self, mut keep: F) -> Dataset {
        let indices: Vec<usize> =
            (0..self.len()).filter(|&i| keep(self.labels[i])).collect();
        self.subset(&indices).expect("indices are in range by construction")
    }

    /// Returns a shuffled copy.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        self.subset(&indices).expect("indices are in range by construction")
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> BTreeMap<Class, usize> {
        let mut counts = BTreeMap::new();
        for &label in &self.labels {
            *counts.entry(label).or_insert(0) += 1;
        }
        counts
    }

    /// Relabels every row, e.g. to mark predictor-flagged samples as
    /// [`Class::Adversarial`] before merging (paper §2.3, defense module).
    pub fn relabel_all(&mut self, label: Class) {
        for l in &mut self.labels {
            *l = label;
        }
    }

    /// Binary targets (`1.0` for rows where `positive` holds, else `0.0`).
    ///
    /// Detectors are binary: "attack vs. benign". After adversarial
    /// training, both [`Class::Malware`] and [`Class::Adversarial`] map to
    /// the positive class via [`Class::is_attack`].
    #[must_use]
    pub fn binary_targets<F: FnMut(Class) -> bool>(&self, mut positive: F) -> Vec<f64> {
        self.labels.iter().map(|&l| if positive(l) { 1.0 } else { 0.0 }).collect()
    }

    /// Borrow the raw row-major feature buffer.
    #[must_use]
    pub fn raw_data(&self) -> &[f64] {
        &self.data
    }
}

/// Iterator over `(row, label)` pairs of a [`Dataset`].
#[derive(Debug)]
pub struct Iter<'a> {
    dataset: &'a Dataset,
    index: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a [f64], Class);

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.dataset.len() {
            return None;
        }
        let i = self.index;
        self.index += 1;
        let start = i * self.dataset.n_features;
        Some((
            &self.dataset.data[start..start + self.dataset.n_features],
            self.dataset.labels[i],
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.dataset.len() - self.index;
        (left, Some(left))
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = (&'a [f64], Class);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push(&[1.0, 2.0], Class::Benign).unwrap();
        d.push(&[3.0, 4.0], Class::Malware).unwrap();
        d.push(&[5.0, 6.0], Class::Adversarial).unwrap();
        d
    }

    #[test]
    fn push_and_row_roundtrip() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(d.row(2).unwrap(), &[5.0, 6.0]);
        assert_eq!(d.label(1).unwrap(), Class::Malware);
    }

    #[test]
    fn rejects_empty_schema() {
        assert_eq!(Dataset::new(vec![]).unwrap_err(), TabularError::NoFeatures);
    }

    #[test]
    fn rejects_wrong_width() {
        let mut d = sample();
        let err = d.push(&[1.0], Class::Benign).unwrap_err();
        assert_eq!(err, TabularError::DimensionMismatch { expected: 2, actual: 1 });
    }

    #[test]
    fn row_index_out_of_range() {
        let d = sample();
        assert!(matches!(d.row(3), Err(TabularError::SampleIndexOutOfRange { .. })));
    }

    #[test]
    fn column_extracts_values() {
        let d = sample();
        assert_eq!(d.column(1).unwrap(), vec![2.0, 4.0, 6.0]);
        assert!(d.column(2).is_err());
    }

    #[test]
    fn merge_appends_rows() {
        let mut d = sample();
        let other = sample();
        d.merge(&other).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d.row(4).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn merge_rejects_schema_mismatch() {
        let mut d = sample();
        let other = Dataset::new(vec!["x".into(), "y".into()]).unwrap();
        assert_eq!(d.merge(&other).unwrap_err(), TabularError::SchemaMismatch);
    }

    #[test]
    fn pop_front_evicts_oldest_rows() {
        let mut d = sample();
        d.pop_front(2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0).unwrap(), &[5.0, 6.0]);
        assert_eq!(d.label(0).unwrap(), Class::Adversarial);
        d.pop_front(5);
        assert!(d.is_empty());
        d.pop_front(1);
        assert!(d.is_empty());
    }

    #[test]
    fn subset_preserves_order() {
        let d = sample();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.row(0).unwrap(), &[5.0, 6.0]);
        assert_eq!(s.label(1).unwrap(), Class::Benign);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = sample();
        let s = d.select_features(&[1]).unwrap();
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.feature_names(), &["b".to_string()]);
        assert_eq!(s.row(0).unwrap(), &[2.0]);
    }

    #[test]
    fn select_features_rejects_bad_index() {
        let d = sample();
        assert!(d.select_features(&[5]).is_err());
        assert!(d.select_features(&[]).is_err());
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let d = sample();
        let attacks = d.filter(Class::is_attack);
        assert_eq!(attacks.len(), 2);
        assert!(attacks.labels().iter().all(|l| l.is_attack()));
    }

    #[test]
    fn class_counts_tally() {
        let d = sample();
        let counts = d.class_counts();
        assert_eq!(counts[&Class::Benign], 1);
        assert_eq!(counts[&Class::Malware], 1);
        assert_eq!(counts[&Class::Adversarial], 1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let d = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        let mut a: Vec<f64> = d.raw_data().to_vec();
        let mut b: Vec<f64> = s.raw_data().to_vec();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn binary_targets_follow_predicate() {
        let d = sample();
        assert_eq!(d.binary_targets(Class::is_attack), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn relabel_all_rewrites_labels() {
        let mut d = sample();
        d.relabel_all(Class::Adversarial);
        assert!(d.labels().iter().all(|&l| l == Class::Adversarial));
    }

    #[test]
    fn iterator_yields_all_rows() {
        let d = sample();
        let rows: Vec<_> = d.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], (&[3.0, 4.0][..], Class::Malware));
    }
}
