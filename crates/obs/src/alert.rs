//! The SLO rule engine: declarative ceilings/floors evaluated against a
//! [`MonitorSnapshot`], with firing/resolved state tracking.
//!
//! Rules are evaluated on demand (the serving loop calls
//! [`AlertEngine::evaluate`] every N samples); each evaluation returns
//! the *transitions* — rules that just fired or just resolved — so the
//! caller can log exactly the edges, while [`AlertEngine::firing`]
//! exposes the level state for `/healthz` and `/metrics`. Nothing here
//! reads a clock or an RNG: alert behaviour is a pure function of the
//! snapshot sequence, hence deterministic under stream time.

use std::fmt;

use hmd_util::json::Json;

use crate::monitor::MonitorSnapshot;

/// How bad a breached rule is. `Critical` rules drive `/healthz`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look; does not flip health.
    Warning,
    /// Service-level failure; `/healthz` reports 503 while firing.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Warning => "warning",
            Self::Critical => "critical",
        })
    }
}

/// What a rule watches. Thresholds live in the variant.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SloKind {
    /// Windowed model-only (classification) latency p95 must stay below
    /// this many milliseconds — the SLO gates on the model tier, not on
    /// ingest jitter.
    LatencyP95CeilingMs(f64),
    /// Windowed detection rate must stay at or above this fraction.
    /// Undefined (no attacks in window) counts as healthy.
    DetectionRateFloor(f64),
    /// Windowed adversarial-flag rate must stay at or below this
    /// fraction — a spike means the predictor sees an attack campaign.
    FlagRateCeiling(f64),
    /// At most this many integrity drift events per window.
    DriftCeiling(u64),
}

/// One declarative SLO rule.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Stable identifier; becomes the `rule` label on `/metrics`.
    pub name: &'static str,
    /// The watched quantity and its threshold.
    pub kind: SloKind,
    /// Firing severity.
    pub severity: Severity,
    /// Evaluate only once the window holds at least this many samples —
    /// keeps a cold window from flapping rate rules.
    pub min_samples: u64,
}

impl SloRule {
    /// Whether the rule is breached by `snap`. `None` means "not
    /// evaluable yet" (below `min_samples`, or the rate is undefined),
    /// which never changes the firing state.
    fn breached(&self, snap: &MonitorSnapshot) -> Option<bool> {
        if snap.samples < self.min_samples {
            return None;
        }
        match self.kind {
            SloKind::LatencyP95CeilingMs(ceiling) => {
                (snap.model_latency.count > 0).then(|| snap.model_latency_p95_ms() > ceiling)
            }
            SloKind::DetectionRateFloor(floor) => snap.detection_rate().map(|r| r < floor),
            SloKind::FlagRateCeiling(ceiling) => snap.flag_rate().map(|r| r > ceiling),
            SloKind::DriftCeiling(max) => Some(snap.drifts > max),
        }
    }

    /// The rule's threshold as a number, for exposition.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        match self.kind {
            SloKind::LatencyP95CeilingMs(v)
            | SloKind::DetectionRateFloor(v)
            | SloKind::FlagRateCeiling(v) => v,
            #[allow(clippy::cast_precision_loss)]
            SloKind::DriftCeiling(v) => v as f64,
        }
    }
}

/// The paper-motivated default rule set: inference must stay fast
/// (FastInference constraint), detection must not collapse, and both an
/// adversarial-flag spike and repeated integrity drift demand attention.
#[must_use]
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "latency_p95",
            kind: SloKind::LatencyP95CeilingMs(10.0),
            severity: Severity::Warning,
            min_samples: 20,
        },
        SloRule {
            name: "detection_rate",
            kind: SloKind::DetectionRateFloor(0.5),
            severity: Severity::Critical,
            min_samples: 20,
        },
        SloRule {
            name: "adversarial_flag_rate",
            kind: SloKind::FlagRateCeiling(0.35),
            severity: Severity::Critical,
            min_samples: 20,
        },
        SloRule {
            name: "integrity_drift",
            kind: SloKind::DriftCeiling(0),
            severity: Severity::Critical,
            min_samples: 1,
        },
    ]
}

/// An edge in a rule's firing state.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertTransition {
    /// The rule that transitioned.
    pub rule: &'static str,
    /// Its severity.
    pub severity: Severity,
    /// `true` = just fired, `false` = just resolved.
    pub firing: bool,
    /// Stream time of the evaluation that flipped it.
    pub t_ns: u64,
    /// The observed value that drove the flip (rule-dependent units).
    pub observed: f64,
}

/// Evaluates a rule set against monitor snapshots and tracks state.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<SloRule>,
    firing: Vec<bool>,
    transitions: u64,
    /// Fire+resolve edges per rule, in evaluation order — the
    /// `hmd_serving_alert_transitions_total{rule=...}` breakdown.
    rule_transitions: Vec<u64>,
}

impl AlertEngine {
    /// An engine over `rules`, all initially resolved.
    #[must_use]
    pub fn new(rules: Vec<SloRule>) -> Self {
        let n = rules.len();
        Self { rules, firing: vec![false; n], transitions: 0, rule_transitions: vec![0; n] }
    }

    /// The rule set, in evaluation order.
    #[must_use]
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Replaces the rule set in place — the model-promotion path uses
    /// this when a retraining round re-derives the SLO calibration.
    /// When the new set has the same shape (same rule names, in order)
    /// only the thresholds move: firing state and the transition
    /// counter carry over, so a hot-swap never fabricates or swallows
    /// an edge. A differently shaped set resets firing state instead
    /// (the old levels are meaningless for new rules).
    pub fn set_rules(&mut self, rules: &[SloRule]) {
        let same_shape = rules.len() == self.rules.len()
            && rules.iter().zip(&self.rules).all(|(new, old)| new.name == old.name);
        self.rules = rules.to_vec();
        if !same_shape {
            // the aggregate counter stays monotonic across reshapes;
            // per-rule counts restart because the new rules are new
            // series
            self.firing = vec![false; self.rules.len()];
            self.rule_transitions = vec![0; self.rules.len()];
        }
    }

    /// Evaluates every rule against `snap` and returns only the edges.
    /// Fire/resolve edges also emit a gated `obs.alert` telemetry event,
    /// so alert history lands in the exported `TELEMETRY_*.json`.
    pub fn evaluate(&mut self, snap: &MonitorSnapshot) -> Vec<AlertTransition> {
        let mut edges = Vec::new();
        for (i, (rule, firing)) in self.rules.iter().zip(self.firing.iter_mut()).enumerate() {
            let Some(breached) = rule.breached(snap) else { continue };
            if breached == *firing {
                continue;
            }
            *firing = breached;
            self.transitions += 1;
            self.rule_transitions[i] += 1;
            let observed = observed_value(rule, snap);
            if hmd_telemetry::enabled() {
                hmd_telemetry::event(
                    "obs.alert",
                    Json::Obj(vec![
                        ("rule".into(), Json::Str(rule.name.into())),
                        ("severity".into(), Json::Str(rule.severity.to_string())),
                        ("firing".into(), Json::Bool(breached)),
                        ("observed".into(), Json::Float(observed)),
                        ("threshold".into(), Json::Float(rule.threshold())),
                    ]),
                );
            }
            edges.push(AlertTransition {
                rule: rule.name,
                severity: rule.severity,
                firing: breached,
                t_ns: snap.t_ns,
                observed,
            });
        }
        edges
    }

    /// The rules currently firing, paired with their severities.
    pub fn firing(&self) -> impl Iterator<Item = &SloRule> + '_ {
        self.rules.iter().zip(&self.firing).filter_map(|(r, &f)| f.then_some(r))
    }

    /// Whether rule `i` is currently firing (evaluation order).
    #[must_use]
    pub fn is_firing(&self, i: usize) -> bool {
        self.firing.get(i).copied().unwrap_or(false)
    }

    /// Healthy ⇔ no `Critical` rule is firing.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.firing().all(|r| r.severity < Severity::Critical)
    }

    /// Total fire+resolve edges since construction.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Fire+resolve edges per rule since construction (or since the
    /// last rule-set reshape), parallel to [`rules`](Self::rules).
    #[must_use]
    pub fn rule_transitions(&self) -> &[u64] {
        &self.rule_transitions
    }
}

/// The snapshot quantity a rule watches, in the rule's own units.
fn observed_value(rule: &SloRule, snap: &MonitorSnapshot) -> f64 {
    match rule.kind {
        SloKind::LatencyP95CeilingMs(_) => snap.model_latency_p95_ms(),
        SloKind::DetectionRateFloor(_) => snap.detection_rate().unwrap_or(f64::NAN),
        SloKind::FlagRateCeiling(_) => snap.flag_rate().unwrap_or(f64::NAN),
        #[allow(clippy::cast_precision_loss)]
        SloKind::DriftCeiling(_) => snap.drifts as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{SampleRecord, ServingMonitor};
    use crate::window::WindowConfig;

    const MS: u64 = 1_000_000;

    fn flag_rule(ceiling: f64, min_samples: u64) -> SloRule {
        SloRule {
            name: "flags",
            kind: SloKind::FlagRateCeiling(ceiling),
            severity: Severity::Critical,
            min_samples,
        }
    }

    fn feed(m: &ServingMonitor, t: u64, n: usize, flagged: bool) {
        for _ in 0..n {
            m.record_at(
                t,
                SampleRecord {
                    truth_attack: flagged,
                    verdict_attack: flagged,
                    flagged_adversarial: flagged,
                    latency_ns: 1000,
                    model_latency_ns: 1000,
                    sample: 0,
                    generation: 0,
                },
            );
        }
    }

    #[test]
    fn fires_once_then_resolves_once_as_window_slides() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![flag_rule(0.5, 1)]);

        feed(&m, 0, 10, false);
        assert!(e.evaluate(&m.snapshot_at(0)).is_empty());
        assert!(e.healthy());

        // adversarial burst: flag rate → ~1.0 inside the window
        feed(&m, 10 * MS, 30, true);
        let edges = e.evaluate(&m.snapshot_at(10 * MS));
        assert_eq!(edges.len(), 1);
        assert!(edges[0].firing);
        assert!(!e.healthy());

        // steady state while still breached: no new edge
        assert!(e.evaluate(&m.snapshot_at(15 * MS)).is_empty());
        assert!(!e.healthy());

        // burst slides out of the window; benign traffic resumes
        feed(&m, 60 * MS, 10, false);
        let edges = e.evaluate(&m.snapshot_at(60 * MS));
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].firing);
        assert!(e.healthy());
        assert_eq!(e.transitions(), 2);
        assert_eq!(e.rule_transitions(), &[2]);
    }

    #[test]
    fn set_rules_keeps_firing_state_for_same_shape_threshold_updates() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![flag_rule(0.5, 1)]);
        feed(&m, 0, 10, true);
        assert_eq!(e.evaluate(&m.snapshot_at(0)).len(), 1);
        assert!(!e.healthy());

        // same shape, looser threshold: still firing until re-evaluated,
        // and the re-evaluation emits exactly one resolve edge
        e.set_rules(&[flag_rule(2.0, 1)]);
        assert!(!e.healthy(), "threshold update must not silently resolve");
        let edges = e.evaluate(&m.snapshot_at(0));
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].firing);
        assert_eq!(e.transitions(), 2, "transition counter must stay monotonic");
        assert_eq!(e.rule_transitions(), &[2], "same-shape swap keeps per-rule counts");

        // a differently shaped set resets the levels and per-rule counts
        e.set_rules(&[flag_rule(0.5, 1), flag_rule(0.9, 1)]);
        assert!(e.healthy());
        assert_eq!(e.rules().len(), 2);
        assert_eq!(e.rule_transitions(), &[0, 0]);
        assert_eq!(e.transitions(), 2, "aggregate survives the reshape");
    }

    #[test]
    fn min_samples_gate_prevents_cold_start_flapping() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![flag_rule(0.5, 20)]);
        // 5 flagged samples = 100% flag rate, but below min_samples
        feed(&m, 0, 5, true);
        assert!(e.evaluate(&m.snapshot_at(0)).is_empty());
        assert!(e.healthy());
    }

    #[test]
    fn undefined_rates_leave_state_untouched() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![SloRule {
            name: "det",
            kind: SloKind::DetectionRateFloor(0.9),
            severity: Severity::Critical,
            min_samples: 1,
        }]);
        // benign-only traffic: detection rate undefined → no edge either way
        feed(&m, 0, 50, false);
        assert!(e.evaluate(&m.snapshot_at(0)).is_empty());
        assert!(e.healthy());
    }

    #[test]
    fn warning_rules_do_not_flip_health() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![SloRule {
            name: "lat",
            kind: SloKind::LatencyP95CeilingMs(0.000_1),
            severity: Severity::Warning,
            min_samples: 1,
        }]);
        feed(&m, 0, 10, false); // 1000 ns latency > 0.0001 ms ceiling
        let edges = e.evaluate(&m.snapshot_at(0));
        assert_eq!(edges.len(), 1);
        assert!(edges[0].firing);
        assert!(e.healthy(), "warning severity must not flip /healthz");
    }

    #[test]
    fn drift_ceiling_fires_on_any_drift_and_resolves() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10 * MS));
        let mut e = AlertEngine::new(vec![SloRule {
            name: "drift",
            kind: SloKind::DriftCeiling(0),
            severity: Severity::Critical,
            min_samples: 0,
        }]);
        m.record_drift_at(0);
        assert_eq!(e.evaluate(&m.snapshot_at(0)).len(), 1);
        assert!(!e.healthy());
        // window slides; drift event expires
        assert_eq!(e.evaluate(&m.snapshot_at(60 * MS)).len(), 1);
        assert!(e.healthy());
    }
}
