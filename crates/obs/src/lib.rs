//! Online-serving observability for the HMD pipeline.
//!
//! `hmd-telemetry` answers "where did the wall-clock go" for batch
//! runs; this crate answers the *operational* questions a long-running
//! detection service gets asked: what is the detection rate **right
//! now**, is the adversarial predictor flagging a campaign, is inference
//! latency inside its SLO, did the integrity monitor see drift — and it
//! answers them over HTTP so a Prometheus scraper (or `curl`) can watch.
//!
//! Six layers, bottom up:
//!
//! * [`window`] — fixed-slot ring-buffer aggregators ([`WindowedCounter`],
//!   [`WindowedHistogram`]) driven by explicit *stream time*, so window
//!   expiry is deterministic and allocation-free on the record path.
//! * [`monitor`] — [`ServingMonitor`] bundles the windowed confusion
//!   counters, flag/drift counters and the latency histograms, each
//!   bucket remembering its last exemplar ([`ExemplarStore`]);
//!   [`MonitorSnapshot`] is the plain-value view everything reads.
//! * [`history`] — [`MetricsHistory`] keeps the *whole run* queryable:
//!   preallocated multi-resolution rings of periodic snapshot deltas
//!   (fine → mid → coarse, RRD-style exact-counter folds), flushed by
//!   the serving loop and served as `/history.json`.
//! * [`alert`] — [`AlertEngine`] evaluates declarative [`SloRule`]s
//!   against snapshots and tracks firing/resolved edges;
//!   [`default_rules`] encodes the paper-motivated SLOs (fast inference,
//!   detection floor, adversarial-spike ceiling, zero drift).
//! * [`expo`] + [`http`] — Prometheus text exposition (histogram buckets
//!   annotated with OpenMetrics exemplars) composed from the
//!   process-wide telemetry registry plus the windowed series, served by
//!   a zero-dependency blocking [`HttpServer`].
//! * [`dashboard`] — one self-contained HTML page ([`DASHBOARD_HTML`],
//!   inline CSS/JS, no external assets) that polls `/history.json` and
//!   renders SVG sparklines.
//!
//! The same determinism contract as `hmd-telemetry` applies: nothing in
//! this crate feeds back into the computation it observes, so serving
//! with monitoring on or off produces byte-identical verdicts
//! (`tests/determinism.rs` in the workspace root pins this).

pub mod alert;
pub mod dashboard;
pub mod expo;
pub mod history;
pub mod http;
pub mod monitor;
pub mod window;

pub use alert::{default_rules, AlertEngine, AlertTransition, Severity, SloKind, SloRule};
pub use dashboard::DASHBOARD_HTML;
pub use expo::{
    append_incident_series, append_promotion_series, render_metrics, render_metrics_fleet,
    validate_exposition,
};
pub use history::{history_json, HistoryAccumulator, HistoryPoint, MetricsHistory, TierSnapshot};
pub use http::{HttpServer, Request, Response};
pub use monitor::{ExemplarStore, MonitorSnapshot, SampleRecord, ServingMonitor};
pub use window::{WindowConfig, WindowedCounter, WindowedHistogram};
