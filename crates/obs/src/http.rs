//! A deliberately small blocking HTTP/1.1 server on `std::net` — just
//! enough protocol for a fleet of scrape endpoints: parse the request
//! line of a `GET`, dispatch on the path, write one response. A fixed
//! worker pool serves connections handed off by one accept-loop thread,
//! so a stalled scraper occupies one worker instead of wedging every
//! other client, and HTTP/1.1 keep-alive lets a scraper reuse one
//! connection for a bounded burst of requests. No TLS; a Prometheus
//! scraper or `curl` is the entire intended client set.
//!
//! Robustness over features: bounded request-line size (414 past the
//! limit), bounded header section (400 when it never terminates), read
//! timeouts so a stalled client cannot hold a worker forever, 400 on
//! garbage, 405 on non-GET, 404 on unknown paths.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: usize = 4096;
/// Most header lines (including the terminating blank) per request;
/// a header section still unterminated past this is answered with 400.
const MAX_HEADER_LINES: usize = 128;
/// Most requests served over one keep-alive connection before the
/// server closes it — bounds how long one client can pin a worker.
const MAX_KEEPALIVE_REQUESTS: usize = 32;
/// Largest declared request body the server will drain. Bodies are
/// never interpreted, but a kept-alive request's body must be consumed
/// so its bytes are not misparsed as the next request line; anything
/// larger is answered 413 and the connection closed.
const MAX_BODY_BYTES: u64 = 64 * 1024;
/// Connections serving concurrently unless overridden in `start_with`.
/// The handler is CPU-light (rendering a metrics page); workers mostly
/// block on client IO, so a small fixed pool beats a per-core count.
const DEFAULT_WORKERS: usize = 4;
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request: the method and path of the request line. Headers
/// are read and discarded; bodies are drained (bounded) but never
/// interpreted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/metrics`.
    pub path: String,
}

/// A response the handler hands back.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn ok(body: String) -> Self {
        Self { status: 200, content_type: "text/plain; version=0.0.4; charset=utf-8", body }
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Self { status: 200, content_type: "application/json", body }
    }

    /// A `200 OK` HTML response (the self-contained `/dashboard` page).
    #[must_use]
    pub fn html(body: String) -> Self {
        Self { status: 200, content_type: "text/html; charset=utf-8", body }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn status(status: u16, body: &str) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body: body.to_owned() }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        414 => "URI Too Long",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The request handler. Runs on pool worker threads; must be quick.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// The running server: one accept-loop thread feeding a fixed worker
/// pool over a channel, plus a shutdown flag.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` with the default worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(addr: &str, handler: Arc<Handler>) -> std::io::Result<Self> {
        Self::start_with(addr, handler, DEFAULT_WORKERS)
    }

    /// Like [`start`](Self::start) with an explicit worker count
    /// (clamped to at least one). Each worker serves one connection at
    /// a time, so `workers` bounds concurrent clients; excess
    /// connections queue in the accept channel.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start_with(
        addr: &str,
        handler: Arc<Handler>,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("hmd-obs-http-{i}"))
                    .spawn(move || worker_loop(&rx, handler.as_ref()))?,
            );
        }
        let stop_flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("hmd-obs-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // a send only fails once every worker is gone, which
                    // means we are shutting down anyway
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // dropping tx here starves recv() and retires the pool
            })?;
        Ok(Self { addr, stop, accept: Some(accept), workers: pool })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, retires the worker pool and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // the loop blocks in accept(); a self-connection wakes it up so
        // it can observe the flag
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // the accept thread dropped the channel sender on exit, so each
        // worker's recv() fails once the queue drains
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One pool worker: serve queued connections until the channel closes.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, handler: &Handler) {
    loop {
        // holding the lock only while blocked in recv(): the guard is a
        // temporary, released before the connection is served
        let next = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
        let Ok(stream) = next else { break };
        // a misbehaving client only costs one bounded connection, never
        // the pool itself
        let _ = serve_conn(stream, handler);
    }
}

/// Serves one connection: up to [`MAX_KEEPALIVE_REQUESTS`] requests over
/// HTTP/1.1 keep-alive, answering the matching 4xx for protocol
/// violations. A clean end-of-stream (or idle timeout) between requests
/// closes without a response.
fn serve_conn(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&stream);

    for served in 1..=MAX_KEEPALIVE_REQUESTS {
        match read_request(&mut reader) {
            Ok((req, client_keep_alive)) => {
                let keep = client_keep_alive && served < MAX_KEEPALIVE_REQUESTS;
                let response = if req.method == "GET" {
                    handler(&req)
                } else {
                    Response::status(405, "only GET is supported\n")
                };
                write_response(&stream, &response, keep)?;
                if !keep {
                    break;
                }
            }
            Err(Some(status)) => {
                let body = match status {
                    413 => "content too large\n",
                    501 => "transfer encodings are not supported\n",
                    _ => "bad request\n",
                };
                write_response(&stream, &Response::status(status, body), false)?;
                break;
            }
            // the client finished with the connection (EOF or idle past
            // the read timeout at a request boundary): close silently
            Err(None) => return Ok(()),
        }
    }
    // drain (bounded) whatever the client is still sending before the
    // socket closes — closing with unread data pending triggers an RST
    // that can destroy the final response in flight
    let mut scratch = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(&mut reader, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

/// Parses the request line and headers, then drains the declared body
/// so a kept-alive connection stays framed at the next request line.
/// Returns the request plus whether the client allows connection reuse;
/// `Err(Some(status))` is the HTTP status to answer protocol errors
/// with, `Err(None)` a clean end-of-stream before the request line
/// started.
fn read_request<R: BufRead>(reader: &mut R) -> Result<(Request, bool), Option<u16>> {
    let line = read_line_bounded(reader, MAX_REQUEST_LINE, true)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(Some(400)),
    };
    if !version.starts_with("HTTP/1.") || !path.starts_with('/') {
        return Err(Some(400));
    }
    // keep-alive is the HTTP/1.1 default; HTTP/1.0 must ask for it
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: Option<u64> = None;
    let mut terminated = false;
    for _ in 0..MAX_HEADER_LINES {
        let header = read_line_bounded(reader, MAX_REQUEST_LINE, false)?;
        if header.is_empty() {
            terminated = true;
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            // the value is a comma-separated token list ("keep-alive,
            // Upgrade"); tokens match case-insensitively, later tokens
            // win on (nonsensical) conflicts
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<u64>() else { return Err(Some(400)) };
            // duplicate headers must agree, else the framing is ambiguous
            if content_length.is_some_and(|prev| prev != n) {
                return Err(Some(400));
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // a chunked body would desync the connection if ignored;
            // refuse rather than misparse
            return Err(Some(501));
        }
    }
    if !terminated {
        // a header section that never ends within the bound is a
        // protocol violation, not a request to silently serve
        return Err(Some(400));
    }
    // drain the declared body: its bytes are part of *this* request, and
    // leaving them buffered would misparse them as the next request line
    if let Some(declared) = content_length {
        if declared > MAX_BODY_BYTES {
            return Err(Some(413));
        }
        let mut remaining = usize::try_from(declared).map_err(|_| Some(413))?;
        let mut chunk = [0u8; 512];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            match reader.read(&mut chunk[..take]) {
                // EOF, timeout or reset before the declared length: the
                // body was truncated mid-request
                Ok(0) | Err(_) => return Err(Some(400)),
                Ok(n) => remaining -= n,
            }
        }
    }
    Ok((Request { method: method.to_owned(), path: path.to_owned() }, keep_alive))
}

/// Reads one CRLF- (or LF-) terminated line of at most `max` bytes.
/// With `eof_is_clean`, end-of-stream (or an idle timeout) before the
/// first byte maps to `Err(None)` — a request boundary, not an error.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    eof_is_clean: bool,
) -> Result<String, Option<u16>> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if eof_is_clean && line.is_empty() {
                    return Err(None); // peer closed between requests
                }
                return Err(Some(400)); // peer closed mid-line
            }
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                if line.len() >= max {
                    return Err(Some(414));
                }
                line.push(byte[0]);
            }
            Err(_) => {
                if eof_is_clean && line.is_empty() {
                    return Err(None); // idle keep-alive connection
                }
                return Err(Some(400)); // timeout or reset mid-request
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| Some(400))
}

fn write_response(mut stream: &TcpStream, r: &Response, keep_alive: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        r.status,
        reason(r.status),
        r.content_type,
        r.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use std::io::Read;

    use super::*;

    fn start_echo() -> HttpServer {
        HttpServer::start(
            "127.0.0.1:0",
            Arc::new(|req: &Request| match req.path.as_str() {
                "/hello" => Response::ok("world\n".into()),
                "/json" => Response::json("{\"ok\":true}".into()),
                _ => Response::status(404, "not found\n"),
            }),
        )
        .expect("bind")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw.as_bytes()).expect("write");
        // half-close so a truncated request reads as EOF, not a stall
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_known_paths_with_content_length() {
        let server = start_echo();
        let reply = roundtrip(server.addr(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("Content-Length: 6\r\n"), "{reply}");
        assert!(reply.ends_with("world\n"), "{reply}");
        let reply = roundtrip(server.addr(), "GET /json HTTP/1.0\r\n\r\n");
        assert!(reply.contains("application/json"), "{reply}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = start_echo();
        let reply = roundtrip(server.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let reply = roundtrip(server.addr(), "POST /hello HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
    }

    #[test]
    fn oversized_request_line_is_414() {
        let server = start_echo();
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(2 * MAX_REQUEST_LINE));
        let reply = roundtrip(server.addr(), &long);
        assert!(reply.starts_with("HTTP/1.1 414"), "{reply}");
    }

    #[test]
    fn partial_and_malformed_requests_get_400() {
        let server = start_echo();
        // truncated: client closes before finishing the request line
        let reply = roundtrip(server.addr(), "GET /hel");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(server.addr(), "NONSENSE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(server.addr(), "GET nopath HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    /// Reads exactly one response off a keep-alive connection: headers
    /// up to the blank line, then `Content-Length` body bytes.
    fn read_one_response(reader: &mut BufReader<&TcpStream>) -> (String, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            if line == "\r\n" || line == "\n" {
                break;
            }
            head.push_str(&line);
        }
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content length")
            .trim()
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).expect("body");
        (head, String::from_utf8(body).expect("utf8 body"))
    }

    #[test]
    fn unterminated_header_section_is_400() {
        let server = start_echo();
        // request line is fine, but the header section never reaches a
        // blank line within the server's header bound
        let flood = format!("GET /hello HTTP/1.1\r\n{}", "X-Pad: y\r\n".repeat(200));
        let reply = roundtrip(server.addr(), &flood);
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let server = start_echo();
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(&stream);
        for _ in 0..2 {
            (&stream)
                .write_all(b"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("write");
            let (head, body) = read_one_response(&mut reader);
            assert!(head.contains("Connection: keep-alive"), "{head}");
            assert_eq!(body, "world\n");
        }
        // the final request asks to close; the server honors it
        (&stream)
            .write_all(b"GET /json HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("write");
        let (head, body) = read_one_response(&mut reader);
        assert!(head.contains("Connection: close"), "{head}");
        assert_eq!(body, "{\"ok\":true}");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("server closed");
        assert!(rest.is_empty(), "unexpected trailing data: {rest}");
    }

    /// The keep-alive desync regression: a kept-alive POST carrying a
    /// body used to leave the body bytes buffered, where they were
    /// misparsed as the next request line (400 instead of serving the
    /// follow-up). The body must be drained before answering.
    #[test]
    fn keep_alive_request_body_is_drained_not_misparsed() {
        let server = start_echo();
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(&stream);
        (&stream)
            .write_all(
                b"POST /hello HTTP/1.1\r\nHost: x\r\nContent-Length: 17\r\n\r\n\
                  GET /spoofed-body",
            )
            .expect("write post");
        let (head, _) = read_one_response(&mut reader);
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        // the same connection must still be framed at a request boundary
        (&stream).write_all(b"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n").expect("write get");
        let (head, body) = read_one_response(&mut reader);
        assert!(head.starts_with("HTTP/1.1 200"), "body bytes desynced the connection: {head}");
        assert_eq!(body, "world\n");
    }

    #[test]
    fn oversized_body_is_413_and_closes() {
        let server = start_echo();
        let reply = roundtrip(
            server.addr(),
            "POST /hello HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
    }

    #[test]
    fn bad_and_conflicting_content_lengths_are_400() {
        let server = start_echo();
        let reply =
            roundtrip(server.addr(), "GET /hello HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(
            server.addr(),
            "GET /hello HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nabc",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    #[test]
    fn transfer_encoding_is_refused_with_501() {
        let server = start_echo();
        let reply = roundtrip(
            server.addr(),
            "POST /hello HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 501"), "{reply}");
    }

    /// `Connection` carries a token *list*; `keep-alive, Upgrade` used
    /// to match neither exact string and fall through to the version
    /// default.
    #[test]
    fn connection_header_token_lists_are_parsed() {
        let server = start_echo();
        // HTTP/1.0 defaults to close, so honoring keep-alive here
        // proves the token (not the whole value) matched
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(&stream);
        (&stream)
            .write_all(b"GET /hello HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n")
            .expect("write");
        let (head, body) = read_one_response(&mut reader);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert_eq!(body, "world\n");
        // and a close token buried in a list closes an HTTP/1.1 request
        (&stream)
            .write_all(b"GET /hello HTTP/1.1\r\nConnection: Upgrade, CLOSE\r\n\r\n")
            .expect("write");
        let (head, _) = read_one_response(&mut reader);
        assert!(head.contains("Connection: close"), "{head}");
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let server = start_echo();
        let reply = roundtrip(server.addr(), "GET /hello HTTP/1.0\r\n\r\n");
        assert!(reply.contains("Connection: close"), "{reply}");
    }

    #[test]
    fn stalled_client_does_not_block_the_pool() {
        let server = start_echo();
        // a client that opens a connection and sends half a request
        // line, then stalls — it pins one worker until the read timeout
        let staller = TcpStream::connect(server.addr()).expect("connect");
        (&staller).write_all(b"GET /hel").expect("write partial");
        // other clients are served promptly by the remaining workers
        let t0 = std::time::Instant::now();
        let reply = roundtrip(server.addr(), "GET /hello HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(
            t0.elapsed() < IO_TIMEOUT,
            "head-of-line blocked behind the stalled client: {:?}",
            t0.elapsed()
        );
        drop(staller);
    }

    #[test]
    fn shutdown_joins_and_releases_the_port() {
        let mut server = start_echo();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
        // the port is free again
        let _rebind = TcpListener::bind(addr).expect("port released");
    }
}
