//! A deliberately small blocking HTTP/1.1 server on `std::net` — just
//! enough protocol for a scrape endpoint: parse the request line of a
//! `GET`, dispatch on the path, write one response, close. No keep-alive,
//! no TLS, no threads-per-connection pool beyond one accept loop thread;
//! a Prometheus scraper or `curl` is the entire intended client set.
//!
//! Robustness over features: bounded request-line size (414 past the
//! limit), read timeouts so a stalled client cannot wedge the accept
//! loop, 400 on garbage, 405 on non-GET, 404 on unknown paths.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: usize = 4096;
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request: the method and path of the request line. Headers
/// are read and discarded; bodies are not supported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/metrics`.
    pub path: String,
}

/// A response the handler hands back.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn ok(body: String) -> Self {
        Self { status: 200, content_type: "text/plain; version=0.0.4; charset=utf-8", body }
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Self { status: 200, content_type: "application/json", body }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn status(status: u16, body: &str) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body: body.to_owned() }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The request handler. Runs on the accept-loop thread; must be quick.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// The running server: one accept-loop thread plus a shutdown flag.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(addr: &str, handler: Arc<Handler>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("hmd-obs-http".into())
            .spawn(move || accept_loop(&listener, &stop_flag, handler.as_ref()))?;
        Ok(Self { addr, stop, thread: Some(thread) })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // the loop blocks in accept(); a self-connection wakes it up so
        // it can observe the flag
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, handler: &Handler) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // a misbehaving client only costs one bounded connection, never
        // the accept loop itself
        let _ = serve_conn(stream, handler);
    }
}

/// Reads one request line (bounded), parses it, and writes the
/// handler's response — or the matching 4xx for protocol violations.
fn serve_conn(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&stream);

    let response = match read_request(&mut reader) {
        Ok(req) if req.method != "GET" => Response::status(405, "only GET is supported\n"),
        Ok(req) => handler(&req),
        Err(status) => Response::status(status, "bad request\n"),
    };
    write_response(&stream, &response)?;
    // drain (bounded) whatever the client is still sending before the
    // socket closes — closing with unread data pending triggers an RST
    // that can destroy the error response in flight
    let mut scratch = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(&mut reader, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

/// Parses the request line and drains headers. Returns the HTTP status
/// to answer with on protocol errors.
fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, u16> {
    let line = read_line_bounded(reader, MAX_REQUEST_LINE)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(400),
    };
    if !version.starts_with("HTTP/1.") || !path.starts_with('/') {
        return Err(400);
    }
    // drain headers up to a modest total so the socket can be answered
    for _ in 0..128 {
        let header = read_line_bounded(reader, MAX_REQUEST_LINE)?;
        if header.is_empty() {
            break;
        }
    }
    Ok(Request { method: method.to_owned(), path: path.to_owned() })
}

/// Reads one CRLF- (or LF-) terminated line of at most `max` bytes.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> Result<String, u16> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err(400), // peer closed mid-line
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                if line.len() >= max {
                    return Err(414);
                }
                line.push(byte[0]);
            }
            Err(_) => return Err(400), // timeout or reset
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| 400)
}

fn write_response(mut stream: &TcpStream, r: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        reason(r.status),
        r.content_type,
        r.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use std::io::Read;

    use super::*;

    fn start_echo() -> HttpServer {
        HttpServer::start(
            "127.0.0.1:0",
            Arc::new(|req: &Request| match req.path.as_str() {
                "/hello" => Response::ok("world\n".into()),
                "/json" => Response::json("{\"ok\":true}".into()),
                _ => Response::status(404, "not found\n"),
            }),
        )
        .expect("bind")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw.as_bytes()).expect("write");
        // half-close so a truncated request reads as EOF, not a stall
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_known_paths_with_content_length() {
        let server = start_echo();
        let reply = roundtrip(server.addr(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("Content-Length: 6\r\n"), "{reply}");
        assert!(reply.ends_with("world\n"), "{reply}");
        let reply = roundtrip(server.addr(), "GET /json HTTP/1.0\r\n\r\n");
        assert!(reply.contains("application/json"), "{reply}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = start_echo();
        let reply = roundtrip(server.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let reply = roundtrip(server.addr(), "POST /hello HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
    }

    #[test]
    fn oversized_request_line_is_414() {
        let server = start_echo();
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(2 * MAX_REQUEST_LINE));
        let reply = roundtrip(server.addr(), &long);
        assert!(reply.starts_with("HTTP/1.1 414"), "{reply}");
    }

    #[test]
    fn partial_and_malformed_requests_get_400() {
        let server = start_echo();
        // truncated: client closes before finishing the request line
        let reply = roundtrip(server.addr(), "GET /hel");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(server.addr(), "NONSENSE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(server.addr(), "GET nopath HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    #[test]
    fn shutdown_joins_and_releases_the_port() {
        let mut server = start_echo();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
        // the port is free again
        let _rebind = TcpListener::bind(addr).expect("port released");
    }
}
