//! Sliding-window aggregators: fixed-slot ring buffers over counters
//! and log₂ histograms.
//!
//! A window is `slots × slot_ns` wide. Time is bucketed into *epochs*
//! (`t / slot_ns`); epoch `e` writes into ring slot `e % slots`, lazily
//! zeroing the slot the first time a new epoch touches it, so stale
//! data expires by being overwritten — there is no timer thread and no
//! allocation after construction. Readers sum every slot whose stored
//! epoch is still inside the window.
//!
//! Time is always an explicit `now_ns` argument rather than a wall
//! clock read: the serving loop drives these aggregators on *stream
//! time* (one fixed tick per processed HPC window), which makes window
//! expiry — and therefore every alert transition built on top —
//! deterministic and unit-testable without sleeps. Callers that want
//! wall-clock windows simply pass `hmd_telemetry::clock::now_ns()`.
//!
//! Concurrency contract: **single writer, any number of readers.** The
//! writer is the serving hot loop; readers are HTTP scrape threads and
//! the alert engine (whose fire edges drive incident capture and SLO
//! recalibration — control flow, not just monitoring). Each slot is
//! therefore a tiny seqlock: the stored epoch is `epoch << 1`, and the
//! writer raises the low *in-reset* bit for the duration of a lazy slot
//! reset. Readers (re)read the tag around the payload and retry while
//! it is odd or changed, so no reader can ever attribute a stale value
//! to a fresh epoch or consume a half-zeroed histogram. Retries are
//! bounded by the reset being a handful of plain stores; the hot
//! no-reset write path is unchanged (one relaxed load, two relaxed
//! adds).

use std::sync::atomic::{fence, AtomicU64, Ordering};

use hmd_telemetry::metrics::{bucket_index, HistogramSnapshot, BUCKETS};

/// Low bit of a slot's epoch tag: raised while the writer zeroes the
/// slot, so readers retry instead of consuming a partial reset.
const IN_RESET: u64 = 1;

/// Shape of a sliding window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Ring slots (window resolution). At least 2.
    pub slots: usize,
    /// Width of one slot in (stream-time) nanoseconds.
    pub slot_ns: u64,
}

impl WindowConfig {
    /// A window of `slots` slots, `slot_ns` wide each.
    ///
    /// # Panics
    ///
    /// Panics when `slots < 2` or `slot_ns == 0`.
    #[must_use]
    pub fn new(slots: usize, slot_ns: u64) -> Self {
        assert!(slots >= 2, "a sliding window needs at least 2 slots");
        assert!(slot_ns > 0, "slot width must be positive");
        Self { slots, slot_ns }
    }

    /// Total window span in nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.slot_ns * self.slots as u64
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Whether a slot stamped `slot_epoch` is still live at `now_epoch`:
    /// the window covers epochs `(now_epoch - slots, now_epoch]`.
    fn live(&self, slot_epoch: u64, now_epoch: u64) -> bool {
        slot_epoch <= now_epoch && now_epoch - slot_epoch < self.slots as u64
    }
}

/// One ring slot of a [`WindowedCounter`].
#[derive(Debug, Default)]
struct CounterSlot {
    /// Seqlock tag: `epoch << 1`, low bit = [`IN_RESET`].
    epoch: AtomicU64,
    value: AtomicU64,
}

impl CounterSlot {
    /// Seqlock read: a `(epoch, value)` pair that is guaranteed
    /// consistent — the value was recorded under exactly that epoch.
    fn read(&self) -> (u64, u64) {
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & IN_RESET == 0 {
                let value = self.value.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.epoch.load(Ordering::Relaxed) == e1 {
                    return (e1 >> 1, value);
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// A monotonically increasing count whose reads cover only the sliding
/// window.
#[derive(Debug)]
pub struct WindowedCounter {
    cfg: WindowConfig,
    slots: Box<[CounterSlot]>,
    /// All-time total, independent of the window.
    total: AtomicU64,
}

impl WindowedCounter {
    /// An empty windowed counter.
    #[must_use]
    pub fn new(cfg: WindowConfig) -> Self {
        let slots: Vec<CounterSlot> = (0..cfg.slots).map(|_| CounterSlot::default()).collect();
        Self { cfg, slots: slots.into_boxed_slice(), total: AtomicU64::new(0) }
    }

    /// The window shape.
    #[must_use]
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Adds `n` at stream time `now_ns`. No allocation; a handful of
    /// relaxed atomic operations.
    #[inline]
    pub fn record_at(&self, now_ns: u64, n: u64) {
        let epoch = self.cfg.epoch(now_ns);
        let tag = epoch << 1;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        if slot.epoch.load(Ordering::Relaxed) != tag {
            // lazy expiry behind the seqlock: the odd tag makes readers
            // retry for the duration of the reset
            slot.epoch.store(tag | IN_RESET, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.value.store(0, Ordering::Relaxed);
            slot.epoch.store(tag, Ordering::Release);
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one at stream time `now_ns`.
    #[inline]
    pub fn inc_at(&self, now_ns: u64) {
        self.record_at(now_ns, 1);
    }

    /// The windowed sum as seen from stream time `now_ns` (slots that
    /// slid out of the window are excluded even though they have not
    /// been overwritten yet).
    #[must_use]
    pub fn sum_at(&self, now_ns: u64) -> u64 {
        let now_epoch = self.cfg.epoch(now_ns);
        self.slots
            .iter()
            .map(|s| {
                let (epoch, value) = s.read();
                if self.cfg.live(epoch, now_epoch) { value } else { 0 }
            })
            .sum()
    }

    /// The all-time total, independent of the window.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// One ring slot of a [`WindowedHistogram`].
#[derive(Debug)]
struct HistSlot {
    /// Seqlock tag: `epoch << 1`, low bit = [`IN_RESET`].
    epoch: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistSlot {
    /// Seqlock read into `buckets`, returning the consistent
    /// `(epoch, sum)` the buckets were captured under.
    fn read(&self, buckets: &mut [u64; BUCKETS]) -> (u64, u64) {
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & IN_RESET == 0 {
                for (dst, b) in buckets.iter_mut().zip(&self.buckets) {
                    *dst = b.load(Ordering::Relaxed);
                }
                let sum = self.sum.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.epoch.load(Ordering::Relaxed) == e1 {
                    return (e1 >> 1, sum);
                }
            }
            std::hint::spin_loop();
        }
    }
}

impl Default for HistSlot {
    fn default() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂ histogram whose merged view covers only the sliding window —
/// the source of windowed latency quantiles.
#[derive(Debug)]
pub struct WindowedHistogram {
    cfg: WindowConfig,
    slots: Box<[HistSlot]>,
}

impl WindowedHistogram {
    /// An empty windowed histogram.
    #[must_use]
    pub fn new(cfg: WindowConfig) -> Self {
        let slots: Vec<HistSlot> = (0..cfg.slots).map(|_| HistSlot::default()).collect();
        Self { cfg, slots: slots.into_boxed_slice() }
    }

    /// The window shape.
    #[must_use]
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Records one observation `v` at stream time `now_ns`. No
    /// allocation on this path.
    #[inline]
    pub fn record_at(&self, now_ns: u64, v: u64) {
        let epoch = self.cfg.epoch(now_ns);
        let tag = epoch << 1;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        if slot.epoch.load(Ordering::Relaxed) != tag {
            slot.epoch.store(tag | IN_RESET, Ordering::Relaxed);
            fence(Ordering::Release);
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
            slot.sum.store(0, Ordering::Relaxed);
            slot.epoch.store(tag, Ordering::Release);
        }
        slot.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merges the live slots into a [`HistogramSnapshot`] as seen from
    /// stream time `now_ns` — directly usable with the telemetry
    /// quantile estimator (`p50`/`p95`/`p99`).
    #[must_use]
    pub fn merged_at(&self, now_ns: u64) -> HistogramSnapshot {
        let now_epoch = self.cfg.epoch(now_ns);
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        let mut captured = [0u64; BUCKETS];
        for slot in &*self.slots {
            let (slot_epoch, slot_sum) = slot.read(&mut captured);
            if !self.cfg.live(slot_epoch, now_epoch) {
                continue;
            }
            for (acc, b) in buckets.iter_mut().zip(&captured) {
                *acc += *b;
            }
            sum = sum.wrapping_add(slot_sum);
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn cfg() -> WindowConfig {
        WindowConfig::new(4, 10 * MS) // 40 ms window, 10 ms slots
    }

    #[test]
    fn window_sums_only_live_slots() {
        let c = WindowedCounter::new(cfg());
        c.record_at(0, 5); // epoch 0
        c.record_at(15 * MS, 3); // epoch 1
        assert_eq!(c.sum_at(15 * MS), 8);
        // at epoch 4 the window is (0, 4]: epoch 0 expired, epoch 1 live
        assert_eq!(c.sum_at(45 * MS), 3);
        // at epoch 5 everything recorded so far has expired
        assert_eq!(c.sum_at(55 * MS), 0);
        assert_eq!(c.total(), 8);
    }

    #[test]
    fn ring_wraparound_reclaims_slots() {
        let c = WindowedCounter::new(cfg());
        c.record_at(0, 100); // epoch 0 → slot 0
        // epoch 4 maps onto slot 0 again; the lazy reset must discard
        // the stale 100 before adding
        c.record_at(40 * MS, 7);
        assert_eq!(c.sum_at(40 * MS), 7);
        assert_eq!(c.total(), 107);
    }

    #[test]
    fn sparse_writes_leave_stale_slots_excluded_not_counted() {
        let c = WindowedCounter::new(cfg());
        c.record_at(5 * MS, 9); // epoch 0
        // jump far ahead without writing: slot 0 still physically holds
        // 9, but its epoch is out of the window at epoch 40
        assert_eq!(c.sum_at(400 * MS), 0);
        // writing at epoch 40 (slot 0) reclaims it
        c.inc_at(400 * MS);
        assert_eq!(c.sum_at(400 * MS), 1);
    }

    #[test]
    fn boundary_epoch_is_inclusive_of_now_and_exclusive_of_oldest() {
        let w = cfg();
        let c = WindowedCounter::new(w);
        c.record_at(0, 1); // epoch 0
        // epoch 3: window covers epochs (−1, 3] → 0 still live
        assert_eq!(c.sum_at(3 * 10 * MS), 1);
        // epoch 4: window covers (0, 4] → 0 expired
        assert_eq!(c.sum_at(4 * 10 * MS), 0);
    }

    #[test]
    fn histogram_window_expires_and_quantiles_follow() {
        let h = WindowedHistogram::new(cfg());
        for _ in 0..100 {
            h.record_at(0, 1000); // epoch 0: slow phase
        }
        for _ in 0..100 {
            h.record_at(25 * MS, 10); // epoch 2: fast phase
        }
        let both = h.merged_at(25 * MS);
        assert_eq!(both.count, 200);
        // two epochs later the slow phase has slid out
        let fast_only = h.merged_at(45 * MS);
        assert_eq!(fast_only.count, 100);
        assert!(fast_only.p95() < 20.0, "p95 {}", fast_only.p95());
        assert!(both.p95() > 500.0, "p95 {}", both.p95());
    }

    #[test]
    fn histogram_wraparound_resets_buckets_and_sum() {
        let h = WindowedHistogram::new(cfg());
        h.record_at(0, 1 << 20); // epoch 0 → slot 0
        h.record_at(40 * MS, 2); // epoch 4 → slot 0 again, must reset
        let s = h.merged_at(40 * MS);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2);
    }

    #[test]
    fn time_moving_backwards_within_process_is_tolerated() {
        // readers may observe a now_ns slightly behind the writer's;
        // sums must not underflow or include future slots
        let c = WindowedCounter::new(cfg());
        c.record_at(35 * MS, 4); // epoch 3
        assert_eq!(c.sum_at(5 * MS), 0); // epoch 0 reader: slot is "future"
        assert_eq!(c.sum_at(35 * MS), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 slots")]
    fn rejects_degenerate_window() {
        let _ = WindowConfig::new(1, MS);
    }

    /// Seqlock soundness under a real race: a writer storms through
    /// epochs (forcing a lazy reset on nearly every slot touch, each
    /// with many observations to zero) while readers continuously merge
    /// snapshots. Every observation has the same value `V`, so any
    /// consistent snapshot satisfies `sum ≈ count × V` up to a few
    /// in-flight observations — while a torn reset (buckets zeroed,
    /// stale sum, or vice versa) would skew the identity by a whole
    /// slot's worth of observations.
    #[test]
    fn concurrent_readers_never_observe_a_partially_reset_slot() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        const V: u64 = 1000;
        const PER_EPOCH: u64 = 64;
        const EPOCHS: u64 = 4000;

        let h = WindowedHistogram::new(cfg());
        let now = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worst = 0u64;
                        while !done.load(Ordering::Acquire) {
                            let s = h.merged_at(now.load(Ordering::Relaxed));
                            let skew = s.sum.abs_diff(s.count * V);
                            worst = worst.max(skew);
                        }
                        worst
                    })
                })
                .collect();
            for e in 0..EPOCHS {
                let t = e * 10 * MS;
                now.store(t, Ordering::Relaxed);
                for _ in 0..PER_EPOCH {
                    h.record_at(t, V);
                }
            }
            done.store(true, Ordering::Release);
            for r in readers {
                // a reader that straddles single in-flight observations
                // can be off by at most one observation per slot; a torn
                // reset would show up as ~PER_EPOCH × V
                let worst = r.join().expect("reader panicked");
                let slots = cfg().slots as u64;
                assert!(
                    worst <= slots * V,
                    "reader saw a torn slot: worst sum/count skew {worst} (> {} allowed)",
                    slots * V
                );
            }
        });
    }
}
