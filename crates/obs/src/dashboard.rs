//! The `/dashboard` page: a single self-contained HTML document (inline
//! CSS + JS, no external assets — the zero-dependency policy applies to
//! the browser side too) that polls `/history.json` and renders SVG
//! sparklines of the multi-resolution history tiers, so a human can see
//! a slow adversarial drift without standing up a metrics stack.

/// The static dashboard document served at `/dashboard`.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>HMD serving dashboard</title>
<style>
  body { background: #14171c; color: #d8dee9; font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.2rem; font-weight: 600; }
  #meta { color: #7b8494; margin-bottom: 1rem; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(20rem, 1fr)); gap: 1rem; }
  .card { background: #1c2128; border: 1px solid #2c323c; border-radius: 8px; padding: 0.8rem 1rem; }
  .card h2 { font-size: 0.85rem; font-weight: 500; color: #9aa4b2; margin: 0 0 0.3rem; }
  .card .last { font-size: 1.3rem; font-variant-numeric: tabular-nums; }
  svg { display: block; width: 100%; height: 48px; margin-top: 0.4rem; }
  polyline { fill: none; stroke: #7aa2f7; stroke-width: 1.5; }
  .err { color: #e06c75; }
</style>
</head>
<body>
<h1>HMD continuous observability</h1>
<div id="meta">loading /history.json…</div>
<div id="charts" class="grid"></div>
<script>
"use strict";
const SERIES = [
  { title: "detection rate",   unit: "",    value: p => p.tp + p.fn > 0 ? p.tp / (p.tp + p.fn) : NaN },
  { title: "adversarial flag rate", unit: "", value: p => p.samples > 0 ? p.flags / p.samples : NaN },
  { title: "false positive rate", unit: "", value: p => p.fp + p.tn > 0 ? p.fp / (p.fp + p.tn) : NaN },
  { title: "latency p95",      unit: "ms",  value: p => p.latency_p95_ns / 1e6 },
  { title: "model latency p95", unit: "ms", value: p => p.model_latency_p95_ns / 1e6 },
  { title: "critic score mean", unit: "",   value: p => p.samples > 0 ? p.critic_sum / p.samples : NaN },
  { title: "quarantine depth", unit: "",    value: p => p.quarantine_depth },
  { title: "model generation", unit: "",    value: p => p.generation },
];

function sparkline(values) {
  const w = 300, h = 48, pad = 2;
  const finite = values.filter(Number.isFinite);
  if (finite.length === 0) return "<svg viewBox='0 0 300 48'></svg>";
  const lo = Math.min(...finite), hi = Math.max(...finite);
  const span = hi - lo || 1;
  const pts = values.map((v, i) => {
    if (!Number.isFinite(v)) return null;
    const x = pad + (w - 2 * pad) * (values.length > 1 ? i / (values.length - 1) : 0.5);
    const y = h - pad - (h - 2 * pad) * ((v - lo) / span);
    return x.toFixed(1) + "," + y.toFixed(1);
  }).filter(Boolean).join(" ");
  return "<svg viewBox='0 0 " + w + " " + h + "' preserveAspectRatio='none'>" +
         "<polyline points='" + pts + "'/></svg>";
}

function fmt(v, unit) {
  if (!Number.isFinite(v)) return "–";
  const s = Math.abs(v) >= 100 ? v.toFixed(0) : v.toPrecision(3);
  return s + (unit ? " " + unit : "");
}

function render(doc) {
  // longest available merged view: fine tier, falling back to coarser
  const tiers = doc.merged || {};
  const points = (tiers.fine && tiers.fine.length ? tiers.fine
                 : tiers.mid && tiers.mid.length ? tiers.mid
                 : tiers.coarse || []);
  const meta = document.getElementById("meta");
  if (points.length === 0) {
    meta.textContent = "no history yet (fine tier fills every " +
      (doc.tiers ? doc.tiers.fine_every : 64) + " windows)";
    return;
  }
  const last = points[points.length - 1];
  meta.textContent = "schema " + doc.schema + " · " + (doc.per_shard || []).length +
    " shard(s) · " + points.length + " fine point(s) · stream sample " + last.sample_end;
  const charts = document.getElementById("charts");
  charts.innerHTML = SERIES.map(s => {
    const values = points.map(s.value);
    return "<div class='card'><h2>" + s.title + "</h2>" +
      "<div class='last'>" + fmt(values[values.length - 1], s.unit) + "</div>" +
      sparkline(values) + "</div>";
  }).join("");
}

async function tick() {
  try {
    const res = await fetch("/history.json", { cache: "no-store" });
    if (!res.ok) throw new Error("HTTP " + res.status);
    render(await res.json());
  } catch (e) {
    document.getElementById("meta").innerHTML =
      "<span class='err'>history fetch failed: " + e + "</span>";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    /// The page must be fully self-contained: no external scripts,
    /// stylesheets, images or fonts — it has to render from an
    /// air-gapped serving host.
    #[test]
    fn dashboard_is_self_contained() {
        assert!(DASHBOARD_HTML.starts_with("<!doctype html>"));
        for forbidden in ["http://", "https://", "<link", "src=", "@import", "url("] {
            assert!(
                !DASHBOARD_HTML.contains(forbidden),
                "dashboard references an external asset via {forbidden:?}"
            );
        }
        // and it actually consumes the history endpoint
        assert!(DASHBOARD_HTML.contains("/history.json"));
    }
}
