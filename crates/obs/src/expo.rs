//! Composes the `/metrics` page: the process-wide telemetry registry
//! (via [`hmd_telemetry::prometheus_text`]) plus the serving-specific
//! windowed series and alert states, all in Prometheus text exposition
//! format 0.0.4.

use std::fmt::Write as _;

use hmd_telemetry::{prometheus_histogram_with_exemplars, prometheus_text};

use crate::alert::AlertEngine;
use crate::monitor::MonitorSnapshot;

fn gauge(out: &mut String, name: &str, help: &str, v: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {v}");
}

/// Renders the full `/metrics` page for one monitor snapshot and the
/// current alert state. Undefined rates (empty window) are exposed as
/// `NaN`, the Prometheus convention for "no data".
#[must_use]
pub fn render_metrics(snap: &MonitorSnapshot, engine: &AlertEngine) -> String {
    render_page(snap, &[engine], &[])
}

/// Renders the fleet `/metrics` page: the aggregate series (same names
/// and meaning as [`render_metrics`], merged across shards) plus
/// per-shard `hmd_serving_shard_*{shard="i"}` series. Alert state
/// merges conservatively — a rule is firing if it fires on *any*
/// shard, transitions sum, and the fleet is healthy only when every
/// shard is.
///
/// # Panics
///
/// Panics when `shards` and `engines` lengths differ or are empty.
#[must_use]
pub fn render_metrics_fleet(shards: &[MonitorSnapshot], engines: &[&AlertEngine]) -> String {
    assert!(!shards.is_empty(), "fleet page needs at least one shard");
    assert_eq!(shards.len(), engines.len(), "one alert engine per shard");
    let merged = MonitorSnapshot::merged(shards);
    render_page(&merged, engines, shards)
}

fn render_page(snap: &MonitorSnapshot, engines: &[&AlertEngine], shards: &[MonitorSnapshot]) -> String {
    let mut out = String::with_capacity(4096);

    counter(
        &mut out,
        "hmd_serving_samples_total",
        "HPC windows classified since startup.",
        snap.total_samples,
    );
    gauge(
        &mut out,
        "hmd_serving_window_samples",
        "HPC windows classified inside the sliding window.",
        to_f64(snap.samples),
    );
    gauge(
        &mut out,
        "hmd_serving_detection_rate",
        "Windowed detected-attack fraction over ground-truth attacks.",
        snap.detection_rate().unwrap_or(f64::NAN),
    );
    gauge(
        &mut out,
        "hmd_serving_adversarial_flag_rate",
        "Windowed adversarial-predictor flag fraction over samples.",
        snap.flag_rate().unwrap_or(f64::NAN),
    );
    gauge(
        &mut out,
        "hmd_serving_accuracy",
        "Windowed classification accuracy.",
        snap.accuracy().unwrap_or(f64::NAN),
    );
    gauge(
        &mut out,
        "hmd_serving_false_positive_rate",
        "Windowed false-positive fraction over benign samples.",
        snap.false_positive_rate().unwrap_or(f64::NAN),
    );
    gauge(
        &mut out,
        "hmd_serving_drift_events_window",
        "Integrity drift events inside the sliding window.",
        to_f64(snap.drifts),
    );

    let _ = writeln!(
        out,
        "# HELP hmd_serving_latency_ns Windowed end-to-end inference latency distribution (ns)."
    );
    out.push_str(&prometheus_histogram_with_exemplars(
        "hmd_serving_latency_ns",
        &snap.latency,
        &snap.latency_exemplars,
    ));

    let _ = writeln!(
        out,
        "# HELP hmd_serving_model_latency Windowed model-only classification latency distribution (ns)."
    );
    out.push_str(&prometheus_histogram_with_exemplars(
        "hmd_serving_model_latency",
        &snap.model_latency,
        &snap.model_latency_exemplars,
    ));

    // per-shard series: label-separated so a dashboard can tell one
    // shard's stall or drift from fleet-wide trouble
    if !shards.is_empty() {
        let _ = writeln!(
            out,
            "# HELP hmd_serving_shard_samples_total HPC windows classified per shard since startup."
        );
        let _ = writeln!(out, "# TYPE hmd_serving_shard_samples_total counter");
        for (i, s) in shards.iter().enumerate() {
            let _ = writeln!(out, "hmd_serving_shard_samples_total{{shard=\"{i}\"}} {}", s.total_samples);
        }
        let _ = writeln!(
            out,
            "# HELP hmd_serving_shard_window_samples HPC windows inside the shard's sliding window."
        );
        let _ = writeln!(out, "# TYPE hmd_serving_shard_window_samples gauge");
        for (i, s) in shards.iter().enumerate() {
            let _ = writeln!(out, "hmd_serving_shard_window_samples{{shard=\"{i}\"}} {}", s.samples);
        }
        let _ = writeln!(
            out,
            "# HELP hmd_serving_shard_detection_rate Windowed detection rate per shard."
        );
        let _ = writeln!(out, "# TYPE hmd_serving_shard_detection_rate gauge");
        for (i, s) in shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "hmd_serving_shard_detection_rate{{shard=\"{i}\"}} {}",
                s.detection_rate().unwrap_or(f64::NAN)
            );
        }
    }

    let _ = writeln!(out, "# HELP hmd_serving_alert_firing Alert state per SLO rule (1 = firing).");
    let _ = writeln!(out, "# TYPE hmd_serving_alert_firing gauge");
    for (i, rule) in engines[0].rules().iter().enumerate() {
        let firing = engines.iter().any(|e| e.is_firing(i));
        let _ = writeln!(
            out,
            "hmd_serving_alert_firing{{rule=\"{}\",severity=\"{}\"}} {}",
            rule.name,
            rule.severity,
            u8::from(firing)
        );
    }
    // per-rule SLO state: the same level information as
    // hmd_serving_alert_firing but keyed by rule alone, so dashboards
    // can join it against the per-rule transition counters below
    let _ = writeln!(out, "# HELP hmd_serving_slo_firing SLO rule state (1 = firing on any shard).");
    let _ = writeln!(out, "# TYPE hmd_serving_slo_firing gauge");
    for (i, rule) in engines[0].rules().iter().enumerate() {
        let firing = engines.iter().any(|e| e.is_firing(i));
        let _ = writeln!(
            out,
            "hmd_serving_slo_firing{{rule=\"{}\"}} {}",
            rule.name,
            u8::from(firing)
        );
    }
    counter(
        &mut out,
        "hmd_serving_alert_transitions_total",
        "Fire and resolve edges across all SLO rules and shards since startup.",
        engines.iter().map(|e| e.transitions()).sum(),
    );
    // the per-rule breakdown of the aggregate above, summed across
    // shards (fleet shards share one rule shape)
    for (i, rule) in engines[0].rules().iter().enumerate() {
        let total: u64 = engines
            .iter()
            .map(|e| e.rule_transitions().get(i).copied().unwrap_or(0))
            .sum();
        let _ = writeln!(
            out,
            "hmd_serving_alert_transitions_total{{rule=\"{}\"}} {total}",
            rule.name
        );
    }
    gauge(
        &mut out,
        "hmd_serving_healthy",
        "1 while no critical SLO rule is firing on any shard.",
        f64::from(u8::from(engines.iter().all(|e| e.healthy()))),
    );

    // the process-wide registry last: detector/predictor/pipeline
    // counters and the per-model latency histograms live there
    out.push_str(&prometheus_text());
    out
}

/// Appends the model-lifecycle series the serving endpoint exposes: the
/// serving model generation (bumped at every retraining boundary, 0
/// until the first), the promotions that actually swapped refreshed
/// models in, and the quarantined rows absorbed into the training
/// database. Always rendered — a deployment with retraining disabled
/// reports a flat generation 0, so dashboards and `obs_check` can rely
/// on the series existing.
pub fn append_promotion_series(out: &mut String, generation: u64, swaps: u64, absorbed: u64) {
    gauge(
        out,
        "hmd_serving_model_generation",
        "Model generation currently serving (0 = initial training).",
        to_f64(generation),
    );
    counter(
        out,
        "hmd_serving_model_swaps_total",
        "Retraining promotions that hot-swapped refreshed models in.",
        swaps,
    );
    counter(
        out,
        "hmd_serving_retrain_absorbed_total",
        "Quarantined samples absorbed into the training set by retraining rounds.",
        absorbed,
    );
}

/// Appends the forensics series: incident bundles captured on SLO fire
/// edges (the flight-recorder snapshots `/incidents` serves) and the
/// calibration-pass rows the adversarial predictor flagged. Always
/// rendered — a deployment without incidents reports 0, so `obs_check`
/// can rely on the series existing.
pub fn append_incident_series(out: &mut String, incidents: u64, calibration_quarantined: u64) {
    counter(
        out,
        "hmd_serving_incidents_total",
        "Incident bundles captured on SLO alert fire edges.",
        incidents,
    );
    counter(
        out,
        "hmd_serving_calibration_quarantined_total",
        "Calibration-pass rows the adversarial predictor flagged (counted, never retrained).",
        calibration_quarantined,
    );
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(v: u64) -> f64 {
    v as f64
}

/// Parses an exposition sample value (`+Inf`/`-Inf`/`NaN` spellings
/// included).
fn parse_value(value: &str) -> Option<f64> {
    match value {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => value.parse::<f64>().ok(),
    }
}

/// The value of label `key` inside a `name{…}` series spelling.
fn label_value<'a>(series: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("{key}=\"");
    let start = series.find(&needle)? + needle.len();
    let end = series[start..].find('"')?;
    Some(&series[start..start + end])
}

/// Validates a text-exposition page the way `obs_check` and the tests
/// do: every non-comment line must be `name[{labels}] value` with a
/// legal metric name and a numeric (or `+Inf`/`-Inf`/`NaN`) value,
/// optionally followed by an OpenMetrics exemplar
/// (` # {labels} value`, buckets only). Histogram `_bucket` series
/// must additionally be cumulative (non-decreasing in exposition
/// order) and closed by a `le="+Inf"` bucket.
///
/// # Errors
///
/// Returns the first malformed line verbatim (or the name of an
/// unclosed histogram).
pub fn validate_exposition(page: &str) -> Result<(), String> {
    // per-histogram bucket state: (base name, last cumulative count,
    // le="+Inf" closure seen)
    let mut hists: Vec<(String, f64, bool)> = Vec::new();
    for line in page.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // OpenMetrics exemplar suffix: `series value # {labels} value`
        let (sample_part, exemplar) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        let (series, value) =
            sample_part.rsplit_once(' ').ok_or_else(|| format!("no value: {line}"))?;
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        if name.is_empty() || hmd_telemetry::prometheus_name(name) != name {
            return Err(format!("bad metric name: {line}"));
        }
        if name_end < series.len() && !series.ends_with('}') {
            return Err(format!("unterminated labels: {line}"));
        }
        let value = parse_value(value).ok_or_else(|| format!("bad sample value: {line}"))?;
        if let Some(e) = exemplar {
            if !name.ends_with("_bucket") {
                return Err(format!("exemplar on a non-bucket series: {line}"));
            }
            let (labels, ev) =
                e.split_once(' ').ok_or_else(|| format!("exemplar without a value: {line}"))?;
            if !(labels.starts_with('{') && labels.ends_with('}')) {
                return Err(format!("bad exemplar labels: {line}"));
            }
            if parse_value(ev).is_none() {
                return Err(format!("bad exemplar value: {line}"));
            }
        }
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = label_value(series, "le")
                .ok_or_else(|| format!("bucket without an le label: {line}"))?;
            let entry = match hists.iter_mut().find(|(b, _, _)| b == base) {
                Some(entry) => entry,
                None => {
                    hists.push((base.to_owned(), 0.0, false));
                    hists.last_mut().expect("just pushed")
                }
            };
            if value < entry.1 {
                return Err(format!("bucket counts are not cumulative: {line}"));
            }
            entry.1 = value;
            if le == "+Inf" {
                entry.2 = true;
            }
        }
    }
    for (base, _, closed) in &hists {
        if !closed {
            return Err(format!("histogram {base} is missing its le=\"+Inf\" bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::default_rules;
    use crate::monitor::{SampleRecord, ServingMonitor};
    use crate::window::WindowConfig;

    fn page() -> String {
        let m = ServingMonitor::new(WindowConfig::new(4, 10_000_000));
        for i in 0..50 {
            m.record_at(
                0,
                SampleRecord {
                    truth_attack: i % 2 == 0,
                    verdict_attack: i % 2 == 0,
                    flagged_adversarial: i % 10 == 0,
                    latency_ns: 1000 + i,
                    model_latency_ns: 900 + i,
                    sample: i,
                    generation: 1,
                },
            );
        }
        let engine = AlertEngine::new(default_rules());
        render_metrics(&m.snapshot_at(0), &engine)
    }

    #[test]
    fn page_contains_required_series_and_validates() {
        let p = page();
        for needle in [
            "hmd_serving_detection_rate 1",
            "hmd_serving_adversarial_flag_rate 0.1",
            "hmd_serving_latency_ns_bucket{le=\"+Inf\"} 50",
            "hmd_serving_latency_ns_p95",
            "hmd_serving_model_latency_bucket{le=\"+Inf\"} 50",
            "hmd_serving_model_latency_p99",
            "hmd_serving_alert_firing{rule=\"detection_rate\",severity=\"critical\"} 0",
            "hmd_serving_slo_firing{rule=\"detection_rate\"} 0",
            "hmd_serving_slo_firing{rule=\"adversarial_flag_rate\"} 0",
            "hmd_serving_alert_transitions_total{rule=\"latency_p95\"} 0",
            "hmd_serving_healthy 1",
            "hmd_serving_samples_total 50",
        ] {
            assert!(p.contains(needle), "missing {needle:?} in:\n{p}");
        }
        validate_exposition(&p).unwrap();
    }

    #[test]
    fn incident_series_render_and_validate() {
        let mut p = String::new();
        append_incident_series(&mut p, 2, 17);
        for needle in [
            "# TYPE hmd_serving_incidents_total counter",
            "hmd_serving_incidents_total 2",
            "hmd_serving_calibration_quarantined_total 17",
        ] {
            assert!(p.contains(needle), "missing {needle:?} in:\n{p}");
        }
        validate_exposition(&p).unwrap();
    }

    #[test]
    fn empty_window_rates_render_as_nan() {
        let m = ServingMonitor::new(WindowConfig::new(4, 10_000_000));
        let engine = AlertEngine::new(default_rules());
        let p = render_metrics(&m.snapshot_at(0), &engine);
        assert!(p.contains("hmd_serving_detection_rate NaN"), "{p}");
        validate_exposition(&p).unwrap();
    }

    #[test]
    fn fleet_page_merges_aggregates_and_labels_shards() {
        let mk = |n: u64, verdict: bool| {
            let m = ServingMonitor::new(WindowConfig::new(4, 10_000_000));
            for _ in 0..n {
                m.record_at(
                    0,
                    SampleRecord {
                        truth_attack: true,
                        verdict_attack: verdict,
                        flagged_adversarial: false,
                        latency_ns: 500,
                        model_latency_ns: 400,
                        sample: 0,
                        generation: 0,
                    },
                );
            }
            m.snapshot_at(0)
        };
        let engines = [AlertEngine::new(default_rules()), AlertEngine::new(default_rules())];
        let refs: Vec<&AlertEngine> = engines.iter().collect();
        let p = render_metrics_fleet(&[mk(30, true), mk(20, false)], &refs);
        for needle in [
            "hmd_serving_samples_total 50", // aggregate sums the shards
            "hmd_serving_detection_rate 0.6",
            "hmd_serving_shard_samples_total{shard=\"0\"} 30",
            "hmd_serving_shard_samples_total{shard=\"1\"} 20",
            "hmd_serving_shard_detection_rate{shard=\"1\"} 0",
            "hmd_serving_latency_ns_bucket{le=\"+Inf\"} 50",
            "hmd_serving_healthy 1",
        ] {
            assert!(p.contains(needle), "missing {needle:?} in:\n{p}");
        }
        validate_exposition(&p).unwrap();
    }

    #[test]
    fn promotion_series_render_and_validate() {
        let mut p = String::new();
        append_promotion_series(&mut p, 3, 2, 41);
        for needle in [
            "hmd_serving_model_generation 3",
            "# TYPE hmd_serving_model_swaps_total counter",
            "hmd_serving_model_swaps_total 2",
            "hmd_serving_retrain_absorbed_total 41",
        ] {
            assert!(p.contains(needle), "missing {needle:?} in:\n{p}");
        }
        validate_exposition(&p).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("no_value_here").is_err());
        assert!(validate_exposition("1bad_name 3").is_err());
        assert!(validate_exposition("x{le=\"1\" 3").is_err());
        assert!(validate_exposition("x three").is_err());
        assert!(validate_exposition("x 3\n\n# comment\ny NaN").is_ok());
    }

    #[test]
    fn validator_enforces_bucket_monotonicity_and_inf_closure() {
        let good = "h_bucket{le=\"1\"} 2\nh_bucket{le=\"4\"} 5\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(good).is_ok());
        let decreasing = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"4\"} 2\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(decreasing).unwrap_err().contains("cumulative"));
        let unclosed = "h_bucket{le=\"1\"} 2\nh_bucket{le=\"4\"} 5\n";
        assert!(validate_exposition(unclosed).unwrap_err().contains("+Inf"));
        let unlabeled = "h_bucket{x=\"1\"} 2\n";
        assert!(validate_exposition(unlabeled).unwrap_err().contains("le label"));
    }

    #[test]
    fn validator_accepts_exemplars_on_buckets_only() {
        let good = "h_bucket{le=\"4\"} 2 # {sample=\"9\",shard=\"0\",generation=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 2\n";
        assert!(validate_exposition(good).is_ok());
        let on_gauge = "g 2 # {sample=\"9\"} 3\n";
        assert!(validate_exposition(on_gauge).unwrap_err().contains("non-bucket"));
        let no_value = "h_bucket{le=\"+Inf\"} 2 # {sample=\"9\"}\n";
        assert!(validate_exposition(no_value).is_err());
        let bad_labels = "h_bucket{le=\"+Inf\"} 2 # sample=9 3\n";
        assert!(validate_exposition(bad_labels).unwrap_err().contains("exemplar labels"));
    }

    #[test]
    fn serving_page_carries_exemplars_that_validate() {
        let p = page();
        // the last sample landing in each bucket is annotated; sample 49
        // (latency 1049, generation 1) must be the exemplar of its bucket
        assert!(
            p.contains("# {sample=\"49\",shard=\"0\",generation=\"1\"} 1049"),
            "missing latest-sample exemplar in:\n{p}"
        );
        validate_exposition(&p).unwrap();
    }
}
