//! Multi-resolution metrics history: the longitudinal memory the
//! instantaneous sliding windows lack.
//!
//! A [`MetricsHistory`] is a preallocated, RRD-style set of ring tiers:
//! the serving loop folds every [`FINE_EVERY`] processed windows into
//! one fine-tier [`HistoryPoint`]; every [`FOLD`] fine points fold into
//! one mid-tier point (counters summed exactly, gauges and quantiles
//! maxed), and every [`FOLD`] mid points into one coarse point — so a
//! slow adversarial drift that never trips an instantaneous SLO
//! threshold is still visible across thousands of windows and multiple
//! retraining generations at a bounded, constant memory cost.
//!
//! Everything is driven by *stream time* and per-interval counters, so
//! the non-wall-clock content of every tier is a pure function of the
//! seed (the workspace determinism suite pins the `/history.json`
//! bytes across batch sizes, thread counts and fleet widths).
//!
//! The write path is allocation-free: a session-local
//! [`HistoryAccumulator`] absorbs one `SampleRecord` per window with
//! plain integer adds, and the periodic flush writes a `Copy` point
//! into a preallocated ring slot under a briefly-held mutex (locked
//! once per [`FINE_EVERY`] windows, not per window).

use std::sync::Mutex;

use hmd_telemetry::metrics::{bucket_index, HistogramSnapshot, BUCKETS};
use hmd_util::json::Json;

use crate::monitor::SampleRecord;

/// Windows per fine-tier point.
pub const FINE_EVERY: u64 = 64;
/// Finer points folded into one coarser point (fine → mid → coarse).
pub const FOLD: usize = 16;
/// Fine-tier ring capacity (points).
pub const FINE_CAP: usize = 256;
/// Mid-tier ring capacity (points).
pub const MID_CAP: usize = 256;
/// Coarse-tier ring capacity (points).
pub const COARSE_CAP: usize = 64;

/// Schema identifier embedded in every `/history.json` document.
pub const HISTORY_SCHEMA: &str = "hmd-history-v1";

/// One history interval: confusion counters plus gauges sampled at the
/// interval's end. `Copy` and flat so ring writes never allocate.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HistoryPoint {
    /// Exclusive end of the interval, as a global sample index: a fine
    /// point with `sample_end = 128` covers windows `[64, 128)`.
    pub sample_end: u64,
    /// Stream time at the interval's end.
    pub t_ns: u64,
    /// Windows in the interval (fold conserves this exactly).
    pub samples: u64,
    /// True positives in the interval.
    pub tp: u64,
    /// False negatives in the interval.
    pub fn_: u64,
    /// False positives in the interval.
    pub fp: u64,
    /// True negatives in the interval.
    pub tn: u64,
    /// Adversarial-predictor flags in the interval.
    pub flags: u64,
    /// Quarantine-ring depth at the interval's end (a gauge; the ring
    /// is fleet-shared, so this is interleaving-dependent and scrubbed
    /// from determinism comparisons).
    pub quarantine_depth: u64,
    /// Model generation at the interval's end.
    pub generation: u64,
    /// Sum of critic (adversarial-predictor reward) scores over the
    /// interval; divide by `samples` for the mean.
    pub critic_sum: f64,
    /// End-to-end latency p50 over the interval, nanoseconds.
    pub latency_p50_ns: f64,
    /// End-to-end latency p95 over the interval, nanoseconds.
    pub latency_p95_ns: f64,
    /// End-to-end latency p99 over the interval, nanoseconds.
    pub latency_p99_ns: f64,
    /// Model-only latency p95 over the interval, nanoseconds.
    pub model_latency_p95_ns: f64,
}

impl HistoryPoint {
    const ZERO: HistoryPoint = HistoryPoint {
        sample_end: 0,
        t_ns: 0,
        samples: 0,
        tp: 0,
        fn_: 0,
        fp: 0,
        tn: 0,
        flags: 0,
        quarantine_depth: 0,
        generation: 0,
        critic_sum: 0.0,
        latency_p50_ns: 0.0,
        latency_p95_ns: 0.0,
        latency_p99_ns: 0.0,
        model_latency_p95_ns: 0.0,
    };

    /// Folds `other` (a later finer point) into `self`: counters sum
    /// exactly, gauges and quantiles take the max, and the interval end
    /// advances to `other`'s.
    fn fold_in(&mut self, other: &HistoryPoint) {
        self.sample_end = other.sample_end;
        self.t_ns = other.t_ns;
        self.samples += other.samples;
        self.tp += other.tp;
        self.fn_ += other.fn_;
        self.fp += other.fp;
        self.tn += other.tn;
        self.flags += other.flags;
        self.quarantine_depth = self.quarantine_depth.max(other.quarantine_depth);
        self.generation = self.generation.max(other.generation);
        self.critic_sum += other.critic_sum;
        self.latency_p50_ns = self.latency_p50_ns.max(other.latency_p50_ns);
        self.latency_p95_ns = self.latency_p95_ns.max(other.latency_p95_ns);
        self.latency_p99_ns = self.latency_p99_ns.max(other.latency_p99_ns);
        self.model_latency_p95_ns = self.model_latency_p95_ns.max(other.model_latency_p95_ns);
    }

    /// Merges a same-`sample_end` point from another shard: counters
    /// sum, the (fleet-shared) quarantine gauge and generation take the
    /// max, quantiles take the worst shard's value.
    fn merge_shard(&mut self, other: &HistoryPoint) {
        debug_assert_eq!(self.sample_end, other.sample_end);
        self.t_ns = self.t_ns.max(other.t_ns);
        self.samples += other.samples;
        self.tp += other.tp;
        self.fn_ += other.fn_;
        self.fp += other.fp;
        self.tn += other.tn;
        self.flags += other.flags;
        self.quarantine_depth = self.quarantine_depth.max(other.quarantine_depth);
        self.generation = self.generation.max(other.generation);
        self.critic_sum += other.critic_sum;
        self.latency_p50_ns = self.latency_p50_ns.max(other.latency_p50_ns);
        self.latency_p95_ns = self.latency_p95_ns.max(other.latency_p95_ns);
        self.latency_p99_ns = self.latency_p99_ns.max(other.latency_p99_ns);
        self.model_latency_p95_ns = self.model_latency_p95_ns.max(other.model_latency_p95_ns);
    }

    /// The point as an ordered JSON object (fixed key order — the
    /// serialization is part of the determinism surface).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sample_end".to_owned(), Json::UInt(self.sample_end)),
            ("t_ns".to_owned(), Json::UInt(self.t_ns)),
            ("samples".to_owned(), Json::UInt(self.samples)),
            ("tp".to_owned(), Json::UInt(self.tp)),
            ("fn".to_owned(), Json::UInt(self.fn_)),
            ("fp".to_owned(), Json::UInt(self.fp)),
            ("tn".to_owned(), Json::UInt(self.tn)),
            ("flags".to_owned(), Json::UInt(self.flags)),
            ("quarantine_depth".to_owned(), Json::UInt(self.quarantine_depth)),
            ("generation".to_owned(), Json::UInt(self.generation)),
            ("critic_sum".to_owned(), Json::Float(self.critic_sum)),
            ("latency_p50_ns".to_owned(), Json::Float(self.latency_p50_ns)),
            ("latency_p95_ns".to_owned(), Json::Float(self.latency_p95_ns)),
            ("latency_p99_ns".to_owned(), Json::Float(self.latency_p99_ns)),
            ("model_latency_p95_ns".to_owned(), Json::Float(self.model_latency_p95_ns)),
        ])
    }
}

/// Session-local per-interval accumulator. Lives inside the serving
/// loop (no sharing, no atomics): `observe` is a handful of integer
/// adds per window, and `flush` drains it into a [`HistoryPoint`]
/// every [`FINE_EVERY`] windows.
#[derive(Debug)]
pub struct HistoryAccumulator {
    samples: u64,
    tp: u64,
    fn_: u64,
    fp: u64,
    tn: u64,
    flags: u64,
    critic_sum: f64,
    latency: [u64; BUCKETS],
    latency_sum: u64,
    model_latency: [u64; BUCKETS],
    model_latency_sum: u64,
}

impl Default for HistoryAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: 0,
            tp: 0,
            fn_: 0,
            fp: 0,
            tn: 0,
            flags: 0,
            critic_sum: 0.0,
            latency: [0; BUCKETS],
            latency_sum: 0,
            model_latency: [0; BUCKETS],
            model_latency_sum: 0,
        }
    }

    /// Absorbs one classified window plus its critic score.
    #[inline]
    pub fn observe(&mut self, s: &SampleRecord, critic_score: f64) {
        self.samples += 1;
        match (s.truth_attack, s.verdict_attack) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
        if s.flagged_adversarial {
            self.flags += 1;
        }
        self.critic_sum += critic_score;
        self.latency[bucket_index(s.latency_ns)] += 1;
        self.latency_sum += s.latency_ns;
        self.model_latency[bucket_index(s.model_latency_ns)] += 1;
        self.model_latency_sum += s.model_latency_ns;
    }

    /// Windows absorbed since the last flush.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.samples
    }

    /// Drains the interval into a [`HistoryPoint`] ending at
    /// `sample_end`/`t_ns`, resetting the accumulator.
    pub fn flush(
        &mut self,
        sample_end: u64,
        t_ns: u64,
        quarantine_depth: u64,
        generation: u64,
    ) -> HistoryPoint {
        let latency = HistogramSnapshot {
            buckets: self.latency,
            count: self.latency.iter().sum(),
            sum: self.latency_sum,
        };
        let model_latency = HistogramSnapshot {
            buckets: self.model_latency,
            count: self.model_latency.iter().sum(),
            sum: self.model_latency_sum,
        };
        let point = HistoryPoint {
            sample_end,
            t_ns,
            samples: self.samples,
            tp: self.tp,
            fn_: self.fn_,
            fp: self.fp,
            tn: self.tn,
            flags: self.flags,
            quarantine_depth,
            generation,
            critic_sum: self.critic_sum,
            latency_p50_ns: latency.p50(),
            latency_p95_ns: latency.p95(),
            latency_p99_ns: latency.p99(),
            model_latency_p95_ns: model_latency.p95(),
        };
        *self = Self::new();
        point
    }
}

/// One preallocated ring tier.
#[derive(Debug)]
struct Tier {
    points: Vec<HistoryPoint>,
    head: usize,
    len: usize,
    /// Fold accumulator toward the next-coarser tier.
    pending: HistoryPoint,
    pending_n: usize,
}

impl Tier {
    fn new(cap: usize) -> Self {
        Self {
            points: vec![HistoryPoint::ZERO; cap],
            head: 0,
            len: 0,
            pending: HistoryPoint::ZERO,
            pending_n: 0,
        }
    }

    /// Pushes a point; returns a folded next-coarser point once every
    /// [`FOLD`] pushes.
    fn push(&mut self, p: HistoryPoint) -> Option<HistoryPoint> {
        let cap = self.points.len();
        self.points[self.head] = p;
        self.head = (self.head + 1) % cap;
        self.len = (self.len + 1).min(cap);
        if self.pending_n == 0 {
            self.pending = p;
        } else {
            self.pending.fold_in(&p);
        }
        self.pending_n += 1;
        if self.pending_n == FOLD {
            let folded = self.pending;
            self.pending = HistoryPoint::ZERO;
            self.pending_n = 0;
            Some(folded)
        } else {
            None
        }
    }

    /// Live points, oldest first.
    fn snapshot(&self) -> Vec<HistoryPoint> {
        let cap = self.points.len();
        (0..self.len)
            .map(|i| self.points[(self.head + cap - self.len + i) % cap])
            .collect()
    }
}

#[derive(Debug)]
struct HistoryInner {
    fine: Tier,
    mid: Tier,
    coarse: Tier,
}

/// A point-in-time copy of one shard's history tiers, oldest first.
#[derive(Clone, Debug, Default)]
pub struct TierSnapshot {
    /// Fine tier: one point per [`FINE_EVERY`] windows.
    pub fine: Vec<HistoryPoint>,
    /// Mid tier: one point per `FINE_EVERY × FOLD` windows.
    pub mid: Vec<HistoryPoint>,
    /// Coarse tier: one point per `FINE_EVERY × FOLD²` windows.
    pub coarse: Vec<HistoryPoint>,
}

/// The per-shard multi-resolution history ring set. Single writer (the
/// serving loop, via [`MetricsHistory::push`] once per [`FINE_EVERY`]
/// windows), concurrent readers (HTTP scrape threads) — coordinated by
/// a mutex that is held only for a ring write or a tier copy.
#[derive(Debug)]
pub struct MetricsHistory {
    inner: Mutex<HistoryInner>,
}

impl Default for MetricsHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHistory {
    /// Empty tiers at the default capacities ([`FINE_CAP`],
    /// [`MID_CAP`], [`COARSE_CAP`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_caps(FINE_CAP, MID_CAP, COARSE_CAP)
    }

    /// Empty tiers with explicit ring capacities (tests exercise wrap
    /// without pushing hundreds of points).
    ///
    /// # Panics
    ///
    /// Panics when any capacity is zero.
    #[must_use]
    pub fn with_caps(fine: usize, mid: usize, coarse: usize) -> Self {
        assert!(fine > 0 && mid > 0 && coarse > 0, "tier capacities must be positive");
        Self {
            inner: Mutex::new(HistoryInner {
                fine: Tier::new(fine),
                mid: Tier::new(mid),
                coarse: Tier::new(coarse),
            }),
        }
    }

    /// Pushes one fine-tier point, folding into the mid and coarse
    /// tiers as their fold windows complete. No allocation: ring slots
    /// are preallocated and the point is `Copy`.
    pub fn push(&self, point: HistoryPoint) {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        if let Some(mid_point) = inner.fine.push(point) {
            if let Some(coarse_point) = inner.mid.push(mid_point) {
                let _ = inner.coarse.push(coarse_point);
            }
        }
    }

    /// Copies the live tiers, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> TierSnapshot {
        let inner = self.inner.lock().expect("history lock poisoned");
        TierSnapshot {
            fine: inner.fine.snapshot(),
            mid: inner.mid.snapshot(),
            coarse: inner.coarse.snapshot(),
        }
    }
}

fn points_json(points: &[HistoryPoint]) -> Json {
    Json::Arr(points.iter().map(HistoryPoint::to_json).collect())
}

/// Merges per-shard tiers pointwise: for every `sample_end` present in
/// shard 0's tier, the merged point sums counters (and takes the max
/// of gauges/quantiles) across every shard that has a point with that
/// `sample_end`. Shards drain the same per-shard sample budget, so at
/// rest the tiers align exactly; mid-run a lagging shard simply
/// contributes to fewer trailing points.
fn merged_tier(shards: &[TierSnapshot], select: fn(&TierSnapshot) -> &[HistoryPoint]) -> Vec<HistoryPoint> {
    let Some((first, rest)) = shards.split_first() else {
        return Vec::new();
    };
    select(first)
        .iter()
        .map(|p| {
            let mut merged = *p;
            for other in rest {
                if let Some(q) =
                    select(other).iter().find(|q| q.sample_end == p.sample_end)
                {
                    merged.merge_shard(q);
                }
            }
            merged
        })
        .collect()
}

/// The full `/history.json` document: tier shape, the fleet-merged
/// view, and every shard's own tiers.
#[must_use]
pub fn history_json(shards: &[TierSnapshot]) -> Json {
    let tier_json = |t: &TierSnapshot| {
        Json::Obj(vec![
            ("fine".to_owned(), points_json(&t.fine)),
            ("mid".to_owned(), points_json(&t.mid)),
            ("coarse".to_owned(), points_json(&t.coarse)),
        ])
    };
    let merged = TierSnapshot {
        fine: merged_tier(shards, |t| &t.fine),
        mid: merged_tier(shards, |t| &t.mid),
        coarse: merged_tier(shards, |t| &t.coarse),
    };
    let per_shard: Vec<Json> = shards
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Json::Obj(vec![
                ("shard".to_owned(), Json::UInt(i as u64)),
                ("fine".to_owned(), points_json(&t.fine)),
                ("mid".to_owned(), points_json(&t.mid)),
                ("coarse".to_owned(), points_json(&t.coarse)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(HISTORY_SCHEMA.to_owned())),
        (
            "tiers".to_owned(),
            Json::Obj(vec![
                ("fine_every".to_owned(), Json::UInt(FINE_EVERY)),
                ("fold".to_owned(), Json::UInt(FOLD as u64)),
            ]),
        ),
        ("merged".to_owned(), tier_json(&merged)),
        ("per_shard".to_owned(), Json::Arr(per_shard)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(truth: bool, verdict: bool, flagged: bool, latency: u64) -> SampleRecord {
        SampleRecord {
            truth_attack: truth,
            verdict_attack: verdict,
            flagged_adversarial: flagged,
            latency_ns: latency,
            model_latency_ns: latency / 2,
            sample: 0,
            generation: 0,
        }
    }

    /// A fine point per FOLD pushes whose counters are the exact sums.
    #[test]
    fn fine_to_coarse_fold_conserves_counts_exactly() {
        let h = MetricsHistory::with_caps(8, 8, 8);
        let mut acc = HistoryAccumulator::new();
        let mut pushed_samples = 0u64;
        let mut pushed_tp = 0u64;
        let mut pushed_flags = 0u64;
        // FOLD² fine points: enough to close one full coarse fold
        for i in 0..(FOLD * FOLD) as u64 {
            for k in 0..FINE_EVERY {
                let attack = (i + k) % 3 == 0;
                let flagged = (i + k) % 7 == 0;
                acc.observe(&rec(attack, attack, flagged, 100 + k), 0.5);
                pushed_samples += 1;
                if attack {
                    pushed_tp += 1;
                }
                if flagged {
                    pushed_flags += 1;
                }
            }
            let end = (i + 1) * FINE_EVERY;
            h.push(acc.flush(end, end * 10, i % 5, i / 100));
        }
        let snap = h.snapshot();
        // the fine ring wrapped (cap 8 < 256 pushed); mid kept the last
        // 8 of 16 folded points; coarse closed exactly one fold
        assert_eq!(snap.fine.len(), 8);
        assert_eq!(snap.mid.len(), 8);
        assert_eq!(snap.coarse.len(), 1);
        let c = &snap.coarse[0];
        // the single coarse point covers every pushed window exactly once
        assert_eq!(c.samples, pushed_samples);
        assert_eq!(c.samples, c.tp + c.fn_ + c.fp + c.tn, "confusion cells must partition samples");
        assert_eq!(c.tp, pushed_tp, "tp not conserved through two fold levels");
        assert_eq!(c.flags, pushed_flags, "flags not conserved through two fold levels");
        assert_eq!(c.sample_end, FOLD as u64 * FOLD as u64 * FINE_EVERY);
        // critic_sum sums exactly: 0.5 per window
        assert!((c.critic_sum - 0.5 * pushed_samples as f64).abs() < 1e-6);
        // each mid point likewise conserves its FOLD fine points
        for m in &snap.mid {
            assert_eq!(m.samples, FINE_EVERY * FOLD as u64);
            assert_eq!(m.samples, m.tp + m.fn_ + m.fp + m.tn);
        }
    }

    #[test]
    fn accumulator_quantiles_come_from_the_interval_alone() {
        let mut acc = HistoryAccumulator::new();
        for _ in 0..90 {
            acc.observe(&rec(false, false, false, 1000), 0.0);
        }
        for _ in 0..10 {
            acc.observe(&rec(false, false, false, 1 << 20), 0.0);
        }
        let p = acc.flush(100, 1000, 0, 0);
        assert!(p.latency_p50_ns < 2048.0, "p50 {}", p.latency_p50_ns);
        assert!(p.latency_p99_ns > 500_000.0, "p99 {}", p.latency_p99_ns);
        // flush resets: the next interval starts empty
        assert_eq!(acc.pending(), 0);
        let p2 = acc.flush(200, 2000, 0, 0);
        assert_eq!(p2.samples, 0);
    }

    #[test]
    fn merged_tier_sums_counters_across_aligned_shards() {
        let mk = |tp: u64| {
            let mut p = HistoryPoint::ZERO;
            p.sample_end = 64;
            p.samples = 64;
            p.tp = tp;
            p.tn = 64 - tp;
            p.quarantine_depth = tp; // gauge: merged takes the max
            p
        };
        let a = TierSnapshot { fine: vec![mk(10)], mid: vec![], coarse: vec![] };
        let b = TierSnapshot { fine: vec![mk(3)], mid: vec![], coarse: vec![] };
        let doc = history_json(&[a, b]).to_string();
        let parsed = Json::parse(&doc).expect("valid json");
        let merged_fine = parsed
            .get("merged")
            .and_then(|m| m.get("fine"))
            .and_then(Json::as_arr)
            .expect("merged fine tier");
        assert_eq!(merged_fine.len(), 1);
        let p = &merged_fine[0];
        assert_eq!(p.get("samples").and_then(Json::as_f64), Some(128.0));
        assert_eq!(p.get("tp").and_then(Json::as_f64), Some(13.0));
        assert_eq!(p.get("quarantine_depth").and_then(Json::as_f64), Some(10.0));
        // per-shard views survive unmerged
        let shards = parsed.get("per_shard").and_then(Json::as_arr).expect("per_shard");
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[1].get("fine").and_then(Json::as_arr).unwrap()[0]
                .get("tp")
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }
}
