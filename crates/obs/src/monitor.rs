//! The serving monitor: one struct owning every windowed aggregate the
//! online detection service needs — sample/confusion counters, the
//! adversarial-flag counter, integrity-drift counter, and the latency
//! histogram — with a plain-value snapshot for the alert engine and the
//! `/metrics` endpoint.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use hmd_telemetry::metrics::{bucket_index, HistogramSnapshot, BUCKETS};
use hmd_telemetry::Exemplar;

use crate::window::{WindowConfig, WindowedCounter, WindowedHistogram};

/// One classified sample, as the hot loop reports it. `Copy` and flat:
/// building it costs nothing.
#[derive(Copy, Clone, Debug)]
pub struct SampleRecord {
    /// Ground truth: the sample is malicious (malware or adversarial).
    pub truth_attack: bool,
    /// The detector's verdict flagged it as an attack (any kind).
    pub verdict_attack: bool,
    /// The adversarial predictor specifically flagged it.
    pub flagged_adversarial: bool,
    /// End-to-end wall-clock latency for the sample in nanoseconds
    /// (ingest + classification).
    pub latency_ns: u64,
    /// Model-only classification latency in nanoseconds (the detector
    /// call, excluding ingest) — what latency SLOs gate on.
    pub model_latency_ns: u64,
    /// Global sample index of the window — exemplar identity linking a
    /// latency bucket back to the flight-recorder entry.
    pub sample: u64,
    /// Model generation the window was classified under.
    pub generation: u64,
}

/// One seqlock-guarded exemplar cell (see [`ExemplarStore`]).
#[derive(Debug, Default)]
struct ExemplarSlot {
    /// Seqlock sequence: 0 = never written, odd = write in progress.
    seq: AtomicU64,
    sample: AtomicU64,
    generation: AtomicU64,
    value: AtomicU64,
}

/// Per-bucket exemplars for one latency histogram: each log₂ bucket
/// remembers the last `(sample, generation, value)` observation that
/// landed in it. Single writer (the hot loop), concurrent readers
/// (scrape threads) — each cell is a tiny seqlock, so a reader never
/// sees a half-written exemplar.
#[derive(Debug)]
pub struct ExemplarStore {
    slots: [ExemplarSlot; BUCKETS],
}

impl Default for ExemplarStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ExemplarStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self { slots: std::array::from_fn(|_| ExemplarSlot::default()) }
    }

    /// Records an observation into its bucket's cell. A handful of
    /// relaxed stores; no allocation.
    #[inline]
    pub fn record(&self, value: u64, sample: u64, generation: u64) {
        let slot = &self.slots[bucket_index(value)];
        slot.seq.fetch_add(1, Ordering::Relaxed); // odd: write in progress
        fence(Ordering::Release);
        slot.sample.store(sample, Ordering::Relaxed);
        slot.generation.store(generation, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    /// The last exemplar that landed in `bucket`, `None` before the
    /// first observation. The `shard` field is left at 0 — the snapshot
    /// layer stamps it.
    #[must_use]
    pub fn get(&self, bucket: usize) -> Option<Exemplar> {
        let slot = &self.slots[bucket];
        loop {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None;
            }
            if s1 & 1 == 0 {
                let sample = slot.sample.load(Ordering::Relaxed);
                let generation = slot.generation.load(Ordering::Relaxed);
                let value = slot.value.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    return Some(Exemplar { sample, shard: 0, generation, value });
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// A point-in-time view of the windowed aggregates. All fields are
/// plain values ([`HistogramSnapshot`] is a fixed array), so taking a
/// snapshot allocates nothing.
#[derive(Clone, Debug)]
pub struct MonitorSnapshot {
    /// Stream time the snapshot was taken at.
    pub t_ns: u64,
    /// Samples in the window.
    pub samples: u64,
    /// True positives in the window (attack, detected).
    pub tp: u64,
    /// False negatives in the window (attack, missed).
    pub fn_: u64,
    /// False positives in the window (benign, flagged).
    pub fp: u64,
    /// True negatives in the window (benign, passed).
    pub tn: u64,
    /// Predictor adversarial flags in the window.
    pub flags: u64,
    /// Integrity drift events in the window.
    pub drifts: u64,
    /// Windowed end-to-end latency distribution.
    pub latency: HistogramSnapshot,
    /// Windowed model-only (classification) latency distribution.
    pub model_latency: HistogramSnapshot,
    /// All-time processed samples.
    pub total_samples: u64,
    /// Per-bucket exemplars for the end-to-end latency histogram (the
    /// last window that landed in each bucket, shard-stamped).
    pub latency_exemplars: [Option<Exemplar>; BUCKETS],
    /// Per-bucket exemplars for the model-only latency histogram.
    pub model_latency_exemplars: [Option<Exemplar>; BUCKETS],
}

#[allow(clippy::cast_precision_loss)]
fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

impl MonitorSnapshot {
    /// Windowed detection rate: detected attacks over ground-truth
    /// attacks. `None` while the window holds no attacks.
    #[must_use]
    pub fn detection_rate(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Windowed adversarial-flag rate: predictor flags over samples.
    /// `None` while the window is empty.
    #[must_use]
    pub fn flag_rate(&self) -> Option<f64> {
        ratio(self.flags, self.samples)
    }

    /// Windowed accuracy over the full confusion window. `None` while
    /// the window is empty.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        ratio(self.tp + self.tn, self.samples)
    }

    /// Windowed false-positive rate. `None` without benign samples.
    #[must_use]
    pub fn false_positive_rate(&self) -> Option<f64> {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Windowed end-to-end latency p95 in milliseconds.
    #[must_use]
    pub fn latency_p95_ms(&self) -> f64 {
        self.latency.p95() / 1e6
    }

    /// Windowed model-only (classification) latency p95 in
    /// milliseconds — the value latency SLO rules gate on.
    #[must_use]
    pub fn model_latency_p95_ms(&self) -> f64 {
        self.model_latency.p95() / 1e6
    }

    /// Merges per-shard snapshots into one fleet-wide view: counters
    /// sum, latency histograms merge bucket-wise, and the stream time
    /// is the furthest shard's clock. An empty slice merges to an empty
    /// snapshot.
    #[must_use]
    pub fn merged(shards: &[MonitorSnapshot]) -> MonitorSnapshot {
        let mut out = MonitorSnapshot {
            t_ns: 0,
            samples: 0,
            tp: 0,
            fn_: 0,
            fp: 0,
            tn: 0,
            flags: 0,
            drifts: 0,
            latency: HistogramSnapshot {
                buckets: [0; hmd_telemetry::metrics::BUCKETS],
                count: 0,
                sum: 0,
            },
            model_latency: HistogramSnapshot {
                buckets: [0; hmd_telemetry::metrics::BUCKETS],
                count: 0,
                sum: 0,
            },
            total_samples: 0,
            latency_exemplars: [None; BUCKETS],
            model_latency_exemplars: [None; BUCKETS],
        };
        for s in shards {
            out.t_ns = out.t_ns.max(s.t_ns);
            out.samples += s.samples;
            out.tp += s.tp;
            out.fn_ += s.fn_;
            out.fp += s.fp;
            out.tn += s.tn;
            out.flags += s.flags;
            out.drifts += s.drifts;
            out.total_samples += s.total_samples;
            for (dst, src) in out.latency.buckets.iter_mut().zip(&s.latency.buckets) {
                *dst += src;
            }
            out.latency.count += s.latency.count;
            out.latency.sum += s.latency.sum;
            for (dst, src) in
                out.model_latency.buckets.iter_mut().zip(&s.model_latency.buckets)
            {
                *dst += src;
            }
            out.model_latency.count += s.model_latency.count;
            out.model_latency.sum += s.model_latency.sum;
            for (dst, src) in out.latency_exemplars.iter_mut().zip(&s.latency_exemplars) {
                merge_exemplar(dst, *src);
            }
            for (dst, src) in
                out.model_latency_exemplars.iter_mut().zip(&s.model_latency_exemplars)
            {
                merge_exemplar(dst, *src);
            }
        }
        out
    }
}

/// Keeps the most recent (highest global sample index) of two bucket
/// exemplars; ties keep the incumbent, so the merge is order-stable.
fn merge_exemplar(dst: &mut Option<Exemplar>, src: Option<Exemplar>) {
    match (&dst, src) {
        (None, Some(e)) => *dst = Some(e),
        (Some(d), Some(e)) if e.sample > d.sample => *dst = Some(e),
        _ => {}
    }
}

/// The aggregate the serving loop writes into and everything else reads
/// from. Single writer (the serving loop), concurrent readers (HTTP
/// scrape threads, the alert evaluator) — see the [`crate::window`]
/// contract.
#[derive(Debug)]
pub struct ServingMonitor {
    shard: usize,
    samples: WindowedCounter,
    tp: WindowedCounter,
    fn_: WindowedCounter,
    fp: WindowedCounter,
    tn: WindowedCounter,
    flags: WindowedCounter,
    drifts: WindowedCounter,
    latency: WindowedHistogram,
    model_latency: WindowedHistogram,
    latency_exemplars: ExemplarStore,
    model_latency_exemplars: ExemplarStore,
}

impl ServingMonitor {
    /// A monitor whose windows all share `cfg`, reporting as shard 0.
    #[must_use]
    pub fn new(cfg: WindowConfig) -> Self {
        Self::with_shard(cfg, 0)
    }

    /// A monitor whose exemplars are stamped with `shard`.
    #[must_use]
    pub fn with_shard(cfg: WindowConfig, shard: usize) -> Self {
        Self {
            shard,
            samples: WindowedCounter::new(cfg),
            tp: WindowedCounter::new(cfg),
            fn_: WindowedCounter::new(cfg),
            fp: WindowedCounter::new(cfg),
            tn: WindowedCounter::new(cfg),
            flags: WindowedCounter::new(cfg),
            drifts: WindowedCounter::new(cfg),
            latency: WindowedHistogram::new(cfg),
            model_latency: WindowedHistogram::new(cfg),
            latency_exemplars: ExemplarStore::new(),
            model_latency_exemplars: ExemplarStore::new(),
        }
    }

    /// The shared window shape.
    #[must_use]
    pub fn window(&self) -> WindowConfig {
        self.samples.config()
    }

    /// Records one classified sample at stream time `now_ns`. The hot
    /// path: a fixed number of relaxed atomic operations, no allocation.
    #[inline]
    pub fn record_at(&self, now_ns: u64, s: SampleRecord) {
        self.samples.inc_at(now_ns);
        match (s.truth_attack, s.verdict_attack) {
            (true, true) => self.tp.inc_at(now_ns),
            (true, false) => self.fn_.inc_at(now_ns),
            (false, true) => self.fp.inc_at(now_ns),
            (false, false) => self.tn.inc_at(now_ns),
        }
        if s.flagged_adversarial {
            self.flags.inc_at(now_ns);
        }
        self.latency.record_at(now_ns, s.latency_ns);
        self.model_latency.record_at(now_ns, s.model_latency_ns);
        self.latency_exemplars.record(s.latency_ns, s.sample, s.generation);
        self.model_latency_exemplars.record(s.model_latency_ns, s.sample, s.generation);
    }

    /// Records one integrity drift event at stream time `now_ns`.
    pub fn record_drift_at(&self, now_ns: u64) {
        self.drifts.inc_at(now_ns);
    }

    /// The windowed aggregates as seen from stream time `now_ns`.
    #[must_use]
    pub fn snapshot_at(&self, now_ns: u64) -> MonitorSnapshot {
        let stamp = |e: Option<Exemplar>| e.map(|mut e| {
            e.shard = self.shard;
            e
        });
        MonitorSnapshot {
            t_ns: now_ns,
            samples: self.samples.sum_at(now_ns),
            tp: self.tp.sum_at(now_ns),
            fn_: self.fn_.sum_at(now_ns),
            fp: self.fp.sum_at(now_ns),
            tn: self.tn.sum_at(now_ns),
            flags: self.flags.sum_at(now_ns),
            drifts: self.drifts.sum_at(now_ns),
            latency: self.latency.merged_at(now_ns),
            model_latency: self.model_latency.merged_at(now_ns),
            total_samples: self.samples.total(),
            latency_exemplars: std::array::from_fn(|b| stamp(self.latency_exemplars.get(b))),
            model_latency_exemplars: std::array::from_fn(|b| {
                stamp(self.model_latency_exemplars.get(b))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn monitor() -> ServingMonitor {
        ServingMonitor::new(WindowConfig::new(4, 10 * MS))
    }

    fn rec(truth: bool, verdict: bool, flagged: bool) -> SampleRecord {
        SampleRecord {
            truth_attack: truth,
            verdict_attack: verdict,
            flagged_adversarial: flagged,
            latency_ns: 1000,
            model_latency_ns: 800,
            sample: 0,
            generation: 0,
        }
    }

    #[test]
    fn rates_track_the_confusion_window() {
        let m = monitor();
        let t = 5 * MS;
        m.record_at(t, rec(true, true, false)); // tp
        m.record_at(t, rec(true, false, false)); // fn
        m.record_at(t, rec(false, false, false)); // tn
        m.record_at(t, rec(false, true, true)); // fp, flagged
        let s = m.snapshot_at(t);
        assert_eq!(s.samples, 4);
        assert_eq!((s.tp, s.fn_, s.fp, s.tn), (1, 1, 1, 1));
        assert!((s.detection_rate().unwrap() - 0.5).abs() < 1e-12);
        assert!((s.flag_rate().unwrap() - 0.25).abs() < 1e-12);
        assert!((s.accuracy().unwrap() - 0.5).abs() < 1e-12);
        assert!((s.false_positive_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_rates_are_none_not_zero() {
        let m = monitor();
        let s = m.snapshot_at(0);
        assert_eq!(s.detection_rate(), None);
        assert_eq!(s.flag_rate(), None);
        m.record_at(0, rec(false, false, false));
        // samples but no attacks: flag rate defined, detection rate not
        let s = m.snapshot_at(0);
        assert_eq!(s.detection_rate(), None);
        assert_eq!(s.flag_rate(), Some(0.0));
    }

    #[test]
    fn old_phase_slides_out_of_the_rates() {
        let m = monitor();
        for _ in 0..10 {
            m.record_at(0, rec(true, false, false)); // missed attacks
        }
        assert_eq!(m.snapshot_at(0).detection_rate(), Some(0.0));
        for _ in 0..10 {
            m.record_at(45 * MS, rec(true, true, false));
        }
        // epoch 4: the misses at epoch 0 expired
        let s = m.snapshot_at(45 * MS);
        assert_eq!(s.detection_rate(), Some(1.0));
        assert_eq!(s.total_samples, 20);
    }

    #[test]
    fn merged_sums_shards_and_takes_the_furthest_clock() {
        let a = monitor();
        let b = monitor();
        a.record_at(5 * MS, rec(true, true, true)); // tp + flag
        b.record_at(25 * MS, rec(false, true, false)); // fp
        b.record_at(25 * MS, rec(false, false, false)); // tn
        let m = MonitorSnapshot::merged(&[a.snapshot_at(5 * MS), b.snapshot_at(25 * MS)]);
        assert_eq!(m.t_ns, 25 * MS);
        assert_eq!(m.samples, 3);
        assert_eq!((m.tp, m.fn_, m.fp, m.tn), (1, 0, 1, 1));
        assert_eq!(m.flags, 1);
        assert_eq!(m.total_samples, 3);
        assert_eq!(m.latency.count, 3);
        assert_eq!(m.latency.sum, 3000);
        assert_eq!(m.model_latency.count, 3);
        assert_eq!(m.model_latency.sum, 2400);
        assert!(MonitorSnapshot::merged(&[]).samples == 0);
    }

    #[test]
    fn exemplars_remember_the_last_window_per_bucket_and_merge_by_recency() {
        let a = ServingMonitor::with_shard(WindowConfig::new(4, 10 * MS), 0);
        let b = ServingMonitor::with_shard(WindowConfig::new(4, 10 * MS), 1);
        let at = |sample: u64, latency: u64| SampleRecord {
            truth_attack: false,
            verdict_attack: false,
            flagged_adversarial: false,
            latency_ns: latency,
            model_latency_ns: latency,
            sample,
            generation: 2,
        };
        a.record_at(0, at(5, 1000));
        a.record_at(0, at(9, 1000)); // same bucket: the later one wins
        b.record_at(0, at(7, 1000));
        b.record_at(0, at(8, 1 << 30)); // a different bucket entirely
        let bucket = hmd_telemetry::metrics::bucket_index(1000);
        let sa = a.snapshot_at(0);
        let e = sa.latency_exemplars[bucket].expect("bucket has an exemplar");
        assert_eq!((e.sample, e.shard, e.generation, e.value), (9, 0, 2, 1000));
        // untouched buckets carry no exemplar
        assert!(sa.latency_exemplars[40].is_none());
        let merged = MonitorSnapshot::merged(&[sa, b.snapshot_at(0)]);
        let m = merged.latency_exemplars[bucket].expect("merged keeps the bucket");
        assert_eq!((m.sample, m.shard), (9, 0), "sample 9 beats shard 1's sample 7");
        let big = merged.latency_exemplars[hmd_telemetry::metrics::bucket_index(1 << 30)]
            .expect("shard 1's bucket survives the merge");
        assert_eq!((big.sample, big.shard), (8, 1));
    }

    #[test]
    fn drift_events_are_windowed() {
        let m = monitor();
        m.record_drift_at(0);
        m.record_drift_at(0);
        assert_eq!(m.snapshot_at(0).drifts, 2);
        assert_eq!(m.snapshot_at(60 * MS).drifts, 0);
    }
}
