//! Container-style isolation for clean HPC capture.
//!
//! The paper runs each application inside an LXC container because LXC
//! shares the host kernel and exposes the *real* PMU, while full
//! virtualization (VirtualBox et al.) emulates HPCs and corrupts their
//! values. [`IsolationMode`] models both options: `LxcDirect` flushes
//! micro-architectural state between applications and passes counters
//! through untouched; `VmEmulated` injects the bias and jitter emulated
//! counters exhibit.

use hmd_util::rng::prelude::*;

use crate::dist::Normal;
use crate::machine::{Machine, MachineConfig, RunningWorkload};
use crate::perf::{PerfConfig, PerfSampler, Sample};
use crate::workload::WorkloadProfile;

/// How the profiled application is isolated from the measurement host.
#[derive(Copy, Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum IsolationMode {
    /// LXC-style OS-level container: direct PMU access, clean counters.
    LxcDirect,
    /// Full-VM emulation: counters are emulated with multiplicative bias
    /// and per-read jitter.
    VmEmulated {
        /// Systematic multiplicative bias of emulated counters (e.g.
        /// `0.15` = reads run 15% hot on average).
        bias: f64,
        /// Relative standard deviation of per-read jitter.
        jitter: f64,
    },
    /// LXC counters, but a co-tenant workload shares the machine: between
    /// every sampled window the co-tenant executes one window of its own,
    /// polluting the shared L2/LLC/TLB/predictor state — the
    /// noisy-neighbour effect containerized collection is meant to avoid.
    SharedMachine {
        /// The co-running workload class.
        neighbour: crate::workload::WorkloadClass,
    },
}

/// An isolated profiling container: one machine + one sampler.
///
/// # Example
///
/// ```
/// use hmd_sim::container::{Container, IsolationMode};
/// use hmd_sim::machine::MachineConfig;
/// use hmd_sim::perf::PerfConfig;
/// use hmd_sim::workload::{WorkloadClass, WorkloadProfile};
///
/// let cfg = MachineConfig { slice_instructions: 2_000, ..MachineConfig::default() };
/// let mut c = Container::new(cfg, PerfConfig::default(), IsolationMode::LxcDirect, 7);
/// let profile = WorkloadProfile::canonical(WorkloadClass::Worm);
/// let samples = c.run_app(&profile, 1, 3);
/// assert_eq!(samples.len(), 3);
/// ```
#[derive(Debug)]
pub struct Container {
    machine: Machine,
    sampler: PerfSampler,
    mode: IsolationMode,
    rng: StdRng,
    apps_run: u64,
    seed: u64,
    neighbour: Option<RunningWorkload>,
}

impl Container {
    /// Creates a container.
    ///
    /// # Panics
    ///
    /// Panics on invalid machine or perf configuration (see
    /// [`Machine::new`] and [`PerfSampler::new`]).
    #[must_use]
    pub fn new(
        machine: MachineConfig,
        perf: PerfConfig,
        mode: IsolationMode,
        seed: u64,
    ) -> Self {
        let neighbour = match mode {
            IsolationMode::SharedMachine { neighbour } => Some(RunningWorkload::new(
                crate::workload::WorkloadProfile::canonical(neighbour),
                seed ^ 0x6E65_6967,
            )),
            _ => None,
        };
        Self {
            machine: Machine::new(machine),
            sampler: PerfSampler::new(perf, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            mode,
            rng: StdRng::seed_from_u64(seed.wrapping_add(1)),
            apps_run: 0,
            seed,
            neighbour,
        }
    }

    /// The isolation mode.
    #[must_use]
    pub fn mode(&self) -> IsolationMode {
        self.mode
    }

    /// Number of applications profiled so far.
    #[must_use]
    pub fn apps_run(&self) -> u64 {
        self.apps_run
    }

    /// Profiles one application instance: flushes machine state (clean
    /// container start), runs `warmup` unrecorded windows, then records
    /// `windows` samples, post-processed according to the isolation mode.
    pub fn run_app(
        &mut self,
        profile: &WorkloadProfile,
        warmup: usize,
        windows: usize,
    ) -> Vec<Sample> {
        self.machine.flush();
        let workload_seed = self
            .seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(self.apps_run);
        self.apps_run += 1;
        let mut running = RunningWorkload::new(profile.clone(), workload_seed);
        let mut samples = if let Some(neighbour) = self.neighbour.as_mut() {
            // interleave: neighbour window (uncounted) before each sampled
            // window, evicting shared micro-architectural state
            let period = self.sampler.config().sample_period_ms;
            for _ in 0..warmup {
                let _ = self.machine.run_window(neighbour, period);
                let _ = self.machine.run_window(&mut running, period);
            }
            let mut out = Vec::with_capacity(windows);
            for _ in 0..windows {
                let _ = self.machine.run_window(neighbour, period);
                out.push(self.sampler.sample(&mut self.machine, &mut running));
            }
            out
        } else {
            self.sampler.profile(&mut self.machine, &mut running, warmup, windows)
        };
        if let IsolationMode::VmEmulated { bias, jitter } = self.mode {
            let noise = Normal::new(bias, jitter);
            for s in &mut samples {
                for v in &mut s.values {
                    *v = (*v * (1.0 + noise.sample(&mut self.rng))).max(0.0);
                }
            }
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::HpcEvent;
    use crate::workload::WorkloadClass;

    fn small_machine() -> MachineConfig {
        MachineConfig { slice_instructions: 3_000, ..MachineConfig::default() }
    }

    #[test]
    fn lxc_counters_pass_through() {
        let perf = PerfConfig {
            events: vec![HpcEvent::TaskClock],
            ..PerfConfig::default()
        };
        let mut c = Container::new(small_machine(), perf, IsolationMode::LxcDirect, 1);
        let samples =
            c.run_app(&WorkloadProfile::canonical(WorkloadClass::Botnet), 0, 2);
        // software event untouched under LXC (utilization-scaled, exact ns)
        let tc = samples[0].values[0];
        assert!(tc > 0.0 && tc <= 1e7);
        assert_eq!(tc.fract(), 0.0);
    }

    #[test]
    fn vm_emulation_biases_counters() {
        let perf = PerfConfig {
            events: vec![HpcEvent::TaskClock],
            ..PerfConfig::default()
        };
        let profile = WorkloadProfile::canonical(WorkloadClass::Botnet);
        let mut vm = Container::new(
            small_machine(),
            perf,
            IsolationMode::VmEmulated { bias: 0.2, jitter: 0.05 },
            1,
        );
        let mut lxc = Container::new(
            small_machine(),
            PerfConfig { events: vec![HpcEvent::TaskClock], ..PerfConfig::default() },
            IsolationMode::LxcDirect,
            1,
        );
        let vm_vals: Vec<f64> =
            (0..40).flat_map(|_| vm.run_app(&profile, 0, 1)).map(|s| s.values[0]).collect();
        let lxc_vals: Vec<f64> =
            (0..40).flat_map(|_| lxc.run_app(&profile, 0, 1)).map(|s| s.values[0]).collect();
        let vm_mean = vm_vals.iter().sum::<f64>() / vm_vals.len() as f64;
        let lxc_mean = lxc_vals.iter().sum::<f64>() / lxc_vals.len() as f64;
        let ratio = vm_mean / lxc_mean;
        assert!(
            (ratio - 1.2).abs() < 0.1,
            "VM bias should shift readings ~20%, got ratio {ratio}"
        );
    }

    #[test]
    fn each_app_gets_distinct_generator_state() {
        let mut c = Container::new(
            small_machine(),
            PerfConfig::default(),
            IsolationMode::LxcDirect,
            5,
        );
        let p = WorkloadProfile::canonical(WorkloadClass::Virus);
        let a = c.run_app(&p, 0, 1);
        let b = c.run_app(&p, 0, 1);
        assert_ne!(a[0].values, b[0].values);
        assert_eq!(c.apps_run(), 2);
    }

    #[test]
    fn shared_machine_pollutes_counters() {
        use crate::events::HpcEvent;
        let perf = PerfConfig {
            events: vec![HpcEvent::LlcLoadMisses],
            ..PerfConfig::default()
        };
        // the victim's hot set fits the cache hierarchy, so its hit rate
        // depends on state retained between windows — exactly what a
        // streaming co-tenant destroys. Needs long-enough slices to
        // actually reach warm steady state.
        let machine = MachineConfig { slice_instructions: 20_000, ..MachineConfig::default() };
        let profile = WorkloadProfile::canonical(WorkloadClass::TextEditor);
        let mean_llc_misses = |mode: IsolationMode| {
            let mut c = Container::new(machine, perf.clone(), mode, 11);
            let samples = c.run_app(&profile, 6, 8);
            samples.iter().map(|s| s.values[0]).sum::<f64>() / samples.len() as f64
        };
        let clean = mean_llc_misses(IsolationMode::LxcDirect);
        let noisy = mean_llc_misses(IsolationMode::SharedMachine {
            neighbour: WorkloadClass::Ransomware,
        });
        // a ransomware co-tenant streams through the shared LLC, evicting
        // the victim's working set
        assert!(
            noisy > clean * 1.2,
            "co-tenant should inflate LLC misses: clean {clean}, shared {noisy}"
        );
    }

    #[test]
    fn same_seed_containers_reproduce() {
        let p = WorkloadProfile::canonical(WorkloadClass::Spyware);
        let run = |seed| {
            let mut c = Container::new(
                small_machine(),
                PerfConfig::default(),
                IsolationMode::LxcDirect,
                seed,
            );
            c.run_app(&p, 1, 2)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
