//! A `perf stat`-style sampler with counter multiplexing.
//!
//! Real PMUs expose only a few programmable counter slots (four on the
//! paper's 11th-gen i7). When more hardware events are requested, perf
//! time-multiplexes event groups across the window and linearly rescales
//! each count by its enabled/running ratio — introducing a small
//! multiplexing error. This module reproduces that mechanism, which is
//! also why `cache-misses` and `cpu/cache-misses/` (the same underlying
//! event in different mux groups) report slightly different values in the
//! paper's dataset.

use hmd_util::rng::prelude::*;

use crate::dist::Normal;
use crate::events::{CounterSet, HpcEvent};
use crate::machine::{Machine, RunningWorkload};

/// Sampler configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfConfig {
    /// Sampling period in milliseconds (the paper uses 10 ms).
    pub sample_period_ms: f64,
    /// Programmable hardware counter slots (4 on the modeled core).
    pub hardware_slots: usize,
    /// Events to collect, in output order.
    pub events: Vec<HpcEvent>,
    /// Relative standard deviation of the multiplexing scaling error.
    pub mux_noise: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self {
            sample_period_ms: 10.0,
            hardware_slots: 4,
            events: HpcEvent::ALL.to_vec(),
            mux_noise: 0.015,
        }
    }
}

/// One sampling-period observation: a value per configured event.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Window start time in milliseconds since profiling began.
    pub time_ms: f64,
    /// Scaled counter values, aligned with [`PerfConfig::events`].
    pub values: Vec<f64>,
}

/// The sampler: pairs a machine-produced [`CounterSet`] with the
/// multiplexing model.
#[derive(Debug)]
pub struct PerfSampler {
    config: PerfConfig,
    /// Hardware events grouped into mux slots-sized groups.
    groups: Vec<Vec<HpcEvent>>,
    rng: StdRng,
    clock_ms: f64,
}

impl PerfSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if the config has no events, zero hardware slots, or a
    /// non-positive sampling period.
    #[must_use]
    pub fn new(config: PerfConfig, seed: u64) -> Self {
        assert!(!config.events.is_empty(), "need at least one event");
        assert!(config.hardware_slots > 0, "need at least one counter slot");
        assert!(config.sample_period_ms > 0.0, "period must be positive");
        let hardware: Vec<HpcEvent> =
            config.events.iter().copied().filter(|e| !e.is_software()).collect();
        let groups = hardware.chunks(config.hardware_slots).map(<[_]>::to_vec).collect();
        Self { config, groups, rng: StdRng::seed_from_u64(seed), clock_ms: 0.0 }
    }

    /// The sampler configuration.
    #[must_use]
    pub fn config(&self) -> &PerfConfig {
        &self.config
    }

    /// Number of multiplexing groups the hardware events were split into.
    #[must_use]
    pub fn mux_groups(&self) -> usize {
        self.groups.len()
    }

    /// Enabled-time fraction each hardware event gets under multiplexing.
    #[must_use]
    pub fn enabled_fraction(&self) -> f64 {
        if self.groups.len() <= 1 {
            1.0
        } else {
            1.0 / self.groups.len() as f64
        }
    }

    /// Collects one sampling window for `workload` on `machine`.
    pub fn sample(&mut self, machine: &mut Machine, workload: &mut RunningWorkload) -> Sample {
        let counters = machine.run_window(workload, self.config.sample_period_ms);
        let values = self.scale(&counters);
        let t = self.clock_ms;
        self.clock_ms += self.config.sample_period_ms;
        Sample { time_ms: t, values }
    }

    /// Applies the multiplexing model to raw window counters.
    fn scale(&mut self, counters: &CounterSet) -> Vec<f64> {
        let fraction = self.enabled_fraction();
        let noise = if fraction < 1.0 {
            // error grows with the fraction of time the event was blind
            Normal::new(0.0, self.config.mux_noise * (1.0 - fraction))
        } else {
            Normal::new(0.0, 0.0)
        };
        self.config
            .events
            .iter()
            .map(|&e| {
                let raw = counters.get(e) as f64;
                if e.is_software() || fraction >= 1.0 {
                    raw
                } else {
                    // perf counts raw*fraction then rescales by 1/fraction;
                    // the net effect is the original value plus scaling error.
                    (raw * (1.0 + noise.sample(&mut self.rng))).max(0.0)
                }
            })
            .collect()
    }

    /// Profiles an application: `warmup` unrecorded windows followed by
    /// `windows` recorded ones.
    pub fn profile(
        &mut self,
        machine: &mut Machine,
        workload: &mut RunningWorkload,
        warmup: usize,
        windows: usize,
    ) -> Vec<Sample> {
        for _ in 0..warmup {
            let _ = machine.run_window(workload, self.config.sample_period_ms);
            self.clock_ms += self.config.sample_period_ms;
        }
        (0..windows).map(|_| self.sample(machine, workload)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::workload::{WorkloadClass, WorkloadProfile};

    fn setup() -> (Machine, RunningWorkload) {
        let cfg = MachineConfig { slice_instructions: 5_000, ..MachineConfig::default() };
        let machine = Machine::new(cfg);
        let w = RunningWorkload::new(
            WorkloadProfile::canonical(WorkloadClass::Database),
            3,
        );
        (machine, w)
    }

    #[test]
    fn grouping_respects_slots() {
        let s = PerfSampler::new(PerfConfig::default(), 0);
        // 29 hardware events in 4-slot groups → 8 groups
        assert_eq!(s.mux_groups(), 8);
        assert!((s.enabled_fraction() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn few_events_need_no_multiplexing() {
        let cfg = PerfConfig {
            events: vec![
                HpcEvent::LlcLoads,
                HpcEvent::LlcLoadMisses,
                HpcEvent::CacheMisses,
                HpcEvent::CpuCacheMisses,
            ],
            ..PerfConfig::default()
        };
        let mut s = PerfSampler::new(cfg, 0);
        assert_eq!(s.enabled_fraction(), 1.0);
        let (mut machine, mut w) = setup();
        let a = s.sample(&mut machine, &mut w);
        assert_eq!(a.values.len(), 4);
        // without multiplexing the two cache-miss spellings agree exactly
        assert_eq!(a.values[2], a.values[3]);
    }

    #[test]
    fn multiplexed_aliases_diverge_slightly() {
        let mut s = PerfSampler::new(PerfConfig::default(), 1);
        let (mut machine, mut w) = setup();
        let sample = s.sample(&mut machine, &mut w);
        let cm = sample.values[HpcEvent::CacheMisses.index()];
        let cpucm = sample.values[HpcEvent::CpuCacheMisses.index()];
        assert_ne!(cm, cpucm);
        let rel = (cm - cpucm).abs() / cm.max(1.0);
        assert!(rel < 0.2, "aliases should stay close, rel diff {rel}");
    }

    #[test]
    fn software_events_are_exact() {
        let mut s = PerfSampler::new(PerfConfig::default(), 2);
        let (mut machine, mut w) = setup();
        let sample = s.sample(&mut machine, &mut w);
        let tc = sample.values[HpcEvent::TaskClock.index()];
        // task-clock is utilization-scaled but carries no mux noise: it is
        // an exact multiple of 1 ns and bounded by the window length.
        assert!(tc > 0.0 && tc <= 10.0 * 1e6);
        assert_eq!(tc.fract(), 0.0);
    }

    #[test]
    fn profile_counts_and_timestamps() {
        let mut s = PerfSampler::new(PerfConfig::default(), 3);
        let (mut machine, mut w) = setup();
        let samples = s.profile(&mut machine, &mut w, 2, 5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].time_ms, 20.0);
        assert_eq!(samples[4].time_ms, 60.0);
    }

    #[test]
    fn values_are_non_negative() {
        let mut s = PerfSampler::new(PerfConfig::default(), 4);
        let (mut machine, mut w) = setup();
        for _ in 0..10 {
            let sample = s.sample(&mut machine, &mut w);
            assert!(sample.values.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn rejects_empty_event_list() {
        let cfg = PerfConfig { events: vec![], ..PerfConfig::default() };
        let _ = PerfSampler::new(cfg, 0);
    }
}
