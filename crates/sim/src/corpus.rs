//! Corpus generation: run thousands of applications, collect a labeled
//! HPC dataset.

use hmd_util::par;
use hmd_util::rng::prelude::*;

use hmd_tabular::{Class, Dataset};

use crate::container::{Container, IsolationMode};
use crate::machine::MachineConfig;
use crate::perf::PerfConfig;
use crate::workload::{WorkloadClass, WorkloadProfile};

/// Configuration of a corpus-collection campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusConfig {
    /// Number of benign application instances to run.
    pub benign_apps: usize,
    /// Number of malware application instances to run.
    pub malware_apps: usize,
    /// Recorded sampling windows per application.
    pub windows_per_app: usize,
    /// Unrecorded warm-up windows per application.
    pub warmup_windows: usize,
    /// Simulated core configuration.
    pub machine: MachineConfig,
    /// Perf sampler configuration (events, period, mux slots).
    pub perf: PerfConfig,
    /// Container isolation mode.
    pub isolation: IsolationMode,
    /// Master seed; the whole corpus is reproducible from it.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            benign_apps: 1500,
            malware_apps: 1500,
            windows_per_app: 4,
            warmup_windows: 1,
            machine: MachineConfig::default(),
            perf: PerfConfig::default(),
            isolation: IsolationMode::LxcDirect,
            seed: 0x0DAC_2024,
            threads: 0,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and examples (tens of apps,
    /// short slices).
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            benign_apps: 24,
            malware_apps: 24,
            windows_per_app: 2,
            warmup_windows: 0,
            machine: MachineConfig { slice_instructions: 2_000, ..MachineConfig::default() },
            seed,
            ..Self::default()
        }
    }
}

/// A collected corpus: the labeled dataset plus the workload class behind
/// every row (for per-family analysis).
#[derive(Clone, Debug)]
pub struct Corpus {
    /// One row per recorded sampling window.
    pub dataset: Dataset,
    /// The workload class that produced each row, aligned with
    /// `dataset` rows.
    pub row_classes: Vec<WorkloadClass>,
}

/// The work order for one application instance.
#[derive(Copy, Clone, Debug)]
struct AppJob {
    class: WorkloadClass,
    instance_seed: u64,
}

/// Runs the campaign described by `config` and returns the corpus.
///
/// Applications are scheduled round-robin over the 8 benign / 8 malware
/// classes and executed in parallel containers (one simulated core each),
/// mirroring the paper's automated Perf + LXC collection of 3,000+
/// applications.
///
/// # Panics
///
/// Panics if `config` requests zero apps of both kinds, zero windows, or
/// an invalid machine/perf configuration.
#[must_use]
pub fn build_corpus(config: &CorpusConfig) -> Corpus {
    let _span = hmd_telemetry::span("sim.build_corpus");
    assert!(
        config.benign_apps + config.malware_apps > 0,
        "corpus needs at least one application"
    );
    assert!(config.windows_per_app > 0, "need at least one window per app");

    // Deterministic job list.
    let mut jobs = Vec::with_capacity(config.benign_apps + config.malware_apps);
    let mut seed_rng = StdRng::seed_from_u64(config.seed);
    for i in 0..config.benign_apps {
        jobs.push(AppJob {
            class: WorkloadClass::BENIGN[i % WorkloadClass::BENIGN.len()],
            instance_seed: seed_rng.random(),
        });
    }
    for i in 0..config.malware_apps {
        jobs.push(AppJob {
            class: WorkloadClass::MALWARE[i % WorkloadClass::MALWARE.len()],
            instance_seed: seed_rng.random(),
        });
    }

    let feature_names: Vec<String> =
        config.perf.events.iter().map(|e| e.name().to_owned()).collect();

    // Each worker runs its own container over a contiguous job chunk on
    // the shared parallel substrate; per-job state is derived from
    // `instance_seed` alone and results concatenate in job order, so
    // the corpus is byte-identical regardless of thread count
    // (`config.threads`, or `HMD_THREADS`/available parallelism at 0).
    let rows: Vec<(Vec<f64>, WorkloadClass)> =
        par::par_chunk_map_with(config.threads, &jobs, |_, chunk_jobs| {
            let mut rows = Vec::new();
            for job in chunk_jobs {
                let mut container = Container::new(
                    config.machine,
                    config.perf.clone(),
                    config.isolation,
                    job.instance_seed,
                );
                let mut rng = StdRng::seed_from_u64(job.instance_seed);
                let profile = WorkloadProfile::sample_instance(job.class, &mut rng);
                for sample in container.run_app(&profile, config.warmup_windows, config.windows_per_app)
                {
                    rows.push((sample.values, job.class));
                }
            }
            rows
        });

    let mut dataset = Dataset::new(feature_names).expect("perf config has events");
    let mut row_classes = Vec::with_capacity(rows.len());
    for (values, class) in rows {
        let label = if class.is_malware() { Class::Malware } else { Class::Benign };
        dataset.push(&values, label).expect("sampler emits fixed-width rows");
        row_classes.push(class);
    }
    if hmd_telemetry::enabled() {
        hmd_telemetry::metrics::counter("sim.apps").add(jobs.len() as u64);
        hmd_telemetry::metrics::counter("sim.windows").add(dataset.len() as u64);
    }
    Corpus { dataset, row_classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::HpcEvent;

    #[test]
    fn quick_corpus_shape() {
        let corpus = build_corpus(&CorpusConfig::quick(1));
        let d = &corpus.dataset;
        assert_eq!(d.len(), 48 * 2); // 48 apps × 2 windows
        assert_eq!(d.n_features(), HpcEvent::ALL.len());
        assert_eq!(corpus.row_classes.len(), d.len());
        let counts = d.class_counts();
        assert_eq!(counts[&Class::Benign], 48);
        assert_eq!(counts[&Class::Malware], 48);
    }

    #[test]
    fn corpus_is_deterministic_across_thread_counts() {
        let mut one = CorpusConfig::quick(7);
        one.threads = 1;
        let mut four = CorpusConfig::quick(7);
        four.threads = 4;
        let a = build_corpus(&one);
        let b = build_corpus(&four);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.row_classes, b.row_classes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_corpus(&CorpusConfig::quick(1));
        let b = build_corpus(&CorpusConfig::quick(2));
        assert_ne!(a.dataset, b.dataset);
    }

    #[test]
    fn rows_cover_all_families() {
        let corpus = build_corpus(&CorpusConfig::quick(3));
        for class in WorkloadClass::MALWARE {
            assert!(
                corpus.row_classes.contains(&class),
                "family {class} missing from corpus"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn rejects_empty_campaign() {
        let cfg = CorpusConfig { benign_apps: 0, malware_apps: 0, ..CorpusConfig::quick(0) };
        let _ = build_corpus(&cfg);
    }
}
