//! Phase-based behavioural models of benign applications and malware
//! families.
//!
//! This module is the substitution for the paper's corpus of 3,000+ real
//! applications from VirusShare/VirusTotal: each [`WorkloadClass`] carries
//! a multi-phase micro-architectural profile (memory access pattern,
//! branch behaviour, OS-event rates) matching the family-level HPC
//! signatures reported in the HMD literature — e.g. ransomware's
//! scan-then-encrypt streaming traffic, rootkits' icache/branch pollution,
//! botnets' bursty idling. Per-instance log-normal jitter makes every
//! sampled application unique.

use hmd_util::rng::prelude::*;

use crate::dist::LogNormal;

/// The application classes the corpus generator can run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum WorkloadClass {
    /// Interactive text editor (benign).
    TextEditor,
    /// Web browser rendering pages (benign).
    WebBrowser,
    /// Compiler toolchain run (benign).
    Compiler,
    /// Media player decoding a stream (benign).
    MediaPlayer,
    /// OLTP-style database engine (benign).
    Database,
    /// HTTP server under load (benign).
    WebServer,
    /// File compression utility (benign).
    FileCompression,
    /// Dense numeric kernel (benign).
    ScientificCompute,
    /// Self-propagating network worm (malware).
    Worm,
    /// File-infecting virus (malware).
    Virus,
    /// Botnet client: idle beaconing with command bursts (malware).
    Botnet,
    /// Ransomware: directory scan then bulk encryption (malware).
    Ransomware,
    /// Kernel-hooking rootkit (malware).
    Rootkit,
    /// Trojan: disguised payload with background exfiltration (malware).
    Trojan,
    /// Spyware: input capture and periodic screen scraping (malware).
    Spyware,
    /// Covert cryptocurrency miner (malware).
    CryptoMiner,
}

impl WorkloadClass {
    /// The eight benign classes.
    pub const BENIGN: [WorkloadClass; 8] = [
        WorkloadClass::TextEditor,
        WorkloadClass::WebBrowser,
        WorkloadClass::Compiler,
        WorkloadClass::MediaPlayer,
        WorkloadClass::Database,
        WorkloadClass::WebServer,
        WorkloadClass::FileCompression,
        WorkloadClass::ScientificCompute,
    ];

    /// The eight malware families.
    pub const MALWARE: [WorkloadClass; 8] = [
        WorkloadClass::Worm,
        WorkloadClass::Virus,
        WorkloadClass::Botnet,
        WorkloadClass::Ransomware,
        WorkloadClass::Rootkit,
        WorkloadClass::Trojan,
        WorkloadClass::Spyware,
        WorkloadClass::CryptoMiner,
    ];

    /// Whether this class is a malware family.
    #[must_use]
    pub fn is_malware(self) -> bool {
        Self::MALWARE.contains(&self)
    }

    /// Human-readable class name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::TextEditor => "text-editor",
            WorkloadClass::WebBrowser => "web-browser",
            WorkloadClass::Compiler => "compiler",
            WorkloadClass::MediaPlayer => "media-player",
            WorkloadClass::Database => "database",
            WorkloadClass::WebServer => "web-server",
            WorkloadClass::FileCompression => "file-compression",
            WorkloadClass::ScientificCompute => "scientific-compute",
            WorkloadClass::Worm => "worm",
            WorkloadClass::Virus => "virus",
            WorkloadClass::Botnet => "botnet",
            WorkloadClass::Ransomware => "ransomware",
            WorkloadClass::Rootkit => "rootkit",
            WorkloadClass::Trojan => "trojan",
            WorkloadClass::Spyware => "spyware",
            WorkloadClass::CryptoMiner => "crypto-miner",
        }
    }
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Data-side memory behaviour of one phase.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MemoryPattern {
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of the working set forming the hot region.
    pub hot_fraction: f64,
    /// Probability that a random access targets the hot region.
    pub hot_prob: f64,
    /// Probability that an access continues a sequential stream.
    pub stream_prob: f64,
    /// Stream stride in bytes.
    pub stride: u64,
    /// Fraction of memory operations that are stores.
    pub store_ratio: f64,
    /// Memory operations per instruction.
    pub mem_ratio: f64,
}

/// Control-flow behaviour of one phase.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BranchPattern {
    /// Branches per instruction.
    pub branch_ratio: f64,
    /// Probability a data-dependent branch is taken.
    pub taken_bias: f64,
    /// Probability a branch follows its learned (static) direction.
    pub predictability: f64,
    /// Number of distinct static branch sites.
    pub pc_diversity: u64,
}

/// Kernel-visible event rates of one phase.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OsPattern {
    /// Context switches per millisecond.
    pub context_switch_rate: f64,
    /// Minor page faults per millisecond.
    pub minor_fault_rate: f64,
    /// Major page faults per millisecond.
    pub major_fault_rate: f64,
    /// CPU migrations per millisecond.
    pub migration_rate: f64,
}

/// One behavioural phase of a workload.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name for traces.
    pub name: &'static str,
    /// Relative share of execution time spent in this phase.
    pub weight: f64,
    /// Memory behaviour.
    pub mem: MemoryPattern,
    /// Branch behaviour.
    pub branch: BranchPattern,
    /// OS-event behaviour.
    pub os: OsPattern,
    /// Ideal instructions per cycle before stalls.
    pub ipc_base: f64,
    /// Fraction of the wall-clock window the task actually executes (CPU
    /// duty cycle) — interactive and beaconing workloads are mostly
    /// blocked, bulk workloads saturate the core.
    pub utilization: f64,
    /// Instruction footprint (bytes of hot code).
    pub icache_footprint: u64,
}

/// The complete phase profile of one workload class.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// The class this profile describes.
    pub class: WorkloadClass,
    /// Phases in execution order (cycled during long runs).
    pub phases: Vec<Phase>,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

#[allow(clippy::too_many_arguments)] // phase description is naturally wide
fn phase(
    name: &'static str,
    weight: f64,
    mem: MemoryPattern,
    branch: BranchPattern,
    os: OsPattern,
    ipc_base: f64,
    utilization: f64,
    icache_footprint: u64,
) -> Phase {
    Phase { name, weight, mem, branch, os, ipc_base, utilization, icache_footprint }
}

fn mem(
    working_set: u64,
    hot_prob: f64,
    stream_prob: f64,
    store_ratio: f64,
    mem_ratio: f64,
) -> MemoryPattern {
    MemoryPattern {
        working_set,
        hot_fraction: 0.1,
        hot_prob,
        stream_prob,
        stride: 64,
        store_ratio,
        mem_ratio,
    }
}

fn br(branch_ratio: f64, predictability: f64) -> BranchPattern {
    BranchPattern { branch_ratio, taken_bias: 0.6, predictability, pc_diversity: 64 }
}

fn os(cs: f64, minor: f64, major: f64, mig: f64) -> OsPattern {
    OsPattern {
        context_switch_rate: cs,
        minor_fault_rate: minor,
        major_fault_rate: major,
        migration_rate: mig,
    }
}

impl WorkloadProfile {
    /// The canonical (un-jittered) profile of a class.
    #[must_use]
    pub fn canonical(class: WorkloadClass) -> Self {
        let phases = match class {
            WorkloadClass::TextEditor => vec![
                phase("idle-poll", 0.7, mem(2 * MIB, 0.9, 0.05, 0.2, 0.15),
                    br(0.18, 0.95), os(3.0, 0.2, 0.0, 0.02), 1.6, 0.04, 96 * KIB),
                phase("edit-burst", 0.3, mem(4 * MIB, 0.8, 0.2, 0.3, 0.2),
                    br(0.2, 0.9), os(2.0, 0.5, 0.0, 0.02), 1.8, 0.15, 128 * KIB),
            ],
            WorkloadClass::WebBrowser => vec![
                phase("layout", 0.4, mem(48 * MIB, 0.75, 0.2, 0.25, 0.3),
                    br(0.22, 0.85), os(4.0, 1.5, 0.01, 0.05), 1.4, 0.5, 512 * KIB),
                phase("script", 0.4, mem(24 * MIB, 0.8, 0.1, 0.3, 0.28),
                    br(0.24, 0.8), os(3.0, 1.0, 0.0, 0.05), 1.2, 0.6, 384 * KIB),
                phase("paint", 0.2, mem(12 * MIB, 0.5, 0.7, 0.5, 0.35),
                    br(0.12, 0.95), os(2.0, 0.5, 0.0, 0.03), 1.8, 0.4, 128 * KIB),
            ],
            WorkloadClass::Compiler => vec![
                phase("parse", 0.3, mem(8 * MIB, 0.75, 0.3, 0.2, 0.3),
                    br(0.26, 0.82), os(1.0, 2.0, 0.01, 0.02), 1.3, 0.75, 640 * KIB),
                phase("optimize", 0.5, mem(24 * MIB, 0.85, 0.1, 0.25, 0.32),
                    br(0.24, 0.78), os(0.5, 1.0, 0.0, 0.02), 1.1, 0.8, 768 * KIB),
                phase("codegen", 0.2, mem(16 * MIB, 0.75, 0.4, 0.45, 0.3),
                    br(0.2, 0.85), os(0.5, 1.5, 0.0, 0.02), 1.4, 0.75, 512 * KIB),
            ],
            WorkloadClass::MediaPlayer => vec![
                phase("decode", 0.8, mem(12 * MIB, 0.55, 0.75, 0.35, 0.33),
                    br(0.1, 0.96), os(2.0, 0.3, 0.0, 0.03), 2.2, 0.35, 192 * KIB),
                phase("buffer-refill", 0.2, mem(32 * MIB, 0.2, 0.9, 0.5, 0.4),
                    br(0.08, 0.97), os(3.0, 0.8, 0.02, 0.03), 1.9, 0.25, 96 * KIB),
            ],
            WorkloadClass::Database => vec![
                phase("index-lookup", 0.5, mem(64 * MIB, 0.65, 0.05, 0.15, 0.34),
                    br(0.2, 0.8), os(3.0, 1.0, 0.02, 0.04), 0.9, 0.55, 384 * KIB),
                phase("scan", 0.3, mem(128 * MIB, 0.3, 0.85, 0.1, 0.38),
                    br(0.14, 0.93), os(2.0, 0.5, 0.01, 0.03), 1.2, 0.65, 192 * KIB),
                phase("commit", 0.2, mem(24 * MIB, 0.7, 0.4, 0.6, 0.3),
                    br(0.18, 0.88), os(4.0, 1.5, 0.02, 0.04), 1.1, 0.5, 256 * KIB),
            ],
            WorkloadClass::WebServer => vec![
                phase("accept", 0.3, mem(16 * MIB, 0.85, 0.1, 0.25, 0.25),
                    br(0.22, 0.86), os(8.0, 1.0, 0.0, 0.1), 1.3, 0.3, 256 * KIB),
                phase("serve", 0.7, mem(12 * MIB, 0.75, 0.45, 0.3, 0.3),
                    br(0.2, 0.88), os(6.0, 1.2, 0.01, 0.08), 1.4, 0.5, 320 * KIB),
            ],
            WorkloadClass::FileCompression => vec![
                phase("compress", 0.9, mem(10 * MIB, 0.6, 0.8, 0.4, 0.36),
                    br(0.16, 0.9), os(1.0, 1.0, 0.02, 0.02), 1.5, 0.75, 96 * KIB),
                phase("flush", 0.1, mem(16 * MIB, 0.3, 0.95, 0.7, 0.4),
                    br(0.1, 0.95), os(2.0, 1.0, 0.05, 0.02), 1.3, 0.65, 64 * KIB),
            ],
            WorkloadClass::ScientificCompute => vec![
                phase("blocked-kernel", 0.8, mem(8 * MIB, 0.85, 0.5, 0.3, 0.38),
                    br(0.08, 0.97), os(0.3, 0.3, 0.0, 0.01), 2.4, 0.8, 64 * KIB),
                phase("reduction", 0.2, mem(8 * MIB, 0.5, 0.9, 0.2, 0.4),
                    br(0.1, 0.95), os(0.3, 0.5, 0.0, 0.01), 1.7, 0.75, 48 * KIB),
            ],
            // ---- malware families ----
            WorkloadClass::Worm => vec![
                phase("scan-network", 0.5, mem(48 * MIB, 0.3, 0.1, 0.3, 0.3),
                    br(0.26, 0.7), os(8.0, 1.5, 0.02, 0.1), 0.9, 0.55, 160 * KIB),
                phase("propagate", 0.3, mem(96 * MIB, 0.2, 0.5, 0.5, 0.34),
                    br(0.2, 0.75), os(6.0, 2.5, 0.05, 0.08), 1.0, 0.7, 192 * KIB),
                phase("payload-drop", 0.2, mem(48 * MIB, 0.25, 0.75, 0.6, 0.34),
                    br(0.16, 0.8), os(6.0, 3.0, 0.08, 0.1), 1.1, 0.6, 128 * KIB),
            ],
            WorkloadClass::Virus => vec![
                phase("find-hosts", 0.4, mem(96 * MIB, 0.3, 0.2, 0.15, 0.3),
                    br(0.24, 0.72), os(5.0, 2.0, 0.06, 0.06), 0.9, 0.7, 224 * KIB),
                phase("infect", 0.6, mem(160 * MIB, 0.2, 0.7, 0.55, 0.36),
                    br(0.18, 0.78), os(4.0, 3.0, 0.1, 0.05), 1.0, 0.9, 192 * KIB),
            ],
            WorkloadClass::Botnet => vec![
                phase("beacon-idle", 0.6, mem(24 * MIB, 0.45, 0.05, 0.2, 0.24),
                    br(0.2, 0.82), os(7.0, 0.8, 0.01, 0.12), 0.8, 0.05, 96 * KIB),
                phase("command-burst", 0.4, mem(128 * MIB, 0.2, 0.5, 0.45, 0.36),
                    br(0.22, 0.7), os(6.0, 2.0, 0.05, 0.1), 1.0, 0.75, 160 * KIB),
            ],
            WorkloadClass::Ransomware => vec![
                phase("dir-scan", 0.3, mem(192 * MIB, 0.2, 0.1, 0.1, 0.32),
                    br(0.24, 0.68), os(7.0, 3.5, 0.15, 0.08), 0.8, 0.85, 160 * KIB),
                phase("encrypt", 0.6, mem(512 * MIB, 0.1, 0.9, 0.5, 0.42),
                    br(0.1, 0.85), os(4.0, 4.0, 0.2, 0.05), 1.0, 0.95, 96 * KIB),
                phase("exfil-note", 0.1, mem(32 * MIB, 0.4, 0.6, 0.5, 0.3),
                    br(0.18, 0.8), os(8.0, 2.0, 0.05, 0.1), 1.0, 0.4, 128 * KIB),
            ],
            WorkloadClass::Rootkit => vec![
                phase("hook-install", 0.3, mem(48 * MIB, 0.35, 0.15, 0.4, 0.28),
                    br(0.3, 0.55), os(6.0, 2.5, 0.05, 0.06), 0.7, 0.6, 1024 * KIB),
                phase("intercept", 0.7, mem(96 * MIB, 0.3, 0.1, 0.3, 0.3),
                    br(0.32, 0.6), os(7.0, 1.5, 0.02, 0.08), 0.8, 0.55, 1536 * KIB),
            ],
            WorkloadClass::Trojan => vec![
                phase("disguise", 0.4, mem(64 * MIB, 0.4, 0.2, 0.25, 0.28),
                    br(0.2, 0.84), os(4.0, 1.0, 0.02, 0.05), 1.3, 0.5, 256 * KIB),
                phase("stage-payload", 0.4, mem(128 * MIB, 0.25, 0.65, 0.5, 0.34),
                    br(0.18, 0.72), os(6.0, 2.5, 0.08, 0.08), 1.0, 0.75, 192 * KIB),
                phase("exfil", 0.2, mem(64 * MIB, 0.3, 0.7, 0.4, 0.3),
                    br(0.2, 0.75), os(9.0, 2.0, 0.05, 0.12), 0.9, 0.6, 160 * KIB),
            ],
            WorkloadClass::Spyware => vec![
                phase("capture-input", 0.5, mem(48 * MIB, 0.35, 0.1, 0.35, 0.28),
                    br(0.26, 0.74), os(7.0, 1.2, 0.02, 0.09), 0.8, 0.4, 192 * KIB),
                phase("screen-scrape", 0.3, mem(96 * MIB, 0.15, 0.85, 0.5, 0.38),
                    br(0.12, 0.88), os(6.0, 2.5, 0.06, 0.08), 1.1, 0.75, 128 * KIB),
                phase("upload", 0.2, mem(48 * MIB, 0.3, 0.7, 0.4, 0.3),
                    br(0.18, 0.78), os(6.0, 1.8, 0.04, 0.08), 0.9, 0.55, 128 * KIB),
            ],
            WorkloadClass::CryptoMiner => vec![
                phase("hash-loop", 0.9, mem(2 * MIB + 2 * MIB, 0.95, 0.3, 0.25, 0.3),
                    br(0.06, 0.97), os(1.0, 0.2, 0.0, 0.03), 2.6, 0.7, 32 * KIB),
                phase("share-submit", 0.1, mem(16 * MIB, 0.5, 0.4, 0.4, 0.26),
                    br(0.2, 0.8), os(8.0, 1.0, 0.02, 0.1), 1.0, 0.3, 96 * KIB),
            ],
        };
        Self { class, phases }
    }

    /// A per-instance jittered profile: every run of an application gets
    /// log-normally perturbed working sets, intensities and rates,
    /// modelling input- and configuration-dependence of real programs.
    #[must_use]
    pub fn sample_instance<R: Rng + ?Sized>(class: WorkloadClass, rng: &mut R) -> Self {
        let mut profile = Self::canonical(class);
        let ws_jitter = LogNormal::jitter(0.22);
        // OS-event rates vary wildly between runs of the same program
        // (scheduler load, file-cache state), far more than cache
        // behaviour does — heavy jitter keeps software events from
        // dominating the MI ranking the way cache events do on real
        // hardware.
        let rate_jitter = LogNormal::jitter(0.9);
        let small_jitter = LogNormal::jitter(0.10);
        for ph in &mut profile.phases {
            ph.mem.working_set =
                ((ph.mem.working_set as f64 * ws_jitter.sample(rng)) as u64).max(64 * KIB);
            ph.mem.mem_ratio = (ph.mem.mem_ratio * small_jitter.sample(rng)).clamp(0.05, 0.6);
            ph.mem.stream_prob = (ph.mem.stream_prob * small_jitter.sample(rng)).clamp(0.0, 0.98);
            ph.mem.hot_prob = (ph.mem.hot_prob * small_jitter.sample(rng)).clamp(0.0, 0.98);
            ph.mem.store_ratio = (ph.mem.store_ratio * small_jitter.sample(rng)).clamp(0.02, 0.8);
            ph.branch.branch_ratio =
                (ph.branch.branch_ratio * small_jitter.sample(rng)).clamp(0.02, 0.4);
            ph.branch.predictability =
                (ph.branch.predictability * small_jitter.sample(rng)).clamp(0.3, 0.99);
            ph.os.context_switch_rate *= rate_jitter.sample(rng);
            ph.os.minor_fault_rate *= rate_jitter.sample(rng);
            ph.os.major_fault_rate *= rate_jitter.sample(rng);
            ph.os.migration_rate *= rate_jitter.sample(rng);
            ph.ipc_base = (ph.ipc_base * small_jitter.sample(rng)).clamp(0.4, 3.5);
            ph.utilization =
                (ph.utilization * LogNormal::jitter(0.3).sample(rng)).clamp(0.02, 0.99);
            ph.icache_footprint =
                ((ph.icache_footprint as f64 * small_jitter.sample(rng)) as u64).max(16 * KIB);
        }
        profile
    }

    /// Picks a phase index according to the phase weights.
    #[must_use]
    pub fn pick_phase<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.phases.iter().map(|p| p.weight).sum();
        let mut draw = rng.random::<f64>() * total;
        for (i, p) in self.phases.iter().enumerate() {
            draw -= p.weight;
            if draw <= 0.0 {
                return i;
            }
        }
        self.phases.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_classes_partition() {
        assert_eq!(WorkloadClass::BENIGN.len() + WorkloadClass::MALWARE.len(), 16);
        for c in WorkloadClass::BENIGN {
            assert!(!c.is_malware());
        }
        for c in WorkloadClass::MALWARE {
            assert!(c.is_malware());
        }
    }

    #[test]
    fn every_class_has_valid_phases() {
        for c in WorkloadClass::BENIGN.into_iter().chain(WorkloadClass::MALWARE) {
            let p = WorkloadProfile::canonical(c);
            assert!(!p.phases.is_empty(), "{c} has no phases");
            let total: f64 = p.phases.iter().map(|ph| ph.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{c} weights sum to {total}");
            for ph in &p.phases {
                assert!(ph.mem.working_set > 0);
                assert!((0.0..=1.0).contains(&ph.mem.hot_prob));
                assert!((0.0..=1.0).contains(&ph.mem.stream_prob));
                assert!(ph.mem.mem_ratio > 0.0 && ph.mem.mem_ratio < 1.0);
                assert!(ph.branch.branch_ratio > 0.0 && ph.branch.branch_ratio < 0.5);
                assert!(ph.ipc_base > 0.0);
                assert!(ph.utilization > 0.0 && ph.utilization <= 1.0, "{c} utilization");
            }
        }
    }

    #[test]
    fn jittered_instances_differ_but_stay_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = WorkloadProfile::sample_instance(WorkloadClass::Ransomware, &mut rng);
        let b = WorkloadProfile::sample_instance(WorkloadClass::Ransomware, &mut rng);
        assert_ne!(a, b);
        for ph in a.phases.iter().chain(&b.phases) {
            assert!(ph.mem.working_set >= 64 * KIB);
            assert!((0.0..=0.98).contains(&ph.mem.stream_prob));
            assert!((0.3..=0.99).contains(&ph.branch.predictability));
        }
    }

    #[test]
    fn ransomware_encrypt_dominates_memory_traffic() {
        let p = WorkloadProfile::canonical(WorkloadClass::Ransomware);
        let encrypt = p.phases.iter().find(|ph| ph.name == "encrypt").unwrap();
        let editor = WorkloadProfile::canonical(WorkloadClass::TextEditor);
        let idle = &editor.phases[0];
        assert!(encrypt.mem.working_set > 50 * idle.mem.working_set);
        assert!(encrypt.mem.stream_prob > 0.8);
    }

    #[test]
    fn pick_phase_respects_weights() {
        let p = WorkloadProfile::canonical(WorkloadClass::MediaPlayer);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; p.phases.len()];
        for _ in 0..10_000 {
            counts[p.pick_phase(&mut rng)] += 1;
        }
        // decode has weight .8
        let frac = counts[0] as f64 / 10_000.0;
        assert!((frac - 0.8).abs() < 0.03, "decode fraction {frac}");
    }
}
