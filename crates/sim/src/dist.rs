//! Random distributions implemented on top of `hmd_util::rng`.
//!
//! `rand_distr` is not on the sanctioned dependency list, so the handful
//! of distributions the workload models need (normal, log-normal,
//! Poisson, exponential) are implemented here from first principles.

use hmd_util::rng::prelude::*;

// The Gaussian sampler lives beside the PRNG core (Box–Muller needs the
// raw 53-bit uniform); re-exported here so workload models keep their
// `crate::dist::Normal` imports.
pub use hmd_util::rng::Normal;

/// Log-normal sampler: `exp(N(mu, sigma))`.
///
/// Used for per-application parameter jitter — real program behaviour
/// varies multiplicatively between runs and inputs.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// A log-normal distribution with the given *log-space* parameters.
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite sigma.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self { inner: Normal::new(mu, sigma) }
    }

    /// A log-normal whose median is 1.0 with multiplicative spread
    /// `sigma` — the natural "jitter factor" parameterization.
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite sigma.
    #[must_use]
    pub fn jitter(sigma: f64) -> Self {
        Self::new(0.0, sigma)
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// Poisson sampler (Knuth's method for small means, normal approximation
/// above 64) for event counts such as context switches per window.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// A Poisson distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite rate.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be finite, non-negative");
        Self { lambda }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 64.0 {
            // Normal approximation with continuity correction.
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            return n.sample(rng).round().max(0.0) as u64;
        }
        let limit = (-self.lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    }
}

/// Exponential sampler (inverse-CDF) for inter-arrival times.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// An exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite rate.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be finite, positive");
        Self { rate }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(5.0, 2.0);
        let xs: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = Normal::new(0.0, 10.0);
        for _ in 0..500 {
            let x = n.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_is_positive_with_unit_median() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::jitter(0.3);
        let xs: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Poisson::new(3.0);
        let xs: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng) as f64).collect();
        assert!((mean_of(&xs) - 3.0).abs() < 0.1);
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Poisson::new(500.0);
        let xs: Vec<f64> = (0..5_000).map(|_| p.sample(&mut rng) as f64).collect();
        assert!((mean_of(&xs) - 500.0).abs() < 2.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(Poisson::new(0.0).sample(&mut rng), 0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = Exponential::new(0.5);
        let xs: Vec<f64> = (0..20_000).map(|_| e.sample(&mut rng)).collect();
        assert!((mean_of(&xs) - 2.0).abs() < 0.1);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "std dev")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| Poisson::new(4.0).sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| Poisson::new(4.0).sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
