//! Multi-window execution traces with phase annotations — the raw
//! material behind every sample, kept inspectable for debugging workload
//! models and for time-series analyses beyond the paper's per-window
//! classification.


use crate::events::HpcEvent;
use crate::machine::{Machine, MachineConfig, RunningWorkload};
use crate::workload::{WorkloadClass, WorkloadProfile};

/// One traced sampling window: raw (un-multiplexed) counters plus the
/// behavioural phase that dominated the window.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceWindow {
    /// Window start in milliseconds.
    pub time_ms: f64,
    /// Name of the phase active at the window's end.
    pub phase: String,
    /// Raw counter values for every event in [`HpcEvent::ALL`].
    pub counters: Vec<u64>,
}

impl TraceWindow {
    /// Reads one counter from the traced window.
    #[must_use]
    pub fn get(&self, event: HpcEvent) -> u64 {
        self.counters[event.index()]
    }
}

/// A complete execution trace of one application instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionTrace {
    /// The workload class that was traced.
    pub class: WorkloadClass,
    /// The traced windows in time order.
    pub windows: Vec<TraceWindow>,
}

impl ExecutionTrace {
    /// Records `windows` sampling windows of `class` on a fresh machine.
    ///
    /// # Panics
    ///
    /// Panics for zero windows or an invalid machine configuration.
    #[must_use]
    pub fn record(
        class: WorkloadClass,
        machine_config: MachineConfig,
        windows: usize,
        window_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(windows > 0, "need at least one window");
        let mut machine = Machine::new(machine_config);
        let mut running = RunningWorkload::new(WorkloadProfile::canonical(class), seed);
        let mut out = Vec::with_capacity(windows);
        for w in 0..windows {
            let counters = machine.run_window(&mut running, window_ms);
            out.push(TraceWindow {
                time_ms: w as f64 * window_ms,
                phase: running.current_phase().name.to_owned(),
                counters: HpcEvent::ALL.iter().map(|&e| counters.get(e)).collect(),
            });
        }
        Self { class, windows: out }
    }

    /// Number of traced windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the trace is empty (never true after [`Self::record`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The series of one event over time.
    #[must_use]
    pub fn series(&self, event: HpcEvent) -> Vec<u64> {
        self.windows.iter().map(|w| w.get(event)).collect()
    }

    /// The distinct phases observed, in first-appearance order.
    #[must_use]
    pub fn phases_observed(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for w in &self.windows {
            if !seen.contains(&w.phase) {
                seen.push(w.phase.clone());
            }
        }
        seen
    }

    /// Mean of one event over the trace.
    #[must_use]
    pub fn mean(&self, event: HpcEvent) -> f64 {
        let s: u64 = self.windows.iter().map(|w| w.get(event)).sum();
        s as f64 / self.windows.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MachineConfig {
        MachineConfig { slice_instructions: 3_000, ..MachineConfig::default() }
    }

    #[test]
    fn trace_records_requested_windows() {
        let t = ExecutionTrace::record(WorkloadClass::Ransomware, small(), 12, 10.0, 1);
        assert_eq!(t.len(), 12);
        assert_eq!(t.windows[3].time_ms, 30.0);
        assert_eq!(t.windows[0].counters.len(), HpcEvent::ALL.len());
    }

    #[test]
    fn long_traces_visit_multiple_phases() {
        let t = ExecutionTrace::record(WorkloadClass::Ransomware, small(), 120, 10.0, 2);
        let phases = t.phases_observed();
        assert!(phases.len() >= 2, "phases observed: {phases:?}");
        // all phases come from the canonical profile
        let valid: Vec<&str> = WorkloadProfile::canonical(WorkloadClass::Ransomware)
            .phases
            .iter()
            .map(|p| p.name)
            .collect();
        for p in &phases {
            assert!(valid.contains(&p.as_str()), "unknown phase {p}");
        }
    }

    #[test]
    fn series_matches_window_values() {
        let t = ExecutionTrace::record(WorkloadClass::Compiler, small(), 6, 10.0, 3);
        let series = t.series(HpcEvent::Instructions);
        assert_eq!(series.len(), 6);
        assert_eq!(series[2], t.windows[2].get(HpcEvent::Instructions));
        assert!(series.iter().all(|&v| v > 0));
    }

    #[test]
    fn mean_is_between_min_and_max() {
        let t = ExecutionTrace::record(WorkloadClass::Botnet, small(), 20, 10.0, 4);
        let series = t.series(HpcEvent::LlcLoads);
        let min = *series.iter().min().unwrap() as f64;
        let max = *series.iter().max().unwrap() as f64;
        let mean = t.mean(HpcEvent::LlcLoads);
        assert!(mean >= min && mean <= max);
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = ExecutionTrace::record(WorkloadClass::Worm, small(), 5, 10.0, 9);
        let b = ExecutionTrace::record(WorkloadClass::Worm, small(), 5, 10.0, 9);
        assert_eq!(a, b);
        let c = ExecutionTrace::record(WorkloadClass::Worm, small(), 5, 10.0, 10);
        assert_ne!(a, c);
    }
}
