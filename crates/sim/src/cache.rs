//! Set-associative cache models with true-LRU replacement.


/// Outcome of one cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

impl Access {
    /// `true` for [`Access::Miss`].
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, Access::Miss)
    }
}

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes (power of two).
    pub line_size: usize,
}

impl CacheConfig {
    /// Geometry of an i7-class 48 KiB, 12-way L1 data cache.
    #[must_use]
    pub fn l1d() -> Self {
        Self { capacity: 48 * 1024, ways: 12, line_size: 64 }
    }

    /// Geometry of an i7-class 32 KiB, 8-way L1 instruction cache.
    #[must_use]
    pub fn l1i() -> Self {
        Self { capacity: 32 * 1024, ways: 8, line_size: 64 }
    }

    /// Geometry of an i7-class 1.25 MiB, 20-way private L2.
    #[must_use]
    pub fn l2() -> Self {
        Self { capacity: 1280 * 1024, ways: 20, line_size: 64 }
    }

    /// Geometry of an i7-class 12 MiB, 12-way shared LLC.
    #[must_use]
    pub fn llc() -> Self {
        Self { capacity: 12 * 1024 * 1024, ways: 12, line_size: 64 }
    }

    /// The same geometry scaled down by `factor` (capacity divided,
    /// associativity and line size kept) — used for scaled-down simulation
    /// where workload footprints shrink by the same factor so that
    /// capacity pressure and reuse dynamics appear within short simulated
    /// slices.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or does not divide the capacity into a
    /// valid geometry (checked on use in [`Cache::new`]).
    #[must_use]
    pub fn scaled(self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        Self { capacity: self.capacity / factor, ..self }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`Cache::new`]).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.line_size.is_power_of_two() && self.line_size > 0);
        assert!(self.ways > 0);
        let lines = self.capacity / self.line_size;
        assert!(lines >= self.ways, "capacity too small for associativity");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// One set-associative cache level with true-LRU replacement.
///
/// # Example
///
/// ```
/// use hmd_sim::cache::{Access, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { capacity: 1024, ways: 2, line_size: 64 });
/// assert_eq!(c.access(0x40), Access::Miss);
/// assert_eq!(c.access(0x40), Access::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// tags[set * ways + way]; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Monotonic per-access stamp for LRU ordering.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a positive power of two, ways is
    /// zero, capacity is smaller than one full set, or the implied set
    /// count is not a power of two.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            tags: vec![u64::MAX; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up `addr`, filling the line (with LRU eviction) on a miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let line = addr / self.config.line_size as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];
        if let Some(way) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.clock;
            self.hits += 1;
            return Access::Hit;
        }
        // miss → evict LRU way
        let lru = (0..self.config.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + lru] = tag;
        self.stamps[base + lru] = self.clock;
        self.misses += 1;
        Access::Miss
    }

    /// Total hits since construction or [`Self::reset_stats`].
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction or [`Self::reset_stats`].
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when no accesses were made).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Zeroes hit/miss statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates every line (e.g. on container context switch).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

/// A fully-associative TLB with LRU replacement over 4 KiB pages.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Page size modeled by the TLB.
    pub const PAGE_SIZE: u64 = 4096;

    /// A TLB with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics for zero entries.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            entries,
            pages: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`, filling the entry on a miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let page = addr / Self::PAGE_SIZE;
        if let Some(i) = self.pages.iter().position(|&p| p == page) {
            self.stamps[i] = self.clock;
            self.hits += 1;
            return Access::Hit;
        }
        let lru = (0..self.entries).min_by_key(|&i| self.stamps[i]).expect("entries > 0");
        self.pages[lru] = page;
        self.stamps[lru] = self.clock;
        self.misses += 1;
        Access::Miss
    }

    /// Total hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.pages.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// Zeroes hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B lines
        Cache::new(CacheConfig { capacity: 512, ways: 2, line_size: 64 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.access(0).is_miss());
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(63), Access::Hit); // same line
        assert!(c.access(64).is_miss()); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 holds lines whose line-index ≡ 0 (mod 4): addresses 0, 1024, 2048
        assert!(c.access(0).is_miss());
        assert!(c.access(1024).is_miss());
        // touch 0 so 1024 becomes LRU
        assert_eq!(c.access(0), Access::Hit);
        assert!(c.access(2048).is_miss()); // evicts 1024
        assert_eq!(c.access(0), Access::Hit); // still resident
        assert!(c.access(1024).is_miss()); // was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut small = Cache::new(CacheConfig { capacity: 1024, ways: 2, line_size: 64 });
        // cyclic scan over 4 KiB > 1 KiB capacity → ~100% misses after warmup
        for round in 0..8 {
            for line in 0..64u64 {
                let a = small.access(line * 64);
                if round > 0 {
                    assert!(a.is_miss());
                }
            }
        }
        assert!(small.miss_ratio() > 0.9);
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        for _ in 0..4 {
            for line in 0..128u64 {
                c.access(line * 64);
            }
        }
        assert!(c.miss_ratio() < 0.3);
        c.reset_stats();
        for line in 0..128u64 {
            assert_eq!(c.access(line * 64), Access::Hit);
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(c.access(0).is_miss());
    }

    #[test]
    fn i7_geometries_are_valid() {
        for cfg in [CacheConfig::l1d(), CacheConfig::l1i(), CacheConfig::l2(), CacheConfig::llc()]
        {
            let c = Cache::new(cfg);
            assert!(c.config().sets() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(CacheConfig { capacity: 960, ways: 2, line_size: 64 });
    }

    #[test]
    fn tlb_hit_miss_and_lru() {
        let mut t = Tlb::new(2);
        assert!(t.access(0).is_miss());
        assert_eq!(t.access(100), Access::Hit); // same page
        assert!(t.access(4096).is_miss());
        assert_eq!(t.access(0), Access::Hit);
        assert!(t.access(2 * 4096).is_miss()); // evicts page 1 (LRU)
        assert!(t.access(4096).is_miss());
        assert_eq!(t.hits(), 2);
    }

    #[test]
    fn tlb_flush_and_reset() {
        let mut t = Tlb::new(4);
        t.access(0);
        t.flush();
        assert!(t.access(0).is_miss());
        t.reset_stats();
        assert_eq!(t.misses(), 0);
    }
}
