//! Synthetic processor and HPC-sampling substrate.
//!
//! The paper profiles 3,000+ real benign and malware applications with
//! Linux `perf` on an 11th-gen Intel i7, sampling 30+ hardware events
//! every 10 ms inside LXC containers. None of that hardware or data is
//! available here, so this crate rebuilds the *generating process*:
//!
//! * [`cache`] — set-associative L1D/L1I/L2/LLC caches (true LRU) and
//!   fully-associative TLBs;
//! * [`branch`] — a gshare branch predictor with 2-bit counters;
//! * [`workload`] — phase-based behavioural models of 8 benign classes
//!   and 8 malware families (ransomware scan/encrypt, rootkit hooking,
//!   botnet beaconing, …) with per-instance log-normal jitter;
//! * [`machine`] — the simulated core: drives a workload's address and
//!   branch streams through the models and derives a cycle count;
//! * [`events`] / [`perf`] — a 35-event PMU vocabulary and a `perf`-style
//!   sampler with 4-slot counter multiplexing and scaling error;
//! * [`container`] — LXC-style isolation vs. VM-emulated counters;
//! * [`corpus`] — parallel corpus campaigns producing labeled
//!   [`hmd_tabular::Dataset`]s;
//! * [`dist`] — normal / log-normal / Poisson / exponential samplers
//!   (`rand_distr` is not a sanctioned dependency).
//!
//! Counter correlations (LLC-loads vs. LLC-load-misses, instructions vs.
//! cycles, …) arise from the micro-architecture model itself rather than
//! from independently sampled noise — the property the paper's attacks
//! and defenses actually exercise.
//!
//! # Example
//!
//! ```
//! use hmd_sim::corpus::{build_corpus, CorpusConfig};
//!
//! let corpus = build_corpus(&CorpusConfig::quick(42));
//! assert!(corpus.dataset.len() > 0);
//! assert_eq!(corpus.dataset.n_features(), 35);
//! ```

pub mod branch;
pub mod cache;
pub mod container;
pub mod corpus;
pub mod dist;
pub mod events;
pub mod machine;
pub mod perf;
pub mod stream;
pub mod trace;
pub mod workload;

pub use container::{Container, IsolationMode};
pub use corpus::{build_corpus, Corpus, CorpusConfig};
pub use events::{CounterSet, HpcEvent};
pub use machine::{Machine, MachineConfig, RunningWorkload};
pub use perf::{PerfConfig, PerfSampler, Sample};
pub use stream::{StreamConfig, StreamedWindow, WindowStream};
pub use trace::{ExecutionTrace, TraceWindow};
pub use workload::{WorkloadClass, WorkloadProfile};
