//! An endless, seeded stream of labeled HPC windows — the traffic
//! source for the long-running serving mode.
//!
//! [`build_corpus`](crate::corpus::build_corpus) runs a fixed campaign
//! and returns a batch dataset; a serving process instead wants windows
//! one at a time, forever. [`WindowStream`] provides that: it keeps one
//! container, repeatedly samples an application class (benign or
//! malware, governed by `malware_fraction`), runs the instance, and
//! yields its recorded windows in order. Everything derives from the
//! seed, so two streams with the same config emit byte-identical window
//! sequences — the serving determinism test depends on this.

use std::collections::VecDeque;

use hmd_util::rng::prelude::*;

use crate::container::{Container, IsolationMode};
use crate::machine::MachineConfig;
use crate::perf::PerfConfig;
use crate::workload::{WorkloadClass, WorkloadProfile};

/// Configuration of a serving traffic stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Probability that the next application instance is malware.
    pub malware_fraction: f64,
    /// Recorded sampling windows per application instance.
    pub windows_per_app: usize,
    /// Unrecorded warm-up windows per application instance.
    pub warmup_windows: usize,
    /// Simulated core configuration.
    pub machine: MachineConfig,
    /// Perf sampler configuration.
    pub perf: PerfConfig,
    /// Container isolation mode.
    pub isolation: IsolationMode,
    /// Master seed; the whole stream replays from it.
    pub seed: u64,
}

impl StreamConfig {
    /// A small, fast configuration for tests and the serving demo.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            malware_fraction: 0.3,
            windows_per_app: 2,
            warmup_windows: 0,
            machine: MachineConfig { slice_instructions: 2_000, ..MachineConfig::default() },
            perf: PerfConfig::default(),
            isolation: IsolationMode::LxcDirect,
            seed,
        }
    }
}

/// One window drawn from the stream: the HPC vector plus its ground
/// truth.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamedWindow {
    /// One value per perf event, in `PerfConfig` event order.
    pub values: Vec<f64>,
    /// The workload class that produced the window.
    pub class: WorkloadClass,
}

impl StreamedWindow {
    /// Ground truth: the window came from a malware family.
    #[must_use]
    pub fn is_malware(&self) -> bool {
        self.class.is_malware()
    }
}

/// The endless window source. Implements [`Iterator`] and never returns
/// `None`.
#[derive(Debug)]
pub struct WindowStream {
    cfg: StreamConfig,
    container: Container,
    rng: StdRng,
    buffered: VecDeque<StreamedWindow>,
}

impl WindowStream {
    /// A stream over `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `malware_fraction` is outside `[0, 1]`,
    /// `windows_per_app` is zero, or the machine/perf configuration is
    /// invalid.
    #[must_use]
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.malware_fraction),
            "malware_fraction must be in [0, 1]"
        );
        assert!(cfg.windows_per_app > 0, "need at least one window per app");
        let container =
            Container::new(cfg.machine, cfg.perf.clone(), cfg.isolation, cfg.seed ^ 0x5EED);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self { cfg, container, rng, buffered: VecDeque::new() }
    }

    /// The stream's event names, in row order.
    #[must_use]
    pub fn feature_names(&self) -> Vec<String> {
        self.cfg.perf.events.iter().map(|e| e.name().to_owned()).collect()
    }

    /// Changes the malware mix for subsequently launched applications —
    /// how a serving scenario scripts phases (benign lull, attack
    /// burst). Already-buffered windows are unaffected.
    pub fn set_malware_fraction(&mut self, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction), "malware_fraction must be in [0, 1]");
        self.cfg.malware_fraction = fraction;
    }

    /// Runs one more application instance and buffers its windows.
    fn refill(&mut self) {
        let malware = self.rng.random::<f64>() < self.cfg.malware_fraction;
        let classes: &[WorkloadClass] =
            if malware { &WorkloadClass::MALWARE } else { &WorkloadClass::BENIGN };
        let class = *classes.choose(&mut self.rng).expect("class lists are non-empty");
        let instance_seed: u64 = self.rng.random();
        let mut instance_rng = StdRng::seed_from_u64(instance_seed);
        let profile = WorkloadProfile::sample_instance(class, &mut instance_rng);
        for sample in
            self.container.run_app(&profile, self.cfg.warmup_windows, self.cfg.windows_per_app)
        {
            self.buffered.push_back(StreamedWindow { values: sample.values, class });
        }
    }
}

impl Iterator for WindowStream {
    type Item = StreamedWindow;

    fn next(&mut self) -> Option<StreamedWindow> {
        while self.buffered.is_empty() {
            self.refill();
        }
        self.buffered.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::HpcEvent;

    #[test]
    fn stream_is_endless_and_deterministic() {
        let a: Vec<StreamedWindow> = WindowStream::new(StreamConfig::quick(9)).take(40).collect();
        let b: Vec<StreamedWindow> = WindowStream::new(StreamConfig::quick(9)).take(40).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert!(a.iter().all(|w| w.values.len() == HpcEvent::ALL.len()));
    }

    #[test]
    fn different_seeds_yield_different_traffic() {
        let a: Vec<StreamedWindow> = WindowStream::new(StreamConfig::quick(1)).take(20).collect();
        let b: Vec<StreamedWindow> = WindowStream::new(StreamConfig::quick(2)).take(20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn malware_fraction_extremes_control_the_mix() {
        let mut all_benign = StreamConfig::quick(5);
        all_benign.malware_fraction = 0.0;
        assert!(WindowStream::new(all_benign).take(30).all(|w| !w.is_malware()));

        let mut all_malware = StreamConfig::quick(5);
        all_malware.malware_fraction = 1.0;
        assert!(WindowStream::new(all_malware).take(30).all(|w| w.is_malware()));
    }

    #[test]
    fn fraction_can_change_mid_stream() {
        let mut cfg = StreamConfig::quick(11);
        cfg.malware_fraction = 0.0;
        let mut s = WindowStream::new(cfg);
        for _ in 0..10 {
            assert!(!s.next().unwrap().is_malware());
        }
        s.set_malware_fraction(1.0);
        // drain windows buffered under the old mix, then expect malware
        let buffered = s.buffered.len();
        let _: Vec<StreamedWindow> = s.by_ref().take(buffered).collect();
        assert!(s.take(10).all(|w| w.is_malware()));
    }

    #[test]
    #[should_panic(expected = "malware_fraction")]
    fn rejects_bad_fraction() {
        let mut cfg = StreamConfig::quick(0);
        cfg.malware_fraction = 1.5;
        let _ = WindowStream::new(cfg);
    }
}
