//! A gshare branch predictor with 2-bit saturating counters.

/// Outcome of one branch prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Prediction {
    /// Prediction matched the actual outcome.
    Correct,
    /// Prediction missed — the pipeline pays a flush penalty.
    Mispredicted,
}

impl Prediction {
    /// `true` for [`Prediction::Mispredicted`].
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, Prediction::Mispredicted)
    }
}

/// A gshare predictor: the pattern-history table is indexed by the branch
/// PC XOR-ed with a global history register of recent outcomes, each entry
/// a 2-bit saturating counter.
///
/// # Example
///
/// ```
/// use hmd_sim::branch::Gshare;
///
/// let mut bp = Gshare::new(10); // 1024-entry table
/// // An always-taken branch becomes perfectly predicted once the global
/// // history register has saturated (10 outcomes) and the counters trained.
/// for _ in 0..24 { bp.execute(0x400123, true); }
/// assert!(bp.execute(0x400123, true) == hmd_sim::branch::Prediction::Correct);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    history_bits: u32,
    table: Vec<u8>,
    history: u64,
    correct: u64,
    mispredicted: u64,
}

impl Gshare {
    /// A predictor with a `2^history_bits`-entry pattern table.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ history_bits ≤ 24`.
    #[must_use]
    pub fn new(history_bits: u32) -> Self {
        assert!((1..=24).contains(&history_bits), "history bits must be in 1..=24");
        Self {
            history_bits,
            table: vec![1; 1 << history_bits], // weakly not-taken
            history: 0,
            correct: 0,
            mispredicted: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts, then trains on the actual outcome, returning whether the
    /// prediction was correct.
    pub fn execute(&mut self, pc: u64, taken: bool) -> Prediction {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        // train
        if taken {
            self.table[idx] = (counter + 1).min(3);
        } else {
            self.table[idx] = counter.saturating_sub(1);
        }
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
        if predicted_taken == taken {
            self.correct += 1;
            Prediction::Correct
        } else {
            self.mispredicted += 1;
            Prediction::Mispredicted
        }
    }

    /// Correct predictions so far.
    #[must_use]
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Mispredictions so far.
    #[must_use]
    pub fn mispredicted(&self) -> u64 {
        self.mispredicted
    }

    /// Misprediction ratio (0 when no branches executed).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.correct + self.mispredicted;
        if total == 0 {
            0.0
        } else {
            self.mispredicted as f64 / total as f64
        }
    }

    /// Zeroes prediction statistics (table state is kept).
    pub fn reset_stats(&mut self) {
        self.correct = 0;
        self.mispredicted = 0;
    }

    /// Clears all learned state (container switch).
    pub fn flush(&mut self) {
        self.table.fill(1);
        self.history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_util::rng::prelude::*;

    #[test]
    fn learns_static_branch() {
        let mut bp = Gshare::new(8);
        for _ in 0..10 {
            bp.execute(0x1000, true);
        }
        bp.reset_stats();
        for _ in 0..100 {
            bp.execute(0x1000, true);
        }
        assert_eq!(bp.mispredicted(), 0);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = Gshare::new(12);
        // T,N,T,N ... the history register disambiguates the two states
        for i in 0..64 {
            bp.execute(0x2000, i % 2 == 0);
        }
        bp.reset_stats();
        for i in 0..200 {
            bp.execute(0x2000, i % 2 == 0);
        }
        assert!(
            bp.miss_ratio() < 0.05,
            "alternating pattern should be learned, miss ratio {}",
            bp.miss_ratio()
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut bp = Gshare::new(12);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            bp.execute(rng.random_range(0..1u64 << 20) << 2, rng.random_bool(0.5));
        }
        let r = bp.miss_ratio();
        assert!((0.4..0.6).contains(&r), "random miss ratio {r}");
    }

    #[test]
    fn biased_branches_mispredict_less() {
        let mut bp = Gshare::new(12);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            bp.execute(0x3000 + rng.random_range(0..16u64) * 4, rng.random_bool(0.95));
        }
        assert!(bp.miss_ratio() < 0.15, "biased miss ratio {}", bp.miss_ratio());
    }

    #[test]
    fn flush_forgets() {
        let mut bp = Gshare::new(8);
        for _ in 0..50 {
            bp.execute(0x1000, true);
        }
        bp.flush();
        bp.reset_stats();
        bp.execute(0x1000, true);
        assert_eq!(bp.mispredicted(), 1); // back to weakly not-taken
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn rejects_bad_size() {
        let _ = Gshare::new(0);
    }
}
