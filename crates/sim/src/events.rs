//! The hardware-event vocabulary exposed by the simulated PMU.
//!
//! The paper collects "+30 events" with Linux `perf`; this enum reproduces
//! that vocabulary with perf's canonical event names, including the
//! dynamic-PMU alias `cpu/cache-misses/` that appears among the paper's
//! top-4 MI-selected features.

use std::fmt;
use std::str::FromStr;


/// One hardware performance event the simulated PMU can count.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum HpcEvent {
    /// Retired instructions.
    Instructions,
    /// Core clock cycles.
    Cycles,
    /// Reference (constant-rate) cycles.
    RefCycles,
    /// Bus cycles.
    BusCycles,
    /// Cycles the frontend was stalled.
    StalledCyclesFrontend,
    /// Cycles the backend was stalled.
    StalledCyclesBackend,
    /// Last-level cache accesses (perf's `cache-references`).
    CacheReferences,
    /// Last-level cache misses (perf's `cache-misses`).
    CacheMisses,
    /// `cpu/cache-misses/` — the dynamic-PMU spelling of
    /// [`HpcEvent::CacheMisses`]; counted in a different multiplexing
    /// group, so its scaled value differs slightly.
    CpuCacheMisses,
    /// LLC load accesses.
    LlcLoads,
    /// LLC load misses.
    LlcLoadMisses,
    /// LLC store accesses.
    LlcStores,
    /// LLC store misses.
    LlcStoreMisses,
    /// L1 data-cache loads.
    L1DcacheLoads,
    /// L1 data-cache load misses.
    L1DcacheLoadMisses,
    /// L1 data-cache stores.
    L1DcacheStores,
    /// L1 instruction-cache load misses.
    L1IcacheLoadMisses,
    /// Data-TLB lookups.
    DtlbLoads,
    /// Data-TLB misses.
    DtlbLoadMisses,
    /// Instruction-TLB lookups.
    ItlbLoads,
    /// Instruction-TLB misses.
    ItlbLoadMisses,
    /// Retired branch instructions.
    BranchInstructions,
    /// Mispredicted branches.
    BranchMisses,
    /// Branch-unit loads (BPU reads).
    BranchLoads,
    /// Branch-unit load misses.
    BranchLoadMisses,
    /// Memory load micro-ops.
    MemLoads,
    /// Memory store micro-ops.
    MemStores,
    /// Local-node memory loads.
    NodeLoads,
    /// Local-node memory load misses.
    NodeLoadMisses,
    /// Scheduler context switches (software event).
    ContextSwitches,
    /// CPU migrations (software event).
    CpuMigrations,
    /// Total page faults (software event).
    PageFaults,
    /// Minor page faults (software event).
    MinorFaults,
    /// Major page faults (software event).
    MajorFaults,
    /// Task clock in nanoseconds (software event).
    TaskClock,
}

/// Error returned when parsing an unknown event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError(String);

impl fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown hardware event name: {}", self.0)
    }
}

impl std::error::Error for ParseEventError {}

impl HpcEvent {
    /// Every event, in stable order. `ALL.len()` is the PMU vocabulary
    /// size (35 events, i.e. the paper's "+30").
    pub const ALL: [HpcEvent; 35] = [
        HpcEvent::Instructions,
        HpcEvent::Cycles,
        HpcEvent::RefCycles,
        HpcEvent::BusCycles,
        HpcEvent::StalledCyclesFrontend,
        HpcEvent::StalledCyclesBackend,
        HpcEvent::CacheReferences,
        HpcEvent::CacheMisses,
        HpcEvent::CpuCacheMisses,
        HpcEvent::LlcLoads,
        HpcEvent::LlcLoadMisses,
        HpcEvent::LlcStores,
        HpcEvent::LlcStoreMisses,
        HpcEvent::L1DcacheLoads,
        HpcEvent::L1DcacheLoadMisses,
        HpcEvent::L1DcacheStores,
        HpcEvent::L1IcacheLoadMisses,
        HpcEvent::DtlbLoads,
        HpcEvent::DtlbLoadMisses,
        HpcEvent::ItlbLoads,
        HpcEvent::ItlbLoadMisses,
        HpcEvent::BranchInstructions,
        HpcEvent::BranchMisses,
        HpcEvent::BranchLoads,
        HpcEvent::BranchLoadMisses,
        HpcEvent::MemLoads,
        HpcEvent::MemStores,
        HpcEvent::NodeLoads,
        HpcEvent::NodeLoadMisses,
        HpcEvent::ContextSwitches,
        HpcEvent::CpuMigrations,
        HpcEvent::PageFaults,
        HpcEvent::MinorFaults,
        HpcEvent::MajorFaults,
        HpcEvent::TaskClock,
    ];

    /// The canonical `perf list` spelling of this event.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HpcEvent::Instructions => "instructions",
            HpcEvent::Cycles => "cycles",
            HpcEvent::RefCycles => "ref-cycles",
            HpcEvent::BusCycles => "bus-cycles",
            HpcEvent::StalledCyclesFrontend => "stalled-cycles-frontend",
            HpcEvent::StalledCyclesBackend => "stalled-cycles-backend",
            HpcEvent::CacheReferences => "cache-references",
            HpcEvent::CacheMisses => "cache-misses",
            HpcEvent::CpuCacheMisses => "cpu/cache-misses/",
            HpcEvent::LlcLoads => "LLC-loads",
            HpcEvent::LlcLoadMisses => "LLC-load-misses",
            HpcEvent::LlcStores => "LLC-stores",
            HpcEvent::LlcStoreMisses => "LLC-store-misses",
            HpcEvent::L1DcacheLoads => "L1-dcache-loads",
            HpcEvent::L1DcacheLoadMisses => "L1-dcache-load-misses",
            HpcEvent::L1DcacheStores => "L1-dcache-stores",
            HpcEvent::L1IcacheLoadMisses => "L1-icache-load-misses",
            HpcEvent::DtlbLoads => "dTLB-loads",
            HpcEvent::DtlbLoadMisses => "dTLB-load-misses",
            HpcEvent::ItlbLoads => "iTLB-loads",
            HpcEvent::ItlbLoadMisses => "iTLB-load-misses",
            HpcEvent::BranchInstructions => "branch-instructions",
            HpcEvent::BranchMisses => "branch-misses",
            HpcEvent::BranchLoads => "branch-loads",
            HpcEvent::BranchLoadMisses => "branch-load-misses",
            HpcEvent::MemLoads => "mem-loads",
            HpcEvent::MemStores => "mem-stores",
            HpcEvent::NodeLoads => "node-loads",
            HpcEvent::NodeLoadMisses => "node-load-misses",
            HpcEvent::ContextSwitches => "context-switches",
            HpcEvent::CpuMigrations => "cpu-migrations",
            HpcEvent::PageFaults => "page-faults",
            HpcEvent::MinorFaults => "minor-faults",
            HpcEvent::MajorFaults => "major-faults",
            HpcEvent::TaskClock => "task-clock",
        }
    }

    /// Stable dense index of this event within [`HpcEvent::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        HpcEvent::ALL.iter().position(|&e| e == self).expect("event listed in ALL")
    }

    /// Whether this is a perf "software" event (counted by the kernel, not
    /// a PMU counter slot — never multiplexed).
    #[must_use]
    pub fn is_software(self) -> bool {
        matches!(
            self,
            HpcEvent::ContextSwitches
                | HpcEvent::CpuMigrations
                | HpcEvent::PageFaults
                | HpcEvent::MinorFaults
                | HpcEvent::MajorFaults
                | HpcEvent::TaskClock
        )
    }
}

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for HpcEvent {
    type Err = ParseEventError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HpcEvent::ALL
            .iter()
            .copied()
            .find(|e| e.name() == s)
            .ok_or_else(|| ParseEventError(s.to_owned()))
    }
}

/// A counter value for every event in [`HpcEvent::ALL`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: Vec<u64>,
}

impl CounterSet {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Self { counts: vec![0; HpcEvent::ALL.len()] }
    }

    /// Reads one counter.
    #[must_use]
    pub fn get(&self, event: HpcEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Adds to one counter (saturating).
    pub fn add(&mut self, event: HpcEvent, delta: u64) {
        let c = &mut self.counts[event.index()];
        *c = c.saturating_add(delta);
    }

    /// Sets one counter.
    pub fn set(&mut self, event: HpcEvent, value: u64) {
        self.counts[event.index()] = value;
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.counts.fill(0);
    }

    /// Element-wise difference `self − earlier` (saturating), for
    /// window-delta sampling.
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterSet) -> CounterSet {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        CounterSet { counts }
    }

    /// Accumulates another counter set into this one.
    pub fn accumulate(&mut self, other: &CounterSet) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_unique_names_and_indices() {
        let mut names: Vec<&str> = HpcEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HpcEvent::ALL.len());
        for (i, e) in HpcEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn vocabulary_is_thirty_plus() {
        assert!(HpcEvent::ALL.len() > 30, "paper collects 30+ events");
    }

    #[test]
    fn parse_roundtrip() {
        for e in HpcEvent::ALL {
            assert_eq!(e.name().parse::<HpcEvent>().unwrap(), e);
        }
        assert!("bogus-event".parse::<HpcEvent>().is_err());
    }

    #[test]
    fn software_event_classification() {
        assert!(HpcEvent::ContextSwitches.is_software());
        assert!(HpcEvent::TaskClock.is_software());
        assert!(!HpcEvent::LlcLoadMisses.is_software());
    }

    #[test]
    fn counter_set_basic_ops() {
        let mut c = CounterSet::new();
        c.add(HpcEvent::Cycles, 100);
        c.add(HpcEvent::Cycles, 50);
        assert_eq!(c.get(HpcEvent::Cycles), 150);
        assert_eq!(c.get(HpcEvent::Instructions), 0);
        c.set(HpcEvent::Instructions, 42);
        assert_eq!(c.get(HpcEvent::Instructions), 42);
        c.reset();
        assert_eq!(c.get(HpcEvent::Cycles), 0);
    }

    #[test]
    fn counter_delta_and_accumulate() {
        let mut a = CounterSet::new();
        a.add(HpcEvent::LlcLoads, 10);
        let mut b = a.clone();
        b.add(HpcEvent::LlcLoads, 5);
        b.add(HpcEvent::LlcLoadMisses, 2);
        let d = b.delta_since(&a);
        assert_eq!(d.get(HpcEvent::LlcLoads), 5);
        assert_eq!(d.get(HpcEvent::LlcLoadMisses), 2);
        a.accumulate(&d);
        assert_eq!(a.get(HpcEvent::LlcLoads), 15);
    }

    #[test]
    fn counter_add_saturates() {
        let mut c = CounterSet::new();
        c.set(HpcEvent::Cycles, u64::MAX - 1);
        c.add(HpcEvent::Cycles, 10);
        assert_eq!(c.get(HpcEvent::Cycles), u64::MAX);
    }
}
