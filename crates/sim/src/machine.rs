//! The simulated core: caches + branch predictor + TLBs + cycle model.

use hmd_util::rng::prelude::*;

use crate::branch::Gshare;
use crate::cache::{Cache, CacheConfig, Tlb};
use crate::dist::Poisson;
use crate::events::{CounterSet, HpcEvent};
use crate::workload::{Phase, WorkloadProfile};

/// Static configuration of the simulated core.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Core frequency in GHz (defines cycles per wall-clock window).
    pub freq_ghz: f64,
    /// Reference-clock ratio (ref-cycles = cycles × ratio).
    pub ref_clock_ratio: f64,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified private L2 geometry.
    pub l2: CacheConfig,
    /// Shared last-level cache geometry.
    pub llc: CacheConfig,
    /// Data-TLB entries.
    pub dtlb_entries: usize,
    /// Instruction-TLB entries.
    pub itlb_entries: usize,
    /// gshare history bits.
    pub branch_history_bits: u32,
    /// Scaled-down-simulation factor: workload data/code footprints are
    /// divided by this (the default cache geometry is shrunk by the same
    /// factor), so that reuse and eviction dynamics appear within the
    /// short simulated slice. 1 = full-size simulation.
    pub footprint_scale: u64,
    /// Enable the next-line hardware prefetcher: on a demand L1D miss the
    /// following cache line is pulled into L2/LLC in the background
    /// (filling them without counting as a demand miss or paying a stall).
    pub next_line_prefetch: bool,
    /// Number of instructions actually simulated per sampling window; the
    /// resulting rates are scaled up to fill the whole window (counter
    /// values scale linearly with time).
    pub slice_instructions: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            freq_ghz: 3.5,
            ref_clock_ratio: 0.771,
            l1d: CacheConfig::l1d().scaled(16),
            l1i: CacheConfig::l1i().scaled(16),
            l2: CacheConfig::l2().scaled(16),
            llc: CacheConfig::llc().scaled(16),
            dtlb_entries: 16,
            itlb_entries: 8,
            branch_history_bits: 12,
            footprint_scale: 16,
            next_line_prefetch: false,
            slice_instructions: 20_000,
        }
    }
}

/// Stall penalties in cycles, i7-class defaults.
#[derive(Copy, Clone, Debug, PartialEq)]
struct Penalties {
    l2_hit: f64,
    llc_hit: f64,
    dram: f64,
    branch_miss: f64,
    dtlb_miss: f64,
    itlb_miss: f64,
    icache_miss: f64,
}

const PENALTIES: Penalties = Penalties {
    l2_hit: 10.0,
    llc_hit: 35.0,
    dram: 180.0,
    branch_miss: 16.0,
    dtlb_miss: 22.0,
    itlb_miss: 30.0,
    icache_miss: 12.0,
};

/// The simulated core.
///
/// [`Machine::run_window`] executes a slice of a workload instance through
/// the cache hierarchy, branch predictor and TLBs, derives a cycle count
/// from the observed miss rates, and returns the scaled per-window
/// [`CounterSet`] — exactly what the PMU would expose for one 10 ms
/// sampling period.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    llc: Cache,
    dtlb: Tlb,
    itlb: Tlb,
    branch: Gshare,
}

/// A running workload with its address/branch generator state.
#[derive(Debug)]
pub struct RunningWorkload {
    profile: WorkloadProfile,
    phase_idx: usize,
    instr_in_phase: u64,
    phase_len: u64,
    /// Base of the data heap in the synthetic address space.
    heap_base: u64,
    /// Base of the code segment.
    code_base: u64,
    /// Current stream cursor within the working set.
    stream_pos: u64,
    /// Base of the current hot loop within the code footprint.
    loop_base: u64,
    /// Current program counter offset within the hot loop.
    pc_offset: u64,
    rng: StdRng,
}

impl RunningWorkload {
    /// Starts an instance of `profile` with its own generator seed.
    ///
    /// Distinct instances are placed in distinct address-space slices so a
    /// shared cache sees genuine inter-instance conflicts.
    #[must_use]
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = rng.random_range(0..1u64 << 16);
        Self {
            profile,
            phase_idx: 0,
            instr_in_phase: 0,
            phase_len: 0,
            heap_base: 0x5600_0000_0000 + slot * (1 << 30),
            code_base: 0x4000_0000 + slot * (1 << 24),
            stream_pos: 0,
            loop_base: 0,
            pc_offset: 0,
            rng,
        }
    }

    /// The workload profile this instance runs.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The currently active phase.
    #[must_use]
    pub fn current_phase(&self) -> &Phase {
        &self.profile.phases[self.phase_idx]
    }

    fn maybe_advance_phase(&mut self) {
        if self.instr_in_phase >= self.phase_len {
            self.phase_idx = self.profile.pick_phase(&mut self.rng);
            self.instr_in_phase = 0;
            // Phase lengths sit at a few sampling windows: each 10 ms
            // sample sees mostly one phase with occasional transitions,
            // matching how real program phases (100 ms – seconds) look at
            // the simulator's scaled-down time base.
            self.phase_len = self.rng.random_range(30_000..120_000);
            self.stream_pos = self.rng.random_range(0..self.current_phase().mem.working_set);
        }
    }
}

impl Machine {
    /// Builds a core from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid cache geometries (see [`Cache::new`]).
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        Self {
            l1d: Cache::new(config.l1d),
            l1i: Cache::new(config.l1i),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            dtlb: Tlb::new(config.dtlb_entries),
            itlb: Tlb::new(config.itlb_entries),
            branch: Gshare::new(config.branch_history_bits),
            config,
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Flushes all micro-architectural state (container switch / reboot).
    pub fn flush(&mut self) {
        self.l1d.flush();
        self.l1i.flush();
        self.l2.flush();
        self.llc.flush();
        self.dtlb.flush();
        self.itlb.flush();
        self.branch.flush();
    }

    /// Executes one sampling window of `window_ms` milliseconds for
    /// `workload`, returning the scaled counter deltas for that window.
    ///
    /// Only `config.slice_instructions` instructions are actually pushed
    /// through the models; all hardware counts are scaled linearly so that
    /// the derived cycle count fills the wall-clock window, mirroring how
    /// counter values scale with sampling period on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive.
    pub fn run_window(&mut self, workload: &mut RunningWorkload, window_ms: f64) -> CounterSet {
        assert!(window_ms > 0.0, "window must be positive");
        let slice = self.config.slice_instructions;

        // raw slice counters
        let mut mem_loads = 0u64;
        let mut mem_stores = 0u64;
        let mut l1d_load_miss = 0u64;
        let mut l1d_store_miss = 0u64;
        let mut l1i_miss = 0u64;
        let mut l2_miss = 0u64;
        let mut llc_load_access = 0u64;
        let mut llc_load_miss = 0u64;
        let mut llc_store_access = 0u64;
        let mut llc_store_miss = 0u64;
        let mut dtlb_miss = 0u64;
        let mut itlb_access = 0u64;
        let mut itlb_miss = 0u64;
        let mut branches = 0u64;
        let mut branch_miss = 0u64;

        let fscale = self.config.footprint_scale.max(1);
        for i in 0..slice {
            workload.maybe_advance_phase();
            workload.instr_in_phase += 1;
            let ph = *workload.current_phase();
            let data_ws = (ph.mem.working_set / fscale).max(4096);
            let code_ws = (ph.icache_footprint / fscale).max(1024);

            // ---- instruction fetch side ----
            // PC walk with loop locality: execution cycles inside a small
            // hot loop and occasionally jumps to another function in the
            // footprint. Unpredictable control flow (low branch
            // predictability, e.g. rootkit hook trampolines) jumps more.
            const LOOP_SIZE: u64 = 1024;
            let jump_prob = 0.002 + 0.06 * (1.0 - ph.branch.predictability);
            if workload.rng.random_bool(jump_prob) {
                workload.loop_base = workload.rng.random_range(0..code_ws);
            }
            workload.pc_offset = (workload.pc_offset + 4) % LOOP_SIZE.min(code_ws);
            let pc = workload.code_base + workload.loop_base + workload.pc_offset;
            // one icache/iTLB probe per 16-instruction fetch group
            if i % 16 == 0 {
                itlb_access += 1;
                if self.itlb.access(pc).is_miss() {
                    itlb_miss += 1;
                }
                if self.l1i.access(pc).is_miss() {
                    l1i_miss += 1;
                    if self.l2.access(pc).is_miss() {
                        l2_miss += 1;
                        llc_load_access += 1;
                        if self.llc.access(pc).is_miss() {
                            llc_load_miss += 1;
                        }
                    }
                }
            }

            // ---- branch side ----
            if workload.rng.random_bool(ph.branch.branch_ratio) {
                branches += 1;
                let site =
                    workload.rng.random_range(0..ph.branch.pc_diversity) * 4 + workload.code_base;
                let taken = if workload.rng.random_bool(ph.branch.predictability) {
                    // stable per-site direction: derive from the site id
                    !site.is_multiple_of(3)
                } else {
                    workload.rng.random_bool(ph.branch.taken_bias)
                };
                if self.branch.execute(site, taken).is_miss() {
                    branch_miss += 1;
                }
            }

            // ---- data side ----
            if workload.rng.random_bool(ph.mem.mem_ratio) {
                let is_store = workload.rng.random_bool(ph.mem.store_ratio);
                let addr = if workload.rng.random_bool(ph.mem.stream_prob) {
                    workload.stream_pos = (workload.stream_pos + ph.mem.stride) % data_ws;
                    workload.heap_base + workload.stream_pos
                } else if workload.rng.random_bool(ph.mem.hot_prob) {
                    let hot = ((data_ws as f64 * ph.mem.hot_fraction) as u64).max(64);
                    workload.heap_base + workload.rng.random_range(0..hot)
                } else {
                    workload.heap_base + workload.rng.random_range(0..data_ws)
                };
                if is_store {
                    mem_stores += 1;
                } else {
                    mem_loads += 1;
                }
                if self.dtlb.access(addr).is_miss() {
                    dtlb_miss += 1;
                }
                if self.l1d.access(addr).is_miss() {
                    if is_store {
                        l1d_store_miss += 1;
                    } else {
                        l1d_load_miss += 1;
                    }
                    if self.l2.access(addr).is_miss() {
                        l2_miss += 1;
                        if is_store {
                            llc_store_access += 1;
                            if self.llc.access(addr).is_miss() {
                                llc_store_miss += 1;
                            }
                        } else {
                            llc_load_access += 1;
                            if self.llc.access(addr).is_miss() {
                                llc_load_miss += 1;
                            }
                        }
                    }
                    // next-line prefetch: warm L2/LLC for the following
                    // line off the demand path (no counters, no stalls)
                    if self.config.next_line_prefetch {
                        let next = addr + self.config.l1d.line_size as u64;
                        if self.l2.access(next).is_miss() {
                            let _ = self.llc.access(next);
                        }
                    }
                }
            }
        }

        // ---- cycle model over the slice ----
        let ph = *workload.current_phase();
        let base_cycles = slice as f64 / ph.ipc_base;
        let l1d_miss = l1d_load_miss + l1d_store_miss;
        let llc_miss = llc_load_miss + llc_store_miss;
        let llc_access = llc_load_access + llc_store_access;
        let l2_hits = (l1d_miss + l1i_miss).saturating_sub(l2_miss);
        let llc_hits = llc_access.saturating_sub(llc_miss);
        let backend_stall = l2_hits as f64 * PENALTIES.l2_hit
            + llc_hits as f64 * PENALTIES.llc_hit
            + llc_miss as f64 * PENALTIES.dram
            + dtlb_miss as f64 * PENALTIES.dtlb_miss;
        let frontend_stall = branch_miss as f64 * PENALTIES.branch_miss
            + l1i_miss as f64 * PENALTIES.icache_miss
            + itlb_miss as f64 * PENALTIES.itlb_miss;
        let slice_cycles = base_cycles + backend_stall + frontend_stall;

        // scale the slice so it fills the occupied part of the window:
        // perf counts only while the task runs, so a mostly-blocked task
        // accumulates proportionally fewer cycles/instructions per window.
        let utilization = ph.utilization;
        let window_cycles = self.config.freq_ghz * 1e9 * window_ms / 1e3 * utilization;
        let scale = window_cycles / slice_cycles;
        let s = |v: u64| -> u64 { (v as f64 * scale).round() as u64 };

        let mut c = CounterSet::new();
        c.set(HpcEvent::Instructions, s(slice));
        c.set(HpcEvent::Cycles, window_cycles.round() as u64);
        c.set(
            HpcEvent::RefCycles,
            (window_cycles * self.config.ref_clock_ratio).round() as u64,
        );
        c.set(HpcEvent::BusCycles, (window_cycles / 4.0).round() as u64);
        c.set(HpcEvent::StalledCyclesFrontend, (frontend_stall * scale).round() as u64);
        c.set(HpcEvent::StalledCyclesBackend, (backend_stall * scale).round() as u64);
        // build aggregates from the already-rounded parts so the
        // perf identities (references = loads + stores, ...) hold exactly
        let llc_miss_scaled = s(llc_load_miss) + s(llc_store_miss);
        c.set(HpcEvent::CacheReferences, s(llc_load_access) + s(llc_store_access));
        c.set(HpcEvent::CacheMisses, llc_miss_scaled);
        c.set(HpcEvent::CpuCacheMisses, llc_miss_scaled);
        c.set(HpcEvent::LlcLoads, s(llc_load_access));
        c.set(HpcEvent::LlcLoadMisses, s(llc_load_miss));
        c.set(HpcEvent::LlcStores, s(llc_store_access));
        c.set(HpcEvent::LlcStoreMisses, s(llc_store_miss));
        c.set(HpcEvent::L1DcacheLoads, s(mem_loads));
        c.set(HpcEvent::L1DcacheLoadMisses, s(l1d_load_miss));
        c.set(HpcEvent::L1DcacheStores, s(mem_stores));
        c.set(HpcEvent::L1IcacheLoadMisses, s(l1i_miss));
        c.set(HpcEvent::DtlbLoads, s(mem_loads + mem_stores));
        c.set(HpcEvent::DtlbLoadMisses, s(dtlb_miss));
        c.set(HpcEvent::ItlbLoads, s(itlb_access));
        c.set(HpcEvent::ItlbLoadMisses, s(itlb_miss));
        c.set(HpcEvent::BranchInstructions, s(branches));
        c.set(HpcEvent::BranchMisses, s(branch_miss));
        c.set(HpcEvent::BranchLoads, s(branches));
        c.set(HpcEvent::BranchLoadMisses, s(branch_miss));
        c.set(HpcEvent::MemLoads, s(mem_loads));
        c.set(HpcEvent::MemStores, s(mem_stores));
        c.set(HpcEvent::NodeLoads, llc_miss_scaled);
        c.set(HpcEvent::NodeLoadMisses, llc_miss_scaled / 50);

        // software events: Poisson at per-window rates
        let cs = Poisson::new(ph.os.context_switch_rate * window_ms).sample(&mut workload.rng);
        let minor = Poisson::new(ph.os.minor_fault_rate * window_ms).sample(&mut workload.rng);
        let major = Poisson::new(ph.os.major_fault_rate * window_ms).sample(&mut workload.rng);
        let mig = Poisson::new(ph.os.migration_rate * window_ms).sample(&mut workload.rng);
        c.set(HpcEvent::ContextSwitches, cs);
        c.set(HpcEvent::MinorFaults, minor);
        c.set(HpcEvent::MajorFaults, major);
        c.set(HpcEvent::PageFaults, minor + major);
        c.set(HpcEvent::CpuMigrations, mig);
        c.set(HpcEvent::TaskClock, (window_ms * 1e6 * utilization).round() as u64);

        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadClass;

    fn small_config() -> MachineConfig {
        MachineConfig { slice_instructions: 8_000, ..MachineConfig::default() }
    }

    fn window_for(class: WorkloadClass, seed: u64) -> CounterSet {
        let mut machine = Machine::new(small_config());
        let profile = WorkloadProfile::canonical(class);
        let mut running = RunningWorkload::new(profile, seed);
        // warm caches to steady state, then measure
        for _ in 0..8 {
            let _ = machine.run_window(&mut running, 10.0);
        }
        machine.run_window(&mut running, 10.0)
    }

    #[test]
    fn cycles_track_task_clock_at_core_frequency() {
        for class in [WorkloadClass::Compiler, WorkloadClass::Ransomware] {
            let c = window_for(class, 1);
            let cycles = c.get(HpcEvent::Cycles) as f64;
            let tc_ns = c.get(HpcEvent::TaskClock) as f64;
            // cycles = freq(GHz) × occupied nanoseconds, up to rounding
            assert!((cycles - 3.5 * tc_ns).abs() <= 4.0, "cycles {cycles} vs 3.5×{tc_ns}");
            let full = 3.5e9 * 0.01;
            assert!(cycles > 0.2 * full && cycles <= full * 1.001, "cycles {cycles}");
        }
    }

    #[test]
    fn idle_workload_occupies_little_of_the_window() {
        let e = window_for(WorkloadClass::TextEditor, 1);
        let c = window_for(WorkloadClass::Compiler, 1);
        assert!(e.get(HpcEvent::Instructions) < c.get(HpcEvent::Instructions));
        assert!((e.get(HpcEvent::TaskClock) as f64) < 0.3 * 1e7);
        assert!(e.get(HpcEvent::Cycles) * 4 < c.get(HpcEvent::Cycles));
    }

    #[test]
    fn counter_identities_hold() {
        for class in [WorkloadClass::Database, WorkloadClass::Ransomware] {
            let c = window_for(class, 2);
            assert!(c.get(HpcEvent::LlcLoadMisses) <= c.get(HpcEvent::LlcLoads));
            assert!(c.get(HpcEvent::LlcStoreMisses) <= c.get(HpcEvent::LlcStores));
            assert!(c.get(HpcEvent::BranchMisses) <= c.get(HpcEvent::BranchInstructions));
            assert!(c.get(HpcEvent::L1DcacheLoadMisses) <= c.get(HpcEvent::L1DcacheLoads));
            assert_eq!(
                c.get(HpcEvent::CacheMisses),
                c.get(HpcEvent::LlcLoadMisses) + c.get(HpcEvent::LlcStoreMisses)
            );
            assert_eq!(
                c.get(HpcEvent::PageFaults),
                c.get(HpcEvent::MinorFaults) + c.get(HpcEvent::MajorFaults)
            );
            assert!(c.get(HpcEvent::Instructions) > 0);
        }
    }

    #[test]
    fn ransomware_stresses_llc_more_than_editor() {
        let r = window_for(WorkloadClass::Ransomware, 3);
        let e = window_for(WorkloadClass::TextEditor, 3);
        assert!(
            r.get(HpcEvent::LlcLoadMisses) > 5 * e.get(HpcEvent::LlcLoadMisses).max(1),
            "ransomware {} vs editor {}",
            r.get(HpcEvent::LlcLoadMisses),
            e.get(HpcEvent::LlcLoadMisses)
        );
    }

    #[test]
    fn crypto_miner_has_high_ipc_and_low_misses() {
        let m = window_for(WorkloadClass::CryptoMiner, 4);
        let d = window_for(WorkloadClass::Database, 4);
        // more instructions per occupied cycle ⇒ higher IPC
        let ipc = |c: &CounterSet| {
            c.get(HpcEvent::Instructions) as f64 / c.get(HpcEvent::Cycles) as f64
        };
        assert!(ipc(&m) > 2.0 * ipc(&d), "miner IPC {} vs db {}", ipc(&m), ipc(&d));
        // far fewer LLC misses per instruction
        let mpi = |c: &CounterSet| {
            c.get(HpcEvent::CacheMisses) as f64 / c.get(HpcEvent::Instructions) as f64
        };
        assert!(mpi(&m) < 0.5 * mpi(&d), "miner MPI {} vs db {}", mpi(&m), mpi(&d));
    }

    #[test]
    fn rootkit_pollutes_frontend() {
        let r = window_for(WorkloadClass::Rootkit, 5);
        let s = window_for(WorkloadClass::ScientificCompute, 5);
        // rootkit hooking inflates per-instruction icache and branch-miss
        // rates well past a well-behaved compute kernel
        let per_instr = |c: &CounterSet, e: HpcEvent| {
            c.get(e) as f64 / c.get(HpcEvent::Instructions) as f64
        };
        assert!(
            per_instr(&r, HpcEvent::L1IcacheLoadMisses)
                > 1.5 * per_instr(&s, HpcEvent::L1IcacheLoadMisses)
        );
        assert!(
            per_instr(&r, HpcEvent::BranchMisses)
                > 2.0 * per_instr(&s, HpcEvent::BranchMisses)
        );
    }

    #[test]
    fn windows_are_deterministic_per_seed() {
        let a = window_for(WorkloadClass::Worm, 9);
        let b = window_for(WorkloadClass::Worm, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn flush_changes_next_window() {
        let mut machine = Machine::new(small_config());
        let profile = WorkloadProfile::canonical(WorkloadClass::MediaPlayer);
        let mut w1 = RunningWorkload::new(profile.clone(), 7);
        let _ = machine.run_window(&mut w1, 10.0);
        let warm = machine.run_window(&mut w1, 10.0);
        machine.flush();
        let mut w2 = RunningWorkload::new(profile, 7);
        let _cold = machine.run_window(&mut w2, 10.0);
        // a freshly flushed machine sees more L1 misses than a warm one
        let warm2 = {
            let mut m = Machine::new(small_config());
            let mut w = RunningWorkload::new(
                WorkloadProfile::canonical(WorkloadClass::MediaPlayer),
                7,
            );
            let _ = m.run_window(&mut w, 10.0);
            m.run_window(&mut w, 10.0)
        };
        assert_eq!(warm, warm2);
    }

    #[test]
    fn prefetcher_cuts_streaming_demand_misses() {
        // a pure streaming phase: the next-line prefetcher should absorb
        // most of the demand L2/LLC misses
        let run = |prefetch: bool| {
            let cfg = MachineConfig {
                slice_instructions: 8_000,
                next_line_prefetch: prefetch,
                ..MachineConfig::default()
            };
            let mut machine = Machine::new(cfg);
            let mut w = RunningWorkload::new(
                WorkloadProfile::canonical(WorkloadClass::FileCompression),
                3,
            );
            for _ in 0..4 {
                let _ = machine.run_window(&mut w, 10.0);
            }
            machine.run_window(&mut w, 10.0)
        };
        let off = run(false);
        let on = run(true);
        assert!(
            on.get(HpcEvent::LlcLoadMisses) < off.get(HpcEvent::LlcLoadMisses),
            "prefetch on {} vs off {}",
            on.get(HpcEvent::LlcLoadMisses),
            off.get(HpcEvent::LlcLoadMisses)
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn run_window_validates_duration() {
        let mut machine = Machine::new(small_config());
        let mut w =
            RunningWorkload::new(WorkloadProfile::canonical(WorkloadClass::Worm), 1);
        let _ = machine.run_window(&mut w, 0.0);
    }
}
