//! CART decision tree (gini impurity) with optional per-split feature
//! subsampling so it can double as the random-forest base learner.

use hmd_tabular::Dataset;
use hmd_util::rng::prelude::*;

use crate::model::{validate_training_set, Classifier};
use crate::MlError;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Features examined per split (`None` = all — plain CART;
    /// `Some(k)` = uniform random subset of `k` — forest mode).
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_split: 8, min_samples_leaf: 3, max_features: None }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART binary classification tree.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, DecisionTree};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..40 {
///     let label = if i < 20 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut dt = DecisionTree::new();
/// dt.fit(&d, &targets)?;
/// assert!(dt.predict_proba_row(&[35.0])? > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    fitted: bool,
    rng_seed: u64,
    /// Accumulated weighted gini gain per feature.
    importances: Vec<f64>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTree {
    /// A tree with default hyper-parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(DecisionTreeConfig::default())
    }

    /// A tree with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: DecisionTreeConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            n_features: 0,
            fitted: false,
            rng_seed: 0,
            importances: Vec::new(),
        }
    }

    /// Sets the seed used for feature subsampling (forest mode).
    pub fn set_seed(&mut self, seed: u64) {
        self.rng_seed = seed;
    }

    /// Number of nodes in the fitted tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Normalized gini importances per feature (sums to 1 when any split
    /// occurred).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`.
    pub fn feature_importances(&self) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; self.n_features]);
        }
        Ok(self.importances.iter().map(|v| v / total).collect())
    }

    /// Fits on a subset of rows (bootstrap support for forests).
    ///
    /// # Errors
    ///
    /// Returns training-set validation errors.
    pub(crate) fn fit_indices(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
    ) -> Result<(), MlError> {
        if indices.is_empty() {
            return Err(MlError::DegenerateTrainingSet("no rows selected"));
        }
        self.n_features = data.n_features();
        self.nodes.clear();
        self.importances = vec![0.0; self.n_features];
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let mut idx = indices.to_vec();
        self.build(data, targets, &mut idx, 0, &mut rng)?;
        self.fitted = true;
        Ok(())
    }

    fn build(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> Result<usize, MlError> {
        let n = indices.len();
        let pos: f64 = indices.iter().map(|&i| targets[i]).sum();
        let proba = pos / n as f64;
        let pure = proba == 0.0 || proba == 1.0;
        if pure || depth >= self.config.max_depth || n < self.config.min_samples_split {
            self.nodes.push(Node::Leaf { proba });
            return Ok(self.nodes.len() - 1);
        }

        // choose candidate features
        let features: Vec<usize> = match self.config.max_features {
            Some(k) if k < self.n_features => {
                let mut all: Vec<usize> = (0..self.n_features).collect();
                all.shuffle(rng);
                all.truncate(k.max(1));
                all
            }
            _ => (0..self.n_features).collect(),
        };

        // best split by gini gain
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let parent_gini = gini(pos, n as f64);
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for &f in &features {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_by(|&a, &b| data.row(a).expect("valid")[f]
                .total_cmp(&data.row(b).expect("valid")[f]));
            let mut left_pos = 0.0;
            for split_at in 1..n {
                left_pos += targets[order[split_at - 1]];
                let x_prev = data.row(order[split_at - 1])?[f];
                let x_next = data.row(order[split_at])?[f];
                if x_prev == x_next {
                    continue;
                }
                let left_n = split_at;
                let right_n = n - split_at;
                if left_n < self.config.min_samples_leaf
                    || right_n < self.config.min_samples_leaf
                {
                    continue;
                }
                let right_pos = pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n as f64)
                    + right_n as f64 * gini(right_pos, right_n as f64))
                    / n as f64;
                let gain = parent_gini - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, (x_prev + x_next) / 2.0, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            self.nodes.push(Node::Leaf { proba });
            return Ok(self.nodes.len() - 1);
        };
        self.importances[feature] += gain * n as f64;

        // partition in place
        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        for &i in indices.iter() {
            if data.row(i)?[feature] <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { proba }); // placeholder
        let left_idx = self.build(data, targets, &mut left, depth + 1, rng)?;
        let right_idx = self.build(data, targets, &mut right, depth + 1, rng)?;
        self.nodes[node_idx] = Node::Split { feature, threshold, left: left_idx, right: right_idx };
        Ok(node_idx)
    }
}

fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DT"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_indices(data, targets, &indices)
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return Ok(*proba),
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        // feature index + threshold + two child indices ≈ 32 bytes/node
        self.nodes.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;

    fn xor_data(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let a = rng.random_bool(0.5);
            let b = rng.random_bool(0.5);
            let label = if a ^ b { Class::Malware } else { Class::Benign };
            let x = [
                f64::from(u8::from(a)) + rng.random_range(-0.2..0.2),
                f64::from(u8::from(b)) + rng.random_range(-0.2..0.2),
            ];
            d.push(&x, label).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        let (d, t) = xor_data(400, 1);
        let mut dt = DecisionTree::new();
        dt.fit(&d, &t).unwrap();
        let m = evaluate(&dt, &d, &t).unwrap();
        assert!(m.accuracy > 0.95, "accuracy {}", m.accuracy);
    }

    #[test]
    fn respects_max_depth() {
        let (d, t) = xor_data(400, 2);
        let mut stump = DecisionTree::with_config(DecisionTreeConfig {
            max_depth: 1,
            ..DecisionTreeConfig::default()
        });
        stump.fit(&d, &t).unwrap();
        // depth-1 tree has at most 3 nodes
        assert!(stump.node_count() <= 3);
        // and cannot solve XOR
        let m = evaluate(&stump, &d, &t).unwrap();
        assert!(m.accuracy < 0.7);
    }

    #[test]
    fn pure_leaves_give_confident_probabilities() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..20 {
            let label = if i < 10 { Class::Benign } else { Class::Malware };
            d.push(&[i as f64], label).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        let mut dt = DecisionTree::new();
        dt.fit(&d, &t).unwrap();
        assert_eq!(dt.predict_proba_row(&[0.0]).unwrap(), 0.0);
        assert_eq!(dt.predict_proba_row(&[19.0]).unwrap(), 1.0);
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let (d, t) = xor_data(60, 3);
        let mut big_leaf = DecisionTree::with_config(DecisionTreeConfig {
            min_samples_leaf: 25,
            ..DecisionTreeConfig::default()
        });
        big_leaf.fit(&d, &t).unwrap();
        let mut small_leaf = DecisionTree::new();
        small_leaf.fit(&d, &t).unwrap();
        assert!(big_leaf.node_count() < small_leaf.node_count());
    }

    #[test]
    fn errors_on_misuse() {
        let dt = DecisionTree::new();
        assert_eq!(dt.predict_proba_row(&[1.0]).unwrap_err(), MlError::NotFitted);
        let (d, t) = xor_data(50, 4);
        let mut dt = DecisionTree::new();
        dt.fit(&d, &t).unwrap();
        assert!(matches!(
            dt.predict_proba_row(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn feature_subsampling_changes_tree() {
        let (d, t) = xor_data(300, 5);
        let mut full = DecisionTree::new();
        full.fit(&d, &t).unwrap();
        let mut sub = DecisionTree::with_config(DecisionTreeConfig {
            max_features: Some(1),
            ..DecisionTreeConfig::default()
        });
        sub.set_seed(99);
        sub.fit(&d, &t).unwrap();
        // both learn, but structure differs
        assert!(sub.node_count() > 1);
        assert_ne!(full.node_count(), 0);
    }

    #[test]
    fn importances_favor_the_informative_feature() {
        // feature 0 decides the label; feature 1 is noise
        let mut rng = StdRng::seed_from_u64(8);
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]).unwrap();
        for _ in 0..200 {
            let benign = [rng.random_range(-1.0..0.0), rng.random_range(-1.0..1.0)];
            let attack = [rng.random_range(0.0..1.0), rng.random_range(-1.0..1.0)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        let mut dt = DecisionTree::new();
        dt.fit(&d, &t).unwrap();
        let imp = dt.feature_importances().unwrap();
        assert!(imp[0] > 0.8, "signal importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn importances_require_fit() {
        assert!(DecisionTree::new().feature_importances().is_err());
    }

    #[test]
    fn size_scales_with_nodes() {
        let (d, t) = xor_data(200, 6);
        let mut dt = DecisionTree::new();
        dt.fit(&d, &t).unwrap();
        assert_eq!(dt.size_bytes(), dt.node_count() * 32);
    }
}
