//! Binary classification metrics: the full suite the paper reports
//! (ACC, F1, AUC, TPR, FPR, FNR, TNR, precision, recall).

use hmd_util::impl_json;


/// A binary confusion matrix (positive = attack).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Attacks flagged as attacks.
    pub tp: usize,
    /// Benign flagged as attacks (false alarms).
    pub fp: usize,
    /// Benign passed as benign.
    pub tn: usize,
    /// Attacks passed as benign (missed detections).
    pub fn_: usize,
}

impl_json!(struct ConfusionMatrix { tp, fp, tn, fn_ });

impl ConfusionMatrix {
    /// Tallies a matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/truth length mismatch");
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy: (TP + TN) / total.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Precision: TP / (TP + FP).
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall / true-positive rate: TP / (TP + FN).
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// True-positive rate (alias of [`Self::recall`]).
    #[must_use]
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// False-positive rate: FP / (FP + TN).
    #[must_use]
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False-negative rate: FN / (FN + TP).
    #[must_use]
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// True-negative rate: TN / (TN + FP).
    #[must_use]
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// F1-score: harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The metric row the paper's Table 2 reports for one model and scenario.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BinaryMetrics {
    /// Accuracy.
    pub accuracy: f64,
    /// F1-score.
    pub f1: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// True-positive rate (= recall).
    pub tpr: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// False-negative rate.
    pub fnr: f64,
    /// True-negative rate.
    pub tnr: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
}

impl_json!(struct BinaryMetrics {
    accuracy, f1, auc, tpr, fpr, fnr, tnr, precision, recall
});

impl BinaryMetrics {
    /// Computes the full suite from scores (`P(attack)`) and truths,
    /// thresholding at 0.5 for the confusion-matrix metrics.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn from_scores(scores: &[f64], actual: &[bool]) -> Self {
        assert_eq!(scores.len(), actual.len(), "scores/truth length mismatch");
        let predicted: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        let cm = ConfusionMatrix::from_predictions(&predicted, actual);
        Self { auc: roc_auc(scores, actual), ..Self::from_confusion(&cm) }
    }

    /// The suite derivable from a bare confusion matrix. AUC needs
    /// scores, which a matrix does not carry, and is left at `0.0`.
    #[must_use]
    pub fn from_confusion(cm: &ConfusionMatrix) -> Self {
        Self {
            accuracy: cm.accuracy(),
            f1: cm.f1(),
            auc: 0.0,
            tpr: cm.tpr(),
            fpr: cm.fpr(),
            fnr: cm.fnr(),
            tnr: cm.tnr(),
            precision: cm.precision(),
            recall: cm.recall(),
        }
    }
}

/// Area under the ROC curve via the rank-statistic (Mann–Whitney)
/// formulation, with tie correction.
///
/// Returns `0.5` when either class is absent (no ranking information).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let scores = [0.9, 0.8, 0.3, 0.1];
/// let truth = [true, true, false, false];
/// assert_eq!(hmd_ml::metrics::roc_auc(&scores, &truth), 1.0);
/// ```
#[must_use]
pub fn roc_auc(scores: &[f64], actual: &[bool]) -> f64 {
    assert_eq!(scores.len(), actual.len(), "scores/truth length mismatch");
    let n_pos = actual.iter().filter(|&&a| a).count();
    let n_neg = actual.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // rank scores ascending with average ranks for ties
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        ranks.iter().zip(actual).filter(|&(_, &a)| a).map(|(r, _)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        // 8 TP, 2 FP, 6 TN, 4 FN
        ConfusionMatrix { tp: 8, fp: 2, tn: 6, fn_: 4 }
    }

    #[test]
    fn confusion_matrix_from_predictions() {
        let predicted = [true, true, false, false];
        let actual = [true, false, true, false];
        let m = ConfusionMatrix::from_predictions(&predicted, &actual);
        assert_eq!(m, ConfusionMatrix { tp: 1, fp: 1, tn: 1, fn_: 1 });
    }

    #[test]
    fn derived_rates() {
        let m = cm();
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.fpr() - 0.25).abs() < 1e-12);
        assert!((m.fnr() - 4.0 / 12.0).abs() < 1e-12);
        assert!((m.tnr() - 0.75).abs() < 1e-12);
        assert!((m.tpr() - m.recall()).abs() < 1e-15);
    }

    #[test]
    fn f1_matches_manual() {
        let m = cm();
        let p = 0.8;
        let r = 8.0 / 12.0;
        assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn rates_on_empty_matrix_are_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.fpr(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [true, true, false, false];
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &truth), 1.0);
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &truth), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // constant scores: all ties → 0.5
        let truth = [true, false, true, false];
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &truth), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = [0.9, 0.6, 0.4, 0.7, 0.2, 0.1];
        let truth = [true, true, true, false, false, false];
        // pairs: pos {0.9,0.6,0.4} vs neg {0.7,0.2,0.1}: wins 7 of 9
        assert!((roc_auc(&scores, &truth) - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn binary_metrics_threshold_at_half() {
        let scores = [0.9, 0.4, 0.6, 0.1];
        let truth = [true, true, false, false];
        let m = BinaryMetrics::from_scores(&scores, &truth);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert!((m.tpr - 0.5).abs() < 1e-12);
        assert!((m.fpr - 0.5).abs() < 1e-12);
        assert!((m.auc - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn auc_rejects_mismatched_lengths() {
        let _ = roc_auc(&[0.5], &[true, false]);
    }
}
