use std::error::Error;
use std::fmt;

use hmd_tabular::TabularError;

/// Errors produced by classifier training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// The model was used before `fit`, or on data of the wrong width.
    NotFitted,
    /// Feature vector width differs from what the model was trained on.
    DimensionMismatch {
        /// Width the model was trained on.
        expected: usize,
        /// Width of the offending input.
        actual: usize,
    },
    /// Training requires a non-empty dataset with both classes present.
    DegenerateTrainingSet(&'static str),
    /// Targets and rows disagree in length, or a target is not 0/1.
    InvalidTargets(&'static str),
    /// A hyper-parameter was out of range.
    InvalidHyperparameter(&'static str),
    /// An underlying tabular operation failed.
    Tabular(TabularError),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFitted => write!(f, "model used before fitting"),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "input has {actual} features, model expects {expected}")
            }
            Self::DegenerateTrainingSet(what) => {
                write!(f, "degenerate training set: {what}")
            }
            Self::InvalidTargets(what) => write!(f, "invalid targets: {what}"),
            Self::InvalidHyperparameter(what) => {
                write!(f, "invalid hyper-parameter: {what}")
            }
            Self::Tabular(e) => write!(f, "tabular error: {e}"),
        }
    }
}

impl Error for MlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Tabular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TabularError> for MlError {
    fn from(e: TabularError) -> Self {
        Self::Tabular(e)
    }
}
